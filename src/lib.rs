//! Workspace root crate for the SoftEng 751 reproduction.
//!
//! This crate exists to host the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`. The actual
//! public API lives in the [`softeng751`] umbrella crate and the
//! individual subsystem crates it re-exports.

pub use softeng751;
