//! # partask — a GUI-aware task-parallel runtime
//!
//! This crate is the Rust analogue of **Parallel Task** (Giacaman &
//! Sinnen, *Parallel Task for parallelizing object-oriented desktop
//! applications*, IJPP 2013), the PARC lab tool at the centre of the
//! SoftEng 751 course reproduced by this workspace. Parallel Task
//! extends Java with a handful of keywords (`TASK`, `dependsOn`,
//! `notify`, …) that its compiler lowers onto a runtime with the
//! following semantics — all of which this crate implements as a
//! library API:
//!
//! * **Task futures** — [`TaskRuntime::spawn`] returns a
//!   [`TaskHandle<T>`]; [`TaskHandle::join`] waits for and returns the
//!   result (the `TaskID.getResult()` analogue).
//! * **Task dependences** — [`TaskRuntime::spawn_after`] delays a task
//!   until a set of predecessor tasks have completed (`dependsOn`).
//! * **Multi-tasks** — [`TaskRuntime::spawn_multi`] launches `n`
//!   copies of a task (`TASK(n)`), and
//!   [`TaskRuntime::spawn_per_worker`] one per worker (`TASK(*)`).
//! * **Interim results** — [`interim::channel`] streams intermediate
//!   values out of a running task, optionally marshalled onto the GUI
//!   event-dispatch thread (the `notifyInter` analogue).
//! * **GUI-aware completion** — [`TaskHandle::deliver`] hands the
//!   task's result to a closure running on the [`guievent`] dispatch
//!   thread, so interactive applications never block (the paper's
//!   "concurrency for user-perceived performance").
//! * **Exceptions** — a panicking task resolves its future to
//!   [`TaskError::Panicked`] instead of tearing down the process
//!   (the `asyncCatch` analogue).
//! * **Cancellation** — cooperative and *hierarchical*, via
//!   [`CancelToken`] (re-exported from `parc-supervise`): every task's
//!   token is a child of the runtime's root token, tokens form trees
//!   with deadline propagation, and
//!   [`TaskRuntime::shutdown_graceful`] cancels the root then drains
//!   in-flight work within a bounded budget.
//!
//! Two schedulers are provided, mirroring the scheduling options the
//! PARC runtime exposed and providing the ablation in experiment A1:
//! a **work-stealing** scheduler (per-worker Chase–Lev deques with a
//! global injector) and a **work-sharing** scheduler (one global
//! queue). Workers that block in [`TaskHandle::join`] *help*: they
//! execute other queued tasks while waiting, so nested fork/join
//! (e.g. recursive quicksort) cannot deadlock the fixed-size pool.
//!
//! ```
//! use partask::TaskRuntime;
//!
//! let rt = TaskRuntime::builder().workers(2).build();
//! let task = rt.spawn(|| (1..=10u64).product::<u64>());
//! assert_eq!(task.join().unwrap(), 3_628_800);
//! rt.shutdown();
//! ```

pub mod batch;
pub mod interim;
mod job;
pub mod multi;
pub mod runtime;
pub mod sched;
pub mod scope;
pub mod task;

pub use batch::BatchHandle;
pub use interim::{channel as interim_channel, InterimReceiver, InterimSender};
pub use multi::MultiHandle;
pub use runtime::{
    Builder, DrainReport, ProgressSnapshot, RuntimeHandle, RuntimeLatencies, RuntimeStats,
    TaskRuntime,
};
pub use sched::SchedulerKind;
pub use scope::Scope;
pub use task::{CancelToken, Cancelled, TaskError, TaskHandle, TaskId, TaskWatcher};
