//! Task futures: the `TaskID` analogue.
//!
//! A spawned task is represented by an `Arc<Core<T>>` shared between
//! the scheduler job (producer side) and the [`TaskHandle`] /
//! [`TaskWatcher`] (consumer side). The state machine is
//! `Pending → finished`, with the result either stored for a later
//! `join` or forwarded to a registered continuation (GUI delivery),
//! guarded by one mutex per task plus a condvar for blocking waiters.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use guievent::GuiHandle;
use parking_lot::{Condvar, Mutex};

pub use parc_supervise::{CancelToken, Cancelled};

/// Unique identity of a spawned task within a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u64);

static NEXT_TASK_ID: AtomicU64 = AtomicU64::new(1);

impl TaskId {
    pub(crate) fn fresh() -> Self {
        TaskId(NEXT_TASK_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// Reserve a contiguous block of `n` ids with one atomic op (batch
    /// spawn gives member `i` the id `base + i`); returns the base.
    pub(crate) fn fresh_block(n: u64) -> u64 {
        NEXT_TASK_ID.fetch_add(n.max(1), Ordering::Relaxed)
    }

    /// The raw numeric id.
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Why a task failed to produce a value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskError {
    /// The task body panicked; the payload's string rendering is
    /// preserved. This is the `asyncCatch` analogue — the panic is
    /// contained in the future rather than unwinding a worker.
    Panicked(String),
    /// The task was cancelled before it started running.
    Cancelled,
    /// A join deadline elapsed before the task finished. The task has
    /// been asked to cancel cooperatively, but the joiner stopped
    /// waiting; the body may still be running.
    TimedOut,
    /// The result was already taken or was routed to a continuation.
    ResultTaken,
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::Panicked(msg) => write!(f, "task panicked: {msg}"),
            TaskError::Cancelled => write!(f, "task was cancelled before running"),
            TaskError::TimedOut => write!(f, "join deadline elapsed before the task finished"),
            TaskError::ResultTaken => write!(f, "task result already taken"),
        }
    }
}

impl std::error::Error for TaskError {}

type Continuation<T> = Box<dyn FnOnce(Result<T, TaskError>) + Send>;
pub(crate) type DoneHook = Box<dyn FnOnce() + Send>;

struct CoreState<T> {
    finished: bool,
    /// Present between completion and the (single) take.
    result: Option<Result<T, TaskError>>,
    /// If set before completion, receives the result instead of it
    /// being stored (used by [`TaskHandle::deliver`]).
    continuation: Option<Continuation<T>>,
    /// Zero-payload completion hooks (dependence edges, `on_done`).
    hooks: Vec<DoneHook>,
}

pub(crate) struct Core<T> {
    pub(crate) id: TaskId,
    state: Mutex<CoreState<T>>,
    done_cv: Condvar,
    cancel: CancelToken,
}

impl<T: Send + 'static> Core<T> {
    pub(crate) fn new() -> Arc<Self> {
        Self::with_token(CancelToken::new())
    }

    /// A core whose cancellation token is supplied by the caller —
    /// the runtime passes a child of its root token (or of a
    /// user-provided parent) so cancellation cascades down the tree.
    pub(crate) fn with_token(token: CancelToken) -> Arc<Self> {
        Arc::new(Core {
            id: TaskId::fresh(),
            state: Mutex::new(CoreState {
                finished: false,
                result: None,
                continuation: None,
                hooks: Vec::new(),
            }),
            done_cv: Condvar::new(),
            cancel: token,
        })
    }

    pub(crate) fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Execute the task body (worker side). Checks the cancellation
    /// flag first, contains panics, then completes the future.
    /// Returns `true` when the task resolved to `Cancelled` without
    /// running (so the runtime can count skipped bodies).
    pub(crate) fn run(self: &Arc<Self>, body: impl FnOnce(&CancelToken) -> T) -> bool {
        if self.cancel.is_cancelled() {
            self.complete(Err(TaskError::Cancelled));
            return true;
        }
        let token = self.cancel.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&token)));
        let result = outcome.map_err(|payload| TaskError::Panicked(panic_message(&*payload)));
        self.complete(result);
        false
    }

    /// Resolve the future: route the result to a pre-registered
    /// continuation or store it, then fire hooks and wake waiters.
    pub(crate) fn complete(&self, result: Result<T, TaskError>) {
        let mut st = self.state.lock();
        debug_assert!(!st.finished, "task completed twice");
        st.finished = true;
        let hooks = std::mem::take(&mut st.hooks);
        match st.continuation.take() {
            Some(cont) => {
                drop(st);
                self.done_cv.notify_all();
                for hook in hooks {
                    hook();
                }
                cont(result);
            }
            None => {
                st.result = Some(result);
                drop(st);
                self.done_cv.notify_all();
                for hook in hooks {
                    hook();
                }
            }
        }
    }

    pub(crate) fn is_finished(&self) -> bool {
        self.state.lock().finished
    }

    /// Block until finished. Does *not* take the result.
    pub(crate) fn wait_blocking(&self) {
        let mut st = self.state.lock();
        while !st.finished {
            self.done_cv.wait(&mut st);
        }
    }

    /// Wait with a timeout; true when finished.
    pub(crate) fn wait_timeout(&self, dur: std::time::Duration) -> bool {
        let mut st = self.state.lock();
        if st.finished {
            return true;
        }
        let _ = self.done_cv.wait_for(&mut st, dur);
        st.finished
    }

    /// Take the stored result (once). Caller must know it finished.
    pub(crate) fn take_result(&self) -> Result<T, TaskError> {
        let mut st = self.state.lock();
        debug_assert!(st.finished, "take_result before completion");
        st.result.take().unwrap_or(Err(TaskError::ResultTaken))
    }

    /// Register a zero-payload hook to run at completion; runs
    /// immediately (on the calling thread) if already complete.
    pub(crate) fn add_hook(&self, hook: DoneHook) {
        let mut st = self.state.lock();
        if st.finished {
            drop(st);
            hook();
        } else {
            st.hooks.push(hook);
        }
    }

    /// Register a continuation receiving the owned result; called
    /// immediately (on the calling thread) if already complete.
    pub(crate) fn set_continuation(&self, cont: Continuation<T>) {
        let mut st = self.state.lock();
        if st.finished {
            let result = st.result.take().unwrap_or(Err(TaskError::ResultTaken));
            drop(st);
            cont(result);
        } else {
            assert!(
                st.continuation.is_none(),
                "a task can have at most one delivery continuation"
            );
            st.continuation = Some(cont);
        }
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Owned future for a spawned task; yields the result exactly once.
pub struct TaskHandle<T> {
    pub(crate) core: Arc<Core<T>>,
    pub(crate) helper: crate::runtime::HelpHook,
}

impl<T: Send + 'static> TaskHandle<T> {
    /// The task's unique id.
    #[must_use]
    pub fn id(&self) -> TaskId {
        self.core.id
    }

    /// True once the task has completed (successfully or not).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.core.is_finished()
    }

    /// Request cooperative cancellation. A task that has not started
    /// yet resolves to [`TaskError::Cancelled`]; a running task sees
    /// [`CancelToken::is_cancelled`] flip if it observes its token
    /// (see [`crate::TaskRuntime::spawn_cancellable`]).
    pub fn cancel(&self) {
        self.core.cancel_token().cancel();
    }

    /// The task's cancellation token.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.core.cancel_token()
    }

    /// Block until the task completes and return its result.
    ///
    /// When called from inside a worker thread this *helps*: it runs
    /// other queued tasks while waiting, which keeps nested fork/join
    /// deadlock-free on a bounded pool.
    pub fn join(self) -> Result<T, TaskError> {
        self.wait();
        self.core.take_result()
    }

    /// Block until complete without taking the result.
    pub fn wait(&self) {
        if self.core.is_finished() {
            return;
        }
        if let Some(helper) = self.helper.as_ref() {
            // Worker thread: alternate between helping and short
            // waits so we neither spin hot nor sleep through work.
            while !self.core.is_finished() {
                if !helper() {
                    let _ = self
                        .core
                        .wait_timeout(std::time::Duration::from_micros(200));
                }
            }
        } else {
            self.core.wait_blocking();
        }
    }

    /// Block until the task completes or `timeout` elapses.
    ///
    /// On completion the result is returned as with
    /// [`TaskHandle::join`]. On expiry the task is asked to cancel
    /// cooperatively (its [`CancelToken`] flips) and
    /// [`TaskError::TimedOut`] is returned — a body that never checks
    /// its token keeps running detached, but the joiner is free.
    ///
    /// Unlike [`TaskHandle::join`], a bounded join never *helps* (runs
    /// queued tasks while waiting): a helped job of arbitrary length
    /// would blow the deadline — and helping can even pull in the
    /// joined task itself, whose body may be waiting on this very
    /// timeout to cancel it. The timeout alone keeps a bounded pool
    /// deadlock-free: every such join returns by its deadline.
    pub fn join_timeout(self, timeout: std::time::Duration) -> Result<T, TaskError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.core.is_finished() {
                return self.core.take_result();
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                self.cancel();
                return Err(TaskError::TimedOut);
            }
            let _ = self.core.wait_timeout(deadline - now);
        }
    }

    /// Non-blocking: the result if finished, otherwise the handle back.
    pub fn try_join(self) -> Result<Result<T, TaskError>, TaskHandle<T>> {
        if self.core.is_finished() {
            Ok(self.core.take_result())
        } else {
            Err(self)
        }
    }

    /// Register a zero-payload completion callback; runs on the
    /// completing worker (or immediately if already done).
    pub fn on_done(&self, hook: impl FnOnce() + Send + 'static) {
        self.core.add_hook(Box::new(hook));
    }

    /// Consume the handle; when the task completes, send the owned
    /// result to `f` **on the GUI event-dispatch thread**. This is the
    /// Parallel Task GUI-notify: the EDT receives the value without
    /// ever blocking on the computation.
    pub fn deliver(self, gui: &GuiHandle, f: impl FnOnce(Result<T, TaskError>) + Send + 'static) {
        let gui = gui.clone();
        self.core.set_continuation(Box::new(move |result| {
            gui.invoke_later(move || f(result));
        }));
    }

    /// Like [`TaskHandle::deliver`] but invokes `f` directly on the
    /// completing worker thread (no GUI marshalling).
    pub fn deliver_inline(self, f: impl FnOnce(Result<T, TaskError>) + Send + 'static) {
        self.core.set_continuation(Box::new(f));
    }

    /// A cloneable watcher for dependence lists and progress queries.
    #[must_use]
    pub fn watcher(&self) -> TaskWatcher {
        let done_core = Arc::clone(&self.core);
        let hook_core = Arc::clone(&self.core);
        TaskWatcher {
            id: self.core.id,
            cancel: self.core.cancel_token(),
            is_done: Arc::new(move || done_core.is_finished()),
            add_hook: Arc::new(move |hook| hook_core.add_hook(hook)),
        }
    }
}

impl<T> fmt::Debug for TaskHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskHandle").field("id", &self.core.id).finish()
    }
}

/// A cloneable, resultless view of a task: completion status, identity
/// and cancellation, but no access to the value. This is what goes in
/// [`crate::TaskRuntime::spawn_after`] dependence lists.
#[derive(Clone)]
pub struct TaskWatcher {
    id: TaskId,
    is_done: Arc<dyn Fn() -> bool + Send + Sync>,
    add_hook: Arc<dyn Fn(DoneHook) + Send + Sync>,
    cancel: CancelToken,
}

impl TaskWatcher {
    /// The watched task's id.
    #[must_use]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// True once the watched task has completed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        (self.is_done)()
    }

    /// Request cooperative cancellation of the watched task.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    pub(crate) fn on_done_boxed(&self, hook: DoneHook) {
        (self.add_hook)(hook);
    }
}

impl fmt::Debug for TaskWatcher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskWatcher")
            .field("id", &self.id)
            .field("done", &self.is_done())
            .finish()
    }
}
