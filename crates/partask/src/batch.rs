//! Batch spawn: many homogeneous tasks, one completion structure.
//!
//! [`crate::TaskRuntime::spawn_batch`] runs `f(0..n)` across the pool
//! with *none* of the per-task machinery of [`crate::TaskHandle`]: no
//! per-task `Core` (mutex + condvar), no per-task `Arc`, no per-task
//! boxed closure, and one shared-queue episode for the whole
//! submission instead of one lock per task. Each member job captures
//! only `(Arc<BatchCore>, Arc<F>, Weak<runtime>, index)` — 32 bytes,
//! stored inline in a [`crate::job::SmallJob`] — and writes its result
//! into a preallocated slot.
//!
//! Results come back in index order regardless of execution order, so
//! `join` output is deterministic across pool sizes and schedules.

use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::runtime::HelpHook;
use crate::task::{CancelToken, TaskError, TaskId};

/// A member's result slot: written once by the member running that
/// index, read only after the batch countdown reaches zero.
type ResultSlot<T> = UnsafeCell<Option<Result<T, TaskError>>>;

/// Shared completion state of one batch: result slots, the countdown,
/// and the wait machinery. One allocation per *batch*.
pub(crate) struct BatchCore<T> {
    base_id: u64,
    /// One result slot per member; slot `i` is written exactly once,
    /// by the member job running index `i`.
    slots: Box<[ResultSlot<T>]>,
    /// Members that have not stored a result yet. The final `AcqRel`
    /// decrement is what publishes every slot write to a joiner that
    /// observes zero.
    remaining: AtomicUsize,
    /// Blocking-wait support; `true` once `remaining` hit zero.
    finished: Mutex<bool>,
    done_cv: Condvar,
    cancel: CancelToken,
}

// SAFETY: slot `i` is written by exactly one member job and read only
// after `remaining` reaches zero (Acquire), so no two threads touch a
// slot concurrently; `T: Send` carries the values across threads.
unsafe impl<T: Send> Send for BatchCore<T> {}
unsafe impl<T: Send> Sync for BatchCore<T> {}

impl<T: Send + 'static> BatchCore<T> {
    pub(crate) fn new(n: usize, base_id: u64, cancel: CancelToken) -> Arc<Self> {
        Arc::new(Self {
            base_id,
            slots: (0..n).map(|_| UnsafeCell::new(None)).collect(),
            remaining: AtomicUsize::new(n),
            finished: Mutex::new(n == 0),
            done_cv: Condvar::new(),
            cancel,
        })
    }

    pub(crate) fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    pub(crate) fn base_id(&self) -> u64 {
        self.base_id
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// True once every member has stored its result. An `Acquire`
    /// load: observing zero also makes every slot write visible.
    pub(crate) fn is_finished(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Store member `index`'s result; called exactly once per index.
    pub(crate) fn store(&self, index: usize, result: Result<T, TaskError>) {
        // SAFETY: single writer per slot (the member job for `index`),
        // and readers wait for `remaining == 0`.
        unsafe { *self.slots[index].get() = Some(result) };
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = self.finished.lock();
            *done = true;
            drop(done);
            self.done_cv.notify_all();
        }
    }

    /// Block until finished, helping (running other queued jobs) when
    /// the caller is attached to a live runtime.
    pub(crate) fn wait(&self, helper: &HelpHook) {
        if self.is_finished() {
            return;
        }
        if let Some(help) = helper.as_ref() {
            while !self.is_finished() {
                if !help() {
                    let mut done = self.finished.lock();
                    if !*done {
                        let _ = self
                            .done_cv
                            .wait_for(&mut done, std::time::Duration::from_micros(200));
                    }
                }
            }
        } else {
            let mut done = self.finished.lock();
            while !*done {
                self.done_cv.wait(&mut done);
            }
        }
    }

    /// Move every result out, in index order. Caller must have
    /// observed [`BatchCore::is_finished`].
    pub(crate) fn take_results(&self) -> Vec<Result<T, TaskError>> {
        debug_assert!(self.is_finished());
        self.slots
            .iter()
            // SAFETY: all writers are done (remaining == 0 observed
            // with Acquire) and `take_results` is called at most once
            // (`BatchHandle::join` consumes the handle).
            .map(|slot| unsafe { (*slot.get()).take() }.unwrap_or(Err(TaskError::ResultTaken)))
            .collect()
    }
}

/// Owned future for a whole spawned batch; yields all results at once.
///
/// Created by [`crate::TaskRuntime::spawn_batch`]. Compared to holding
/// `n` [`crate::TaskHandle`]s, a batch handle has one completion
/// structure for the entire fan-out and its `join` returns results in
/// index order (deterministic across pool sizes).
pub struct BatchHandle<T> {
    pub(crate) core: Arc<BatchCore<T>>,
    pub(crate) helper: HelpHook,
}

impl<T: Send + 'static> BatchHandle<T> {
    /// Number of member tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.core.len()
    }

    /// True for an empty batch (already complete at spawn).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.core.len() == 0
    }

    /// True once every member has completed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.core.is_finished()
    }

    /// The id of member `index` (batch members take a contiguous id
    /// block, so traces and inspect reports can attribute them).
    #[must_use]
    pub fn task_id(&self, index: usize) -> TaskId {
        assert!(index < self.core.len(), "batch member index out of range");
        TaskId(self.core.base_id() + index as u64)
    }

    /// Request cooperative cancellation of every member that has not
    /// started; members already running observe the shared token.
    pub fn cancel(&self) {
        self.core.cancel_token().cancel();
    }

    /// The batch's shared cancellation token (one token for all
    /// members — cancelling it cancels the whole batch).
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.core.cancel_token()
    }

    /// Block until every member completes, without taking results.
    /// When called from a worker thread this *helps*, running other
    /// queued jobs while it waits.
    pub fn wait(&self) {
        self.core.wait(&self.helper);
    }

    /// Block until every member completes and return all results in
    /// index order.
    pub fn join(self) -> Vec<Result<T, TaskError>> {
        self.core.wait(&self.helper);
        self.core.take_results()
    }
}

impl<T> fmt::Debug for BatchHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchHandle")
            .field("base_id", &self.core.base_id)
            .field("len", &self.core.slots.len())
            .finish()
    }
}
