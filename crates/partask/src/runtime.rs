//! The task runtime: worker pool, spawning, dependences, quiescence
//! and shutdown.

use std::cell::RefCell;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread;
use std::time::{Duration, Instant};

use parc_trace::{Counter, LatencyHistogram, MarkKind, Outcome, SpanKind, TraceHandle};
use parking_lot::{Condvar, Mutex};

use crate::batch::{BatchCore, BatchHandle};
use crate::job::SmallJob;
use crate::sched::{
    new_latency_hist, per_worker_hists, Job, LocalQueue, PaddedHist, SchedCounters, SchedulerKind,
    SharedSched,
};
use crate::task::{CancelToken, Core, TaskHandle, TaskId, TaskWatcher};

/// Snapshot of runtime activity counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Tasks submitted (including dependence-delayed and multi-task
    /// members).
    pub spawned: u64,
    /// Task bodies executed to completion (including cancelled ones,
    /// which "execute" by resolving to `Cancelled`).
    pub executed: u64,
    /// Jobs a worker popped from its own deque.
    pub local_pops: u64,
    /// Jobs taken from the global injector / shared queue.
    pub global_pops: u64,
    /// Jobs stolen from another worker.
    pub steals: u64,
    /// Jobs executed by helping joiners rather than pool workers.
    pub helped: u64,
    /// Tasks that resolved to [`crate::TaskError::Cancelled`] without
    /// running their body.
    pub cancelled: u64,
    /// Deadline expirations: tasks whose [`TaskRuntime::spawn_deadline`]
    /// budget elapsed before they finished (each also requests
    /// cooperative cancellation).
    pub timed_out: u64,
}

/// Latency distributions the runtime records alongside its counters
/// (log-bucketed, milliseconds; query with `p50()`/`p99()`/`p999()`).
///
/// Kept separate from [`RuntimeStats`] on purpose: stats are compared
/// with `==` across reruns and pool sizes in the determinism suites,
/// while latencies are wall-clock measurements that legitimately vary.
#[derive(Clone, Debug, PartialEq)]
pub struct RuntimeLatencies {
    /// Task-body run duration, from a worker picking the job up to the
    /// body returning (one sample per executed task).
    pub run_ms: LatencyHistogram,
    /// Steal latency: elapsed time from a worker's failed local pop to
    /// the successful steal *episode* that ended its search for work
    /// (one sample per episode — a batch steal claiming several jobs
    /// records once; searches resolved locally or via the injector do
    /// not record).
    pub steal_wait_ms: LatencyHistogram,
}

/// An exactly-consistent snapshot of task progress, from one atomic
/// load of the runtime's packed progress word:
/// `spawned == finished + pending` holds by construction, even while
/// workers are mid-steal or mid-completion (the old accounting summed
/// queue lengths under separate locks, so a job in flight between
/// queues could be double-counted or missed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Tasks submitted, as of this snapshot.
    pub spawned: u64,
    /// Tasks finished (body executed or resolved cancelled).
    pub finished: u64,
    /// Tasks submitted but not yet finished — queued, mid-steal, or
    /// currently running.
    pub pending: usize,
}

/// Packed progress word: low 32 bits = pending jobs, high 32 bits =
/// finished jobs (mod 2³²). Spawning adds `1`; finishing adds
/// `(1 << 32) - 1`, atomically moving one unit from pending to
/// finished. A single load therefore yields a consistent
/// (pending, finished) pair. Pending is bounded by live jobs (never
/// wraps); the finished half wraps only after 2³² completions per
/// runtime instance, far beyond any bench here, and quiescence checks
/// only the pending half regardless.
const FINISH_DELTA: u64 = (1u64 << 32) - 1;

fn unpack_pending(progress: u64) -> usize {
    (progress & 0xFFFF_FFFF) as usize
}

pub(crate) struct RtInner {
    pub(crate) sched: SharedSched,
    pub(crate) counters: SchedCounters,
    pub(crate) n_workers: usize,
    /// Root of the runtime's cancellation tree: every spawned task's
    /// token is a child, so cancelling this cancels all of them.
    root_token: CancelToken,
    stop: AtomicBool,
    /// Packed (finished, pending) accounting word; see [`FINISH_DELTA`].
    progress: AtomicU64,
    idle: Mutex<()>,
    idle_cv: Condvar,
    quiescent_cv: Condvar,
    /// Workers currently inside the idle-parking protocol (announced
    /// *before* their final re-check for work, so a producer that
    /// reads 0 after pushing knows the worker's re-check will see its
    /// job — a Dekker-style handshake with [`RtInner::wake_after_push`]).
    idle_workers: AtomicUsize,
    /// Diagnostic: how many times a worker entered the idle-parking
    /// path (each entry is one lock + at most one 100 ms parked wait).
    /// Deliberately *not* part of [`RuntimeStats`], which determinism
    /// suites compare bit-for-bit across reruns and pool sizes.
    idle_probes: AtomicU64,
    spawned: Arc<Counter>,
    executed: Arc<Counter>,
    helped: Arc<Counter>,
    cancelled: Arc<Counter>,
    timed_out: Arc<Counter>,
    pub(crate) trace: TraceHandle,
    pub(crate) pid: u32,
    /// Per-worker task-body run-duration histograms (ms), one slot per
    /// worker plus a shared slot for helpers — same layout as the
    /// steal-wait histograms in [`SchedCounters`], merged on demand.
    run_ms: Box<[PaddedHist]>,
    deadlines: DeadlineWatch,
}

/// One task registered with the deadline watchdog.
struct DeadlineEntry {
    due: Instant,
    task: u64,
    token: CancelToken,
    finished: Arc<dyn Fn() -> bool + Send + Sync>,
}

#[derive(Default)]
struct DeadlineState {
    entries: Vec<DeadlineEntry>,
    watcher_running: bool,
    shutdown: bool,
}

/// Shared state of the lazily-started watchdog thread that enforces
/// [`TaskRuntime::spawn_deadline`] budgets by cancelling overdue tasks.
#[derive(Default)]
struct DeadlineWatch {
    state: Mutex<DeadlineState>,
    cv: Condvar,
}

thread_local! {
    /// Set for the lifetime of a worker thread: (runtime, local queue,
    /// worker index).
    static WORKER_CTX: RefCell<Option<(Weak<RtInner>, LocalQueue, usize)>> =
        const { RefCell::new(None) };
}

/// The hook a [`TaskHandle`] uses to run queued work while it waits.
/// Returns `true` when it executed a job.
pub(crate) type HelpHook = Option<Arc<dyn Fn() -> bool + Send + Sync>>;

/// Configures and builds a [`TaskRuntime`].
#[derive(Clone, Debug)]
pub struct Builder {
    workers: usize,
    kind: SchedulerKind,
    name: String,
    trace: TraceHandle,
}

impl Default for Builder {
    fn default() -> Self {
        Self {
            workers: thread::available_parallelism().map_or(1, usize::from),
            kind: SchedulerKind::default(),
            name: "partask".to_string(),
            trace: TraceHandle::default(),
        }
    }
}

impl Builder {
    /// Number of worker threads (≥ 1).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        assert!(n >= 1, "a runtime needs at least one worker");
        self.workers = n;
        self
    }

    /// Scheduling policy.
    #[must_use]
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.kind = kind;
        self
    }

    /// Thread-name prefix for the workers.
    #[must_use]
    pub fn name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Record this runtime's events and counters through `trace`
    /// (spawn/run/steal/outcome events on a track named after the
    /// runtime, counters registered as `<name>.<counter>`).
    #[must_use]
    pub fn trace(mut self, trace: &TraceHandle) -> Self {
        self.trace = trace.clone();
        self
    }

    /// Start the worker pool.
    #[must_use]
    pub fn build(self) -> TaskRuntime {
        let (sched, locals) = SharedSched::new(self.kind, self.workers);
        let pid = self.trace.register_track(&self.name);
        let counters = SchedCounters {
            trace: self.trace.clone(),
            pid,
            ..SchedCounters::for_workers(self.workers)
        };
        let spawned = Arc::new(Counter::new());
        let executed = Arc::new(Counter::new());
        let helped = Arc::new(Counter::new());
        let cancelled = Arc::new(Counter::new());
        let timed_out = Arc::new(Counter::new());
        if let Some(reg) = self.trace.metrics() {
            for (suffix, counter) in [
                ("spawned", &spawned),
                ("executed", &executed),
                ("helped", &helped),
                ("cancelled", &cancelled),
                ("timed_out", &timed_out),
                ("local_pops", &counters.local_pops),
                ("global_pops", &counters.global_pops),
                ("steals", &counters.steals),
            ] {
                reg.register_counter(&format!("{}.{suffix}", self.name), counter);
            }
        }
        let inner = Arc::new(RtInner {
            sched,
            counters,
            n_workers: self.workers,
            root_token: CancelToken::new(),
            stop: AtomicBool::new(false),
            progress: AtomicU64::new(0),
            idle: Mutex::new(()),
            idle_cv: Condvar::new(),
            quiescent_cv: Condvar::new(),
            idle_workers: AtomicUsize::new(0),
            idle_probes: AtomicU64::new(0),
            spawned,
            executed,
            helped,
            cancelled,
            timed_out,
            trace: self.trace,
            pid,
            run_ms: per_worker_hists(self.workers),
            deadlines: DeadlineWatch::default(),
        });
        let mut joiners = Vec::with_capacity(self.workers);
        for (index, local) in locals.into_iter().enumerate() {
            let inner_weak = Arc::downgrade(&inner);
            let inner_strong = Arc::clone(&inner);
            joiners.push(
                thread::Builder::new()
                    .name(format!("{}-{index}", self.name))
                    .spawn(move || {
                        WORKER_CTX.with(|ctx| {
                            *ctx.borrow_mut() = Some((inner_weak, local, index));
                        });
                        worker_loop(&inner_strong, index);
                        WORKER_CTX.with(|ctx| ctx.borrow_mut().take());
                    })
                    .expect("failed to spawn worker"),
            );
        }
        TaskRuntime {
            inner,
            joiners: Mutex::new(joiners),
        }
    }
}

/// Insurance timeout for parked idle workers. Submissions wake workers
/// explicitly (see [`RtInner::wake_after_push`]), so this bound is
/// never what delivers work — it only caps the damage if a wakeup were
/// ever lost. Long enough that an idle pool is genuinely parked
/// (compare the 1 ms poll it replaced: ~1000 spurious wakeups per
/// worker-second), short enough that a bug degrades to latency, not a
/// hang.
const IDLE_PARK: Duration = Duration::from_millis(100);

fn worker_loop(inner: &Arc<RtInner>, index: usize) {
    let pop = || {
        WORKER_CTX.with(|ctx| {
            let borrow = ctx.borrow();
            let (_, local, _) = borrow.as_ref().expect("worker ctx set");
            inner.sched.pop_for(local, index, &inner.counters)
        })
    };
    loop {
        match pop() {
            Some(job) => job.run(),
            None => {
                if inner.stop.load(Ordering::Acquire) {
                    // Double-check nothing arrived between the failed
                    // pop and the stop check.
                    match pop() {
                        Some(job) => {
                            job.run();
                            continue;
                        }
                        None => break,
                    }
                }
                // Park until work arrives. The handshake with
                // `wake_after_push`: announce idleness (SeqCst), then
                // re-check for work while holding the idle lock. A
                // producer pushes, fences, and reads `idle_workers` —
                // either it sees our announcement (and its notify
                // cannot run until we release the lock into the wait,
                // so the wakeup is not lost), or its push is ordered
                // before our re-check (so the re-check finds the job).
                inner.idle_probes.fetch_add(1, Ordering::Relaxed);
                let mut guard = inner.idle.lock();
                inner.idle_workers.fetch_add(1, Ordering::SeqCst);
                match pop() {
                    Some(job) => {
                        inner.idle_workers.fetch_sub(1, Ordering::SeqCst);
                        drop(guard);
                        job.run();
                    }
                    None => {
                        if inner.stop.load(Ordering::Acquire) {
                            inner.idle_workers.fetch_sub(1, Ordering::SeqCst);
                            continue; // loop re-pops, then exits
                        }
                        let _ = inner.idle_cv.wait_for(&mut guard, IDLE_PARK);
                        inner.idle_workers.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
        }
    }
}

impl RtInner {
    /// Wake workers after `pushed` jobs were made visible. The `SeqCst`
    /// fence pairs with the idle announcement in [`worker_loop`]: if we
    /// read `idle_workers == 0`, every worker's parked-path re-check is
    /// ordered after our push and will find the work, so skipping the
    /// notify (and its lock + syscall — the old path paid one
    /// `notify_one` per spawn unconditionally) is safe.
    fn wake_after_push(&self, pushed: usize) {
        fence(Ordering::SeqCst);
        if self.idle_workers.load(Ordering::SeqCst) > 0 {
            let _guard = self.idle.lock();
            if pushed > 1 {
                self.idle_cv.notify_all();
            } else {
                self.idle_cv.notify_one();
            }
        }
    }

    fn wake_all(&self) {
        let _guard = self.idle.lock();
        self.idle_cv.notify_all();
    }

    /// The per-worker histogram slot for the calling thread (the extra
    /// shared slot when the caller is not one of this pool's workers).
    fn run_ms_slot(self: &Arc<Self>) -> usize {
        let shared = self.run_ms.len() - 1;
        WORKER_CTX.with(|ctx| {
            ctx.borrow()
                .as_ref()
                .filter(|(weak, _, _)| std::ptr::eq(weak.as_ptr(), Arc::as_ptr(self)))
                .map_or(shared, |(_, _, index)| (*index).min(shared))
        })
    }

    pub(crate) fn record_run_ms(self: &Arc<Self>, ms: f64) {
        self.run_ms[self.run_ms_slot()].0.lock().record(ms);
    }

    /// All per-worker run-duration histograms merged into one.
    fn merged_run_ms(&self) -> LatencyHistogram {
        let mut merged = new_latency_hist();
        for slot in self.run_ms.iter() {
            merged.merge(&slot.0.lock());
        }
        merged
    }

    /// Push a job, preferring the current worker's local deque when the
    /// caller is one of this runtime's workers.
    pub(crate) fn push_job(self: &Arc<Self>, job: Job) {
        let leftover = WORKER_CTX.with(|ctx| {
            let borrow = ctx.borrow();
            if let Some((weak, local, _index)) = borrow.as_ref() {
                if std::ptr::eq(weak.as_ptr(), Arc::as_ptr(self)) {
                    self.sched.push_local(local, job);
                    return None;
                }
            }
            Some(job)
        });
        if let Some(job) = leftover {
            self.sched.push_external(job);
        }
        self.wake_after_push(1);
    }

    /// Push a whole batch: one shared-queue episode from external
    /// threads, or straight into the local deque (no lock at all) when
    /// called from one of this runtime's workers.
    pub(crate) fn push_job_batch(self: &Arc<Self>, jobs: Vec<Job>) {
        let pushed = jobs.len();
        if pushed == 0 {
            return;
        }
        let leftover = WORKER_CTX.with(|ctx| {
            let borrow = ctx.borrow();
            if let Some((weak, local, _index)) = borrow.as_ref() {
                if std::ptr::eq(weak.as_ptr(), Arc::as_ptr(self)) {
                    for job in jobs {
                        self.sched.push_local(local, job);
                    }
                    return None;
                }
            }
            Some(jobs)
        });
        if let Some(jobs) = leftover {
            self.sched.push_external_batch(jobs);
        }
        self.wake_after_push(pushed);
    }

    /// One attempt at running a queued job from shared structures;
    /// used both by helping joins and by external threads.
    fn help_once(self: &Arc<Self>) -> bool {
        if let Some(job) = self.sched.pop_shared(&self.counters) {
            self.helped.inc();
            job.run();
            true
        } else {
            false
        }
    }

    /// Count one submitted job in the packed progress word.
    pub(crate) fn job_spawned(&self) {
        self.progress.fetch_add(1, Ordering::AcqRel);
    }

    /// Count a batch of submitted jobs (one atomic op for the batch).
    fn jobs_spawned(&self, n: usize) {
        self.progress.fetch_add(n as u64, Ordering::AcqRel);
    }

    /// Jobs submitted but not yet finished, from one consistent load.
    fn pending(&self) -> usize {
        unpack_pending(self.progress.load(Ordering::Acquire))
    }

    pub(crate) fn job_finished(&self) {
        let prev = self.progress.fetch_add(FINISH_DELTA, Ordering::AcqRel);
        debug_assert!(unpack_pending(prev) > 0);
        if unpack_pending(prev) == 1 {
            let _guard = self.idle.lock();
            self.quiescent_cv.notify_all();
        }
    }

    /// Register a task with the deadline watchdog, starting the
    /// watchdog thread on first use.
    fn register_deadline(self: &Arc<Self>, entry: DeadlineEntry) {
        let mut st = self.deadlines.state.lock();
        st.entries.push(entry);
        if !st.watcher_running {
            st.watcher_running = true;
            let weak = Arc::downgrade(self);
            // Detached: exits on shutdown (or when the runtime drops)
            // via the shutdown flag set in `stop_deadline_watch`.
            let _ = thread::Builder::new()
                .name("partask-deadline".to_string())
                .spawn(move || deadline_watch_loop(&weak));
        }
        drop(st);
        self.deadlines.cv.notify_all();
    }

    /// Tell the watchdog to exit (idempotent).
    fn stop_deadline_watch(&self) {
        let mut st = self.deadlines.state.lock();
        st.shutdown = true;
        drop(st);
        self.deadlines.cv.notify_all();
    }
}

/// Watchdog body: sleep until the earliest registered deadline, then
/// cancel every overdue, unfinished task and count it as timed out.
fn deadline_watch_loop(weak: &Weak<RtInner>) {
    loop {
        let Some(inner) = weak.upgrade() else { return };
        let mut st = inner.deadlines.state.lock();
        if st.shutdown {
            st.watcher_running = false;
            return;
        }
        let now = Instant::now();
        let mut due = Vec::new();
        let mut i = 0;
        while i < st.entries.len() {
            if st.entries[i].finished.as_ref()() {
                // Completed in time: forget the deadline.
                st.entries.swap_remove(i);
            } else if st.entries[i].due <= now {
                due.push(st.entries.swap_remove(i));
            } else {
                i += 1;
            }
        }
        if due.is_empty() {
            let next = st.entries.iter().map(|e| e.due).min();
            match next {
                Some(at) => {
                    let _ = inner.deadlines.cv.wait_until(&mut st, at);
                }
                None => {
                    // Nothing registered: park until a new entry or
                    // shutdown arrives (bounded for robustness).
                    let _ = inner
                        .deadlines
                        .cv
                        .wait_for(&mut st, Duration::from_millis(50));
                }
            }
            drop(st);
            // Drop the strong ref before looping so a dropped runtime
            // is noticed promptly.
            drop(inner);
            continue;
        }
        drop(st);
        for entry in due {
            // Count before cancelling: the cancel flag's release store is what
            // publishes this increment to a task body that observes cancellation,
            // finishes, and lets a joiner read the stats.
            inner.timed_out.inc();
            entry.token.cancel();
            inner.trace.mark(
                inner.pid,
                MarkKind::TaskOutcome { task: entry.task, outcome: Outcome::TimedOut },
            );
        }
    }
}

/// What [`TaskRuntime::shutdown_graceful`] accomplished.
#[derive(Clone, Debug)]
pub struct DrainReport {
    /// True when the runtime reached quiescence within the budget.
    pub drained: bool,
    /// Live jobs still in flight when the budget expired (0 when
    /// `drained`). These were bodies that had not yet observed their
    /// cancelled token; they still ran to completion before the pool's
    /// threads were joined.
    pub leftover: usize,
    /// Final activity counters, taken after every worker joined.
    pub stats: RuntimeStats,
}

/// The Parallel Task worker pool. See the crate docs for an overview.
pub struct TaskRuntime {
    inner: Arc<RtInner>,
    joiners: Mutex<Vec<thread::JoinHandle<()>>>,
}

/// Cheap, cloneable spawner that does not keep the pool alive. Task
/// bodies capture one of these to spawn subtasks. If the runtime has
/// shut down, spawns degrade to inline execution on the caller.
#[derive(Clone)]
pub struct RuntimeHandle {
    inner: Weak<RtInner>,
}

impl TaskRuntime {
    /// Start configuring a runtime.
    #[must_use]
    pub fn builder() -> Builder {
        Builder::default()
    }

    /// A runtime with default settings (one worker per CPU).
    #[must_use]
    pub fn new() -> Self {
        Builder::default().build()
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.inner.n_workers
    }

    /// A detached spawner usable from inside task bodies.
    #[must_use]
    pub fn handle(&self) -> RuntimeHandle {
        RuntimeHandle {
            inner: Arc::downgrade(&self.inner),
        }
    }

    /// Spawn a task; the `TASK` analogue.
    pub fn spawn<T: Send + 'static>(
        &self,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> TaskHandle<T> {
        spawn_on(&self.inner, move |_t| f())
    }

    /// Spawn a task whose body can observe its own [`CancelToken`].
    /// The token is a child of the runtime's root token, so it also
    /// flips on [`TaskRuntime::shutdown_graceful`].
    pub fn spawn_cancellable<T: Send + 'static>(
        &self,
        f: impl FnOnce(&CancelToken) -> T + Send + 'static,
    ) -> TaskHandle<T> {
        spawn_on(&self.inner, f)
    }

    /// Spawn a cancellable task whose token is a child of `parent`
    /// (rather than of the runtime's root): cancelling `parent`
    /// cancels this task along with the rest of its subtree, and the
    /// task inherits `parent`'s deadline, if any.
    pub fn spawn_cancellable_under<T: Send + 'static>(
        &self,
        parent: &CancelToken,
        f: impl FnOnce(&CancelToken) -> T + Send + 'static,
    ) -> TaskHandle<T> {
        spawn_on_with_token(&self.inner, parent.child(), f)
    }

    /// Spawn a task with an execution budget: when `deadline` elapses
    /// before the task finishes, its [`CancelToken`] is cancelled by a
    /// watchdog thread and the expiry is counted in
    /// [`RuntimeStats::timed_out`].
    ///
    /// Cancellation is cooperative, exactly as with
    /// [`TaskRuntime::spawn_cancellable`]: a body that polls its token
    /// stops early and decides its own result; a queued task that has
    /// not started resolves to [`crate::TaskError::Cancelled`]; a body
    /// that ignores its token runs to completion regardless, and only
    /// the counter records the overrun.
    pub fn spawn_deadline<T: Send + 'static>(
        &self,
        deadline: Duration,
        f: impl FnOnce(&CancelToken) -> T + Send + 'static,
    ) -> TaskHandle<T> {
        self.spawn_deadline_under(&self.inner.root_token, deadline, f)
    }

    /// [`TaskRuntime::spawn_deadline`] with an explicit parent token:
    /// the task's token is a child of `parent` carrying the deadline
    /// (clamped to `parent`'s own deadline, which a child can tighten
    /// but never extend).
    pub fn spawn_deadline_under<T: Send + 'static>(
        &self,
        parent: &CancelToken,
        deadline: Duration,
        f: impl FnOnce(&CancelToken) -> T + Send + 'static,
    ) -> TaskHandle<T> {
        let token = parent.child_with_deadline(deadline);
        let handle = spawn_on_with_token(&self.inner, token, f);
        let core = Arc::clone(&handle.core);
        self.inner.register_deadline(DeadlineEntry {
            due: Instant::now() + deadline,
            task: core.id.as_u64(),
            token: handle.cancel_token(),
            finished: Arc::new(move || core.is_finished()),
        });
        handle
    }

    /// The root of this runtime's cancellation tree. Derive subtree
    /// tokens from it (`root.child()`) to group tasks for collective
    /// cancellation; [`TaskRuntime::shutdown_graceful`] cancels it.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.inner.root_token.clone()
    }

    /// Spawn a task that starts only after every watcher in `deps`
    /// has completed; the `dependsOn` analogue.
    pub fn spawn_after<T: Send + 'static>(
        &self,
        deps: &[TaskWatcher],
        f: impl FnOnce() -> T + Send + 'static,
    ) -> TaskHandle<T> {
        spawn_after_on(&self.inner, deps, move |_t| f())
    }

    /// Spawn `n` copies of a task; the `TASK(n)` multi-task analogue.
    /// Each copy receives its index in `0..n`.
    pub fn spawn_multi<T: Send + 'static>(
        &self,
        n: usize,
        f: impl Fn(usize) -> T + Send + Sync + 'static,
    ) -> crate::multi::MultiHandle<T> {
        crate::multi::spawn_multi(&self.inner, n, f)
    }

    /// Spawn one copy per worker; the `TASK(*)` analogue.
    pub fn spawn_per_worker<T: Send + 'static>(
        &self,
        f: impl Fn(usize) -> T + Send + Sync + 'static,
    ) -> crate::multi::MultiHandle<T> {
        crate::multi::spawn_multi(&self.inner, self.inner.n_workers, f)
    }

    /// Spawn `n` copies of a task as one *batch*: a single completion
    /// structure, a single shared-queue submission episode, and no
    /// per-task allocation — the fast path for fine-grained fan-outs
    /// of thousands of tasks (websim cluster ticks, marking
    /// pipelines). Each copy receives its index in `0..n`; results
    /// come back from [`BatchHandle::join`] in index order.
    ///
    /// Compared to [`TaskRuntime::spawn_multi`], a batch has no
    /// per-member [`TaskHandle`]/watcher machinery (and therefore no
    /// per-member dependence edges or GUI delivery) — it trades that
    /// generality for a spawn→run→join path that touches the
    /// allocator a constant number of times regardless of `n`.
    pub fn spawn_batch<T: Send + 'static>(
        &self,
        n: usize,
        f: impl Fn(usize) -> T + Send + Sync + 'static,
    ) -> BatchHandle<T> {
        spawn_batch_on(&self.inner, n, f)
    }

    /// Join a batch spawned with [`TaskRuntime::spawn_batch`]:
    /// equivalent to [`BatchHandle::join`], provided for symmetry.
    pub fn join_batch<T: Send + 'static>(
        &self,
        batch: BatchHandle<T>,
    ) -> Vec<Result<T, crate::task::TaskError>> {
        batch.join()
    }

    /// Block until every submitted task (including dependence-pending
    /// ones) has finished.
    pub fn wait_quiescent(&self) {
        let inner = &self.inner;
        // Help from this thread while waiting: useful on small pools.
        while inner.pending() != 0 {
            if !inner.help_once() {
                let mut guard = inner.idle.lock();
                if inner.pending() == 0 {
                    break;
                }
                let _ = inner
                    .quiescent_cv
                    .wait_for(&mut guard, Duration::from_micros(500));
            }
        }
    }

    /// An exactly-consistent progress snapshot, from a single atomic
    /// load: `spawned == finished + pending` always holds within one
    /// snapshot, under any concurrent load. (`spawned` here is derived
    /// as `finished + pending`; it equals [`RuntimeStats::spawned`]
    /// once submission racing the snapshot has settled.)
    #[must_use]
    pub fn progress(&self) -> ProgressSnapshot {
        let word = self.inner.progress.load(Ordering::Acquire);
        let pending = unpack_pending(word);
        let finished = word >> 32;
        ProgressSnapshot {
            spawned: finished + pending as u64,
            finished,
            pending,
        }
    }

    /// Number of submitted-but-unfinished jobs (queued, mid-steal, or
    /// running), from one consistent snapshot.
    ///
    /// This *defines* the snapshot semantics the old implementation
    /// lacked: it used to sum the injector and deque lengths under
    /// separate locks, so a job in flight between queues (mid-steal)
    /// or on a worker's stack (running) was double-counted or missed.
    /// Counting at the accounting layer instead of the queue layer
    /// makes the value exact: 0 if and only if the runtime is
    /// quiescent.
    #[must_use]
    pub fn queued_hint(&self) -> usize {
        self.inner.pending()
    }

    /// Diagnostic: how many times a worker entered the idle-parking
    /// path (lock + parked wait) since the pool started. An idle pool
    /// accrues at most one probe per worker per 100 ms — the
    /// regression test for the old busy-spin pins this bound. Not part
    /// of [`RuntimeStats`] (whose fields are schedule-independent).
    #[must_use]
    pub fn idle_probes(&self) -> u64 {
        self.inner.idle_probes.load(Ordering::Relaxed)
    }

    /// Current activity counters.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        let inner = &self.inner;
        RuntimeStats {
            spawned: inner.spawned.get(),
            executed: inner.executed.get(),
            local_pops: inner.counters.local_pops.get(),
            global_pops: inner.counters.global_pops.get(),
            steals: inner.counters.steals.get(),
            helped: inner.helped.get(),
            cancelled: inner.cancelled.get(),
            timed_out: inner.timed_out.get(),
        }
    }

    /// Latency distributions recorded so far (task run duration and
    /// steal-search latency). A snapshot: the histograms keep growing
    /// in the runtime after this returns.
    #[must_use]
    pub fn latencies(&self) -> RuntimeLatencies {
        RuntimeLatencies {
            run_ms: self.inner.merged_run_ms(),
            steal_wait_ms: self.inner.counters.merged_steal_wait(),
        }
    }

    /// Wait for quiescence, then stop and join all workers.
    pub fn shutdown(self) {
        self.shutdown_impl();
    }

    /// Cancel every outstanding task, then drain in-flight work with a
    /// bounded budget before stopping the pool.
    ///
    /// The sequence is deterministic in its *accounting*: the root
    /// token is cancelled first (so every queued task resolves to
    /// [`crate::TaskError::Cancelled`] without running its body, and
    /// every cooperative running body observes its token), then this
    /// thread helps drain until the runtime is quiescent or `budget`
    /// elapses, then workers are stopped and joined. Queued jobs left
    /// at expiry still resolve — workers drain the queue before
    /// exiting — so `spawned == executed` holds in the final stats
    /// regardless of the budget; the budget only bounds how long we
    /// wait for *running* bodies to notice their token.
    pub fn shutdown_graceful(self, budget: Duration) -> DrainReport {
        let deadline = Instant::now() + budget;
        self.inner.root_token.cancel();
        self.inner.wake_all();
        let inner = &self.inner;
        while inner.pending() != 0 && Instant::now() < deadline {
            if !inner.help_once() {
                let mut guard = inner.idle.lock();
                if inner.pending() == 0 {
                    break;
                }
                let _ = inner
                    .quiescent_cv
                    .wait_for(&mut guard, Duration::from_micros(500));
            }
        }
        let leftover = inner.pending();
        inner.stop.store(true, Ordering::Release);
        inner.stop_deadline_watch();
        inner.wake_all();
        let joiners = std::mem::take(&mut *self.joiners.lock());
        let self_id = thread::current().id();
        for j in joiners {
            if j.thread().id() != self_id {
                let _ = j.join();
            }
        }
        DrainReport {
            drained: leftover == 0,
            leftover,
            stats: self.stats(),
        }
    }

    fn shutdown_impl(&self) {
        self.wait_quiescent();
        self.inner.stop.store(true, Ordering::Release);
        self.inner.stop_deadline_watch();
        self.inner.wake_all();
        let joiners = std::mem::take(&mut *self.joiners.lock());
        let self_id = thread::current().id();
        for j in joiners {
            // Never join the current thread (shutdown from a worker).
            if j.thread().id() != self_id {
                let _ = j.join();
            }
        }
    }
}

impl Default for TaskRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for TaskRuntime {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

impl RuntimeHandle {
    /// Spawn a task, or run `f` inline if the runtime is gone.
    pub fn spawn<T: Send + 'static>(
        &self,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> TaskHandle<T> {
        match self.inner.upgrade() {
            Some(inner) => spawn_on(&inner, move |_t| f()),
            None => run_inline(move |_t| f()),
        }
    }

    /// Spawn a cancellable task, or run inline if the runtime is gone.
    pub fn spawn_cancellable<T: Send + 'static>(
        &self,
        f: impl FnOnce(&CancelToken) -> T + Send + 'static,
    ) -> TaskHandle<T> {
        match self.inner.upgrade() {
            Some(inner) => spawn_on(&inner, f),
            None => run_inline(f),
        }
    }

    /// Spawn after dependences, or run inline if the runtime is gone
    /// (dependences are then waited for by polling).
    pub fn spawn_after<T: Send + 'static>(
        &self,
        deps: &[TaskWatcher],
        f: impl FnOnce() -> T + Send + 'static,
    ) -> TaskHandle<T> {
        match self.inner.upgrade() {
            Some(inner) => spawn_after_on(&inner, deps, move |_t| f()),
            None => {
                while deps.iter().any(|d| !d.is_done()) {
                    thread::yield_now();
                }
                run_inline(move |_t| f())
            }
        }
    }

    /// Spawn a batch (see [`TaskRuntime::spawn_batch`]), or run every
    /// member inline in index order if the runtime is gone.
    pub fn spawn_batch<T: Send + 'static>(
        &self,
        n: usize,
        f: impl Fn(usize) -> T + Send + Sync + 'static,
    ) -> BatchHandle<T> {
        match self.inner.upgrade() {
            Some(inner) => spawn_batch_on(&inner, n, f),
            None => {
                let core = BatchCore::new(n, TaskId::fresh_block(n as u64), CancelToken::new());
                for i in 0..n {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)))
                        .map_err(|p| crate::TaskError::Panicked(crate::task::panic_message(&p)));
                    core.store(i, result);
                }
                BatchHandle { core, helper: None }
            }
        }
    }

    /// Is the underlying pool still alive?
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.inner.strong_count() > 0
    }

    /// Execute one queued task on the calling thread, if any is
    /// available. Returns `true` when a task ran.
    ///
    /// This is the building block for *task-aware* blocking: code that
    /// must wait inside a task should alternate its condition check
    /// with `help_once`, so the bounded worker pool keeps making
    /// progress instead of deadlocking (SoftEng 751 project 6).
    pub fn help_once(&self) -> bool {
        match self.inner.upgrade() {
            Some(inner) => inner.help_once(),
            None => false,
        }
    }
}

fn run_inline<T: Send + 'static>(f: impl FnOnce(&CancelToken) -> T) -> TaskHandle<T> {
    let core = Core::new();
    core.run(f);
    TaskHandle { core, helper: None }
}

fn make_helper(inner: &Arc<RtInner>) -> HelpHook {
    let weak = Arc::downgrade(inner);
    Some(Arc::new(move || match weak.upgrade() {
        Some(inner) => inner.help_once(),
        None => false,
    }))
}

/// The shared tail of both spawn paths: count the submission, emit the
/// spawn mark (linked to the spawning thread's current span), and
/// build the worker-side job closure that runs the body inside a
/// `task.run` span and records its outcome.
fn make_traced_job<T: Send + 'static>(
    inner: &Arc<RtInner>,
    core: &Arc<Core<T>>,
    f: impl FnOnce(&CancelToken) -> T + Send + 'static,
) -> Job {
    let task = core.id.as_u64();
    inner.spawned.inc();
    inner.trace.mark(
        inner.pid,
        MarkKind::TaskSpawn { task, parent_span: inner.trace.current_span() },
    );
    inner.job_spawned();
    let job_core = Arc::clone(core);
    let job_inner = Arc::downgrade(inner);
    // 16 bytes of bookkeeping captures + `f`: fits SmallJob's inline
    // slot (no allocation) whenever `f` captures ≤ 48 bytes.
    SmallJob::new(move || {
        let rt = job_inner.upgrade();
        let run_start = Instant::now();
        let was_cancelled = {
            let _span = rt.as_ref().map(|i| i.trace.span(i.pid, SpanKind::TaskRun { task }));
            job_core.run(f)
        };
        if let Some(inner) = rt {
            inner.record_run_ms(run_start.elapsed().as_secs_f64() * 1e3);
            inner.executed.inc();
            let outcome = if was_cancelled {
                inner.cancelled.inc();
                Outcome::Cancelled
            } else {
                Outcome::Completed
            };
            inner.trace.mark(inner.pid, MarkKind::TaskOutcome { task, outcome });
            inner.job_finished();
        }
    })
}

/// Build and submit the member jobs of a [`BatchHandle`] batch: ids
/// from one block allocation, pending counted in one atomic add, and
/// all jobs submitted in one shared-queue episode. Each member job is
/// 32 bytes (stored inline in its [`SmallJob`]) and writes its result
/// into the batch's preallocated slot — the whole fan-out performs a
/// constant number of allocations regardless of `n`.
fn spawn_batch_on<T: Send + 'static>(
    inner: &Arc<RtInner>,
    n: usize,
    f: impl Fn(usize) -> T + Send + Sync + 'static,
) -> BatchHandle<T> {
    let base_id = TaskId::fresh_block(n as u64);
    let core = BatchCore::new(n, base_id, inner.root_token.child());
    inner.spawned.add(n as u64);
    if inner.trace.enabled() {
        let parent_span = inner.trace.current_span();
        for i in 0..n as u64 {
            inner
                .trace
                .mark(inner.pid, MarkKind::TaskSpawn { task: base_id + i, parent_span });
        }
    }
    inner.jobs_spawned(n);
    let shared_f = Arc::new(f);
    let jobs: Vec<Job> = (0..n)
        .map(|index| {
            let core = Arc::clone(&core);
            let f = Arc::clone(&shared_f);
            let weak = Arc::downgrade(inner);
            SmallJob::new(move || run_batch_member(&core, &f, &weak, index))
        })
        .collect();
    inner.push_job_batch(jobs);
    BatchHandle {
        core,
        helper: make_helper(inner),
    }
}

/// Worker-side body of one batch member: the [`Core::run`] analogue
/// against a batch slot (cancellation check, panic containment,
/// outcome accounting), with no per-task completion structure.
fn run_batch_member<T: Send + 'static>(
    core: &Arc<BatchCore<T>>,
    f: &Arc<impl Fn(usize) -> T + Send + Sync + 'static>,
    weak: &Weak<RtInner>,
    index: usize,
) {
    let rt = weak.upgrade();
    let task = core.base_id() + index as u64;
    let run_start = Instant::now();
    let token = core.cancel_token();
    let result = {
        let _span = rt.as_ref().map(|i| i.trace.span(i.pid, SpanKind::TaskRun { task }));
        if token.is_cancelled() {
            Err(crate::task::TaskError::Cancelled)
        } else {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(index)))
                .map_err(|payload| crate::task::TaskError::Panicked(crate::task::panic_message(&*payload)))
        }
    };
    let was_cancelled = matches!(result, Err(crate::task::TaskError::Cancelled));
    core.store(index, result);
    if let Some(inner) = rt {
        inner.record_run_ms(run_start.elapsed().as_secs_f64() * 1e3);
        inner.executed.inc();
        let outcome = if was_cancelled {
            inner.cancelled.inc();
            Outcome::Cancelled
        } else {
            Outcome::Completed
        };
        inner.trace.mark(inner.pid, MarkKind::TaskOutcome { task, outcome });
        inner.job_finished();
    }
}

pub(crate) fn spawn_on<T: Send + 'static>(
    inner: &Arc<RtInner>,
    f: impl FnOnce(&CancelToken) -> T + Send + 'static,
) -> TaskHandle<T> {
    spawn_on_with_token(inner, inner.root_token.child(), f)
}

pub(crate) fn spawn_on_with_token<T: Send + 'static>(
    inner: &Arc<RtInner>,
    token: CancelToken,
    f: impl FnOnce(&CancelToken) -> T + Send + 'static,
) -> TaskHandle<T> {
    let core = Core::with_token(token);
    let job = make_traced_job(inner, &core, f);
    inner.push_job(job);
    TaskHandle {
        core,
        helper: make_helper(inner),
    }
}

pub(crate) fn spawn_after_on<T: Send + 'static>(
    inner: &Arc<RtInner>,
    deps: &[TaskWatcher],
    f: impl FnOnce(&CancelToken) -> T + Send + 'static,
) -> TaskHandle<T> {
    let core = Core::with_token(inner.root_token.child());
    let job = make_traced_job(inner, &core, f);
    if deps.is_empty() {
        inner.push_job(job);
    } else {
        // Gate: schedule the job once `remaining` reaches zero. The
        // +1 guard prevents firing while hooks are still being added.
        struct Gate {
            remaining: AtomicUsize,
            job: Mutex<Option<Job>>,
            rt: Weak<RtInner>,
        }
        impl Gate {
            fn arm(&self) {
                if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    if let Some(job) = self.job.lock().take() {
                        if let Some(rt) = self.rt.upgrade() {
                            rt.push_job(job);
                        } else {
                            job.run();
                        }
                    }
                }
            }
        }
        let gate = Arc::new(Gate {
            remaining: AtomicUsize::new(deps.len() + 1),
            job: Mutex::new(Some(job)),
            rt: Arc::downgrade(inner),
        });
        for dep in deps {
            let gate = Arc::clone(&gate);
            dep.on_done_boxed(Box::new(move || gate.arm()));
        }
        gate.arm();
    }
    TaskHandle {
        core,
        helper: make_helper(inner),
    }
}
