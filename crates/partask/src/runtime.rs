//! The task runtime: worker pool, spawning, dependences, quiescence
//! and shutdown.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread;
use std::time::{Duration, Instant};

use parc_trace::{Counter, LatencyHistogram, MarkKind, Outcome, SpanKind, TraceHandle};
use parking_lot::{Condvar, Mutex};

use crate::sched::{new_latency_hist, Job, LocalQueue, SchedCounters, SchedulerKind, SharedSched};
use crate::task::{CancelToken, Core, TaskHandle, TaskWatcher};

/// Snapshot of runtime activity counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Tasks submitted (including dependence-delayed and multi-task
    /// members).
    pub spawned: u64,
    /// Task bodies executed to completion (including cancelled ones,
    /// which "execute" by resolving to `Cancelled`).
    pub executed: u64,
    /// Jobs a worker popped from its own deque.
    pub local_pops: u64,
    /// Jobs taken from the global injector / shared queue.
    pub global_pops: u64,
    /// Jobs stolen from another worker.
    pub steals: u64,
    /// Jobs executed by helping joiners rather than pool workers.
    pub helped: u64,
    /// Tasks that resolved to [`crate::TaskError::Cancelled`] without
    /// running their body.
    pub cancelled: u64,
    /// Deadline expirations: tasks whose [`TaskRuntime::spawn_deadline`]
    /// budget elapsed before they finished (each also requests
    /// cooperative cancellation).
    pub timed_out: u64,
}

/// Latency distributions the runtime records alongside its counters
/// (log-bucketed, milliseconds; query with `p50()`/`p99()`/`p999()`).
///
/// Kept separate from [`RuntimeStats`] on purpose: stats are compared
/// with `==` across reruns and pool sizes in the determinism suites,
/// while latencies are wall-clock measurements that legitimately vary.
#[derive(Clone, Debug, PartialEq)]
pub struct RuntimeLatencies {
    /// Task-body run duration, from a worker picking the job up to the
    /// body returning (one sample per executed task).
    pub run_ms: LatencyHistogram,
    /// Steal latency: elapsed time from a worker's failed local pop to
    /// the successful steal that ended its search for work (one sample
    /// per steal; searches resolved locally or via the injector do not
    /// record).
    pub steal_wait_ms: LatencyHistogram,
}

pub(crate) struct RtInner {
    pub(crate) sched: SharedSched,
    pub(crate) counters: SchedCounters,
    pub(crate) n_workers: usize,
    /// Root of the runtime's cancellation tree: every spawned task's
    /// token is a child, so cancelling this cancels all of them.
    root_token: CancelToken,
    stop: AtomicBool,
    /// Jobs submitted but not yet finished (includes dep-pending).
    live_jobs: AtomicUsize,
    idle: Mutex<()>,
    idle_cv: Condvar,
    quiescent_cv: Condvar,
    spawned: Arc<Counter>,
    executed: Arc<Counter>,
    helped: Arc<Counter>,
    cancelled: Arc<Counter>,
    timed_out: Arc<Counter>,
    pub(crate) trace: TraceHandle,
    pub(crate) pid: u32,
    /// Task-body run durations (ms); the steal-wait histogram lives in
    /// [`SchedCounters`] next to the steal counter it annotates.
    run_ms: Mutex<LatencyHistogram>,
    deadlines: DeadlineWatch,
}

/// One task registered with the deadline watchdog.
struct DeadlineEntry {
    due: Instant,
    task: u64,
    token: CancelToken,
    finished: Arc<dyn Fn() -> bool + Send + Sync>,
}

#[derive(Default)]
struct DeadlineState {
    entries: Vec<DeadlineEntry>,
    watcher_running: bool,
    shutdown: bool,
}

/// Shared state of the lazily-started watchdog thread that enforces
/// [`TaskRuntime::spawn_deadline`] budgets by cancelling overdue tasks.
#[derive(Default)]
struct DeadlineWatch {
    state: Mutex<DeadlineState>,
    cv: Condvar,
}

thread_local! {
    /// Set for the lifetime of a worker thread: (runtime, local queue,
    /// worker index).
    static WORKER_CTX: RefCell<Option<(Weak<RtInner>, LocalQueue, usize)>> =
        const { RefCell::new(None) };
}

/// The hook a [`TaskHandle`] uses to run queued work while it waits.
/// Returns `true` when it executed a job.
pub(crate) type HelpHook = Option<Arc<dyn Fn() -> bool + Send + Sync>>;

/// Configures and builds a [`TaskRuntime`].
#[derive(Clone, Debug)]
pub struct Builder {
    workers: usize,
    kind: SchedulerKind,
    name: String,
    trace: TraceHandle,
}

impl Default for Builder {
    fn default() -> Self {
        Self {
            workers: thread::available_parallelism().map_or(1, usize::from),
            kind: SchedulerKind::default(),
            name: "partask".to_string(),
            trace: TraceHandle::default(),
        }
    }
}

impl Builder {
    /// Number of worker threads (≥ 1).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        assert!(n >= 1, "a runtime needs at least one worker");
        self.workers = n;
        self
    }

    /// Scheduling policy.
    #[must_use]
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.kind = kind;
        self
    }

    /// Thread-name prefix for the workers.
    #[must_use]
    pub fn name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Record this runtime's events and counters through `trace`
    /// (spawn/run/steal/outcome events on a track named after the
    /// runtime, counters registered as `<name>.<counter>`).
    #[must_use]
    pub fn trace(mut self, trace: &TraceHandle) -> Self {
        self.trace = trace.clone();
        self
    }

    /// Start the worker pool.
    #[must_use]
    pub fn build(self) -> TaskRuntime {
        let (sched, locals) = SharedSched::new(self.kind, self.workers);
        let pid = self.trace.register_track(&self.name);
        let counters = SchedCounters {
            trace: self.trace.clone(),
            pid,
            ..SchedCounters::default()
        };
        let spawned = Arc::new(Counter::new());
        let executed = Arc::new(Counter::new());
        let helped = Arc::new(Counter::new());
        let cancelled = Arc::new(Counter::new());
        let timed_out = Arc::new(Counter::new());
        if let Some(reg) = self.trace.metrics() {
            for (suffix, counter) in [
                ("spawned", &spawned),
                ("executed", &executed),
                ("helped", &helped),
                ("cancelled", &cancelled),
                ("timed_out", &timed_out),
                ("local_pops", &counters.local_pops),
                ("global_pops", &counters.global_pops),
                ("steals", &counters.steals),
            ] {
                reg.register_counter(&format!("{}.{suffix}", self.name), counter);
            }
        }
        let inner = Arc::new(RtInner {
            sched,
            counters,
            n_workers: self.workers,
            root_token: CancelToken::new(),
            stop: AtomicBool::new(false),
            live_jobs: AtomicUsize::new(0),
            idle: Mutex::new(()),
            idle_cv: Condvar::new(),
            quiescent_cv: Condvar::new(),
            spawned,
            executed,
            helped,
            cancelled,
            timed_out,
            trace: self.trace,
            pid,
            run_ms: Mutex::new(new_latency_hist()),
            deadlines: DeadlineWatch::default(),
        });
        let mut joiners = Vec::with_capacity(self.workers);
        for (index, local) in locals.into_iter().enumerate() {
            let inner_weak = Arc::downgrade(&inner);
            let inner_strong = Arc::clone(&inner);
            joiners.push(
                thread::Builder::new()
                    .name(format!("{}-{index}", self.name))
                    .spawn(move || {
                        WORKER_CTX.with(|ctx| {
                            *ctx.borrow_mut() = Some((inner_weak, local, index));
                        });
                        worker_loop(&inner_strong, index);
                        WORKER_CTX.with(|ctx| ctx.borrow_mut().take());
                    })
                    .expect("failed to spawn worker"),
            );
        }
        TaskRuntime {
            inner,
            joiners: Mutex::new(joiners),
        }
    }
}

fn worker_loop(inner: &Arc<RtInner>, index: usize) {
    loop {
        let job = WORKER_CTX.with(|ctx| {
            let borrow = ctx.borrow();
            let (_, local, _) = borrow.as_ref().expect("worker ctx set");
            inner.sched.pop_for(local, index, &inner.counters)
        });
        match job {
            Some(job) => job(),
            None => {
                if inner.stop.load(Ordering::Acquire) {
                    // Double-check nothing arrived between the failed
                    // pop and the stop check.
                    let again = WORKER_CTX.with(|ctx| {
                        let borrow = ctx.borrow();
                        let (_, local, _) = borrow.as_ref().expect("worker ctx set");
                        inner.sched.pop_for(local, index, &inner.counters)
                    });
                    match again {
                        Some(job) => {
                            job();
                            continue;
                        }
                        None => break,
                    }
                }
                let mut guard = inner.idle.lock();
                // Timed wait: cheap insurance against lost wakeups.
                let _ = inner
                    .idle_cv
                    .wait_for(&mut guard, Duration::from_millis(1));
            }
        }
    }
}

impl RtInner {
    fn wake_one(&self) {
        self.idle_cv.notify_one();
    }

    fn wake_all(&self) {
        self.idle_cv.notify_all();
    }

    /// Push a job, preferring the current worker's local deque when the
    /// caller is one of this runtime's workers.
    pub(crate) fn push_job(self: &Arc<Self>, job: Job) {
        let leftover = WORKER_CTX.with(|ctx| {
            let borrow = ctx.borrow();
            if let Some((weak, local, _index)) = borrow.as_ref() {
                if let Some(owner) = weak.upgrade() {
                    if Arc::ptr_eq(&owner, self) {
                        self.sched.push_local(local, job);
                        return None;
                    }
                }
            }
            Some(job)
        });
        if let Some(job) = leftover {
            self.sched.push_external(job);
        }
        self.wake_one();
    }

    /// One attempt at running a queued job from shared structures;
    /// used both by helping joins and by external threads.
    fn help_once(self: &Arc<Self>) -> bool {
        if let Some(job) = self.sched.pop_shared(&self.counters) {
            self.helped.inc();
            job();
            true
        } else {
            false
        }
    }

    fn job_finished(&self) {
        let prev = self.live_jobs.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0);
        if prev == 1 {
            let _guard = self.idle.lock();
            self.quiescent_cv.notify_all();
        }
    }

    /// Register a task with the deadline watchdog, starting the
    /// watchdog thread on first use.
    fn register_deadline(self: &Arc<Self>, entry: DeadlineEntry) {
        let mut st = self.deadlines.state.lock();
        st.entries.push(entry);
        if !st.watcher_running {
            st.watcher_running = true;
            let weak = Arc::downgrade(self);
            // Detached: exits on shutdown (or when the runtime drops)
            // via the shutdown flag set in `stop_deadline_watch`.
            let _ = thread::Builder::new()
                .name("partask-deadline".to_string())
                .spawn(move || deadline_watch_loop(&weak));
        }
        drop(st);
        self.deadlines.cv.notify_all();
    }

    /// Tell the watchdog to exit (idempotent).
    fn stop_deadline_watch(&self) {
        let mut st = self.deadlines.state.lock();
        st.shutdown = true;
        drop(st);
        self.deadlines.cv.notify_all();
    }
}

/// Watchdog body: sleep until the earliest registered deadline, then
/// cancel every overdue, unfinished task and count it as timed out.
fn deadline_watch_loop(weak: &Weak<RtInner>) {
    loop {
        let Some(inner) = weak.upgrade() else { return };
        let mut st = inner.deadlines.state.lock();
        if st.shutdown {
            st.watcher_running = false;
            return;
        }
        let now = Instant::now();
        let mut due = Vec::new();
        let mut i = 0;
        while i < st.entries.len() {
            if st.entries[i].finished.as_ref()() {
                // Completed in time: forget the deadline.
                st.entries.swap_remove(i);
            } else if st.entries[i].due <= now {
                due.push(st.entries.swap_remove(i));
            } else {
                i += 1;
            }
        }
        if due.is_empty() {
            let next = st.entries.iter().map(|e| e.due).min();
            match next {
                Some(at) => {
                    let _ = inner.deadlines.cv.wait_until(&mut st, at);
                }
                None => {
                    // Nothing registered: park until a new entry or
                    // shutdown arrives (bounded for robustness).
                    let _ = inner
                        .deadlines
                        .cv
                        .wait_for(&mut st, Duration::from_millis(50));
                }
            }
            drop(st);
            // Drop the strong ref before looping so a dropped runtime
            // is noticed promptly.
            drop(inner);
            continue;
        }
        drop(st);
        for entry in due {
            // Count before cancelling: the cancel flag's release store is what
            // publishes this increment to a task body that observes cancellation,
            // finishes, and lets a joiner read the stats.
            inner.timed_out.inc();
            entry.token.cancel();
            inner.trace.mark(
                inner.pid,
                MarkKind::TaskOutcome { task: entry.task, outcome: Outcome::TimedOut },
            );
        }
    }
}

/// What [`TaskRuntime::shutdown_graceful`] accomplished.
#[derive(Clone, Debug)]
pub struct DrainReport {
    /// True when the runtime reached quiescence within the budget.
    pub drained: bool,
    /// Live jobs still in flight when the budget expired (0 when
    /// `drained`). These were bodies that had not yet observed their
    /// cancelled token; they still ran to completion before the pool's
    /// threads were joined.
    pub leftover: usize,
    /// Final activity counters, taken after every worker joined.
    pub stats: RuntimeStats,
}

/// The Parallel Task worker pool. See the crate docs for an overview.
pub struct TaskRuntime {
    inner: Arc<RtInner>,
    joiners: Mutex<Vec<thread::JoinHandle<()>>>,
}

/// Cheap, cloneable spawner that does not keep the pool alive. Task
/// bodies capture one of these to spawn subtasks. If the runtime has
/// shut down, spawns degrade to inline execution on the caller.
#[derive(Clone)]
pub struct RuntimeHandle {
    inner: Weak<RtInner>,
}

impl TaskRuntime {
    /// Start configuring a runtime.
    #[must_use]
    pub fn builder() -> Builder {
        Builder::default()
    }

    /// A runtime with default settings (one worker per CPU).
    #[must_use]
    pub fn new() -> Self {
        Builder::default().build()
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.inner.n_workers
    }

    /// A detached spawner usable from inside task bodies.
    #[must_use]
    pub fn handle(&self) -> RuntimeHandle {
        RuntimeHandle {
            inner: Arc::downgrade(&self.inner),
        }
    }

    /// Spawn a task; the `TASK` analogue.
    pub fn spawn<T: Send + 'static>(
        &self,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> TaskHandle<T> {
        spawn_on(&self.inner, move |_t| f())
    }

    /// Spawn a task whose body can observe its own [`CancelToken`].
    /// The token is a child of the runtime's root token, so it also
    /// flips on [`TaskRuntime::shutdown_graceful`].
    pub fn spawn_cancellable<T: Send + 'static>(
        &self,
        f: impl FnOnce(&CancelToken) -> T + Send + 'static,
    ) -> TaskHandle<T> {
        spawn_on(&self.inner, f)
    }

    /// Spawn a cancellable task whose token is a child of `parent`
    /// (rather than of the runtime's root): cancelling `parent`
    /// cancels this task along with the rest of its subtree, and the
    /// task inherits `parent`'s deadline, if any.
    pub fn spawn_cancellable_under<T: Send + 'static>(
        &self,
        parent: &CancelToken,
        f: impl FnOnce(&CancelToken) -> T + Send + 'static,
    ) -> TaskHandle<T> {
        spawn_on_with_token(&self.inner, parent.child(), f)
    }

    /// Spawn a task with an execution budget: when `deadline` elapses
    /// before the task finishes, its [`CancelToken`] is cancelled by a
    /// watchdog thread and the expiry is counted in
    /// [`RuntimeStats::timed_out`].
    ///
    /// Cancellation is cooperative, exactly as with
    /// [`TaskRuntime::spawn_cancellable`]: a body that polls its token
    /// stops early and decides its own result; a queued task that has
    /// not started resolves to [`crate::TaskError::Cancelled`]; a body
    /// that ignores its token runs to completion regardless, and only
    /// the counter records the overrun.
    pub fn spawn_deadline<T: Send + 'static>(
        &self,
        deadline: Duration,
        f: impl FnOnce(&CancelToken) -> T + Send + 'static,
    ) -> TaskHandle<T> {
        self.spawn_deadline_under(&self.inner.root_token, deadline, f)
    }

    /// [`TaskRuntime::spawn_deadline`] with an explicit parent token:
    /// the task's token is a child of `parent` carrying the deadline
    /// (clamped to `parent`'s own deadline, which a child can tighten
    /// but never extend).
    pub fn spawn_deadline_under<T: Send + 'static>(
        &self,
        parent: &CancelToken,
        deadline: Duration,
        f: impl FnOnce(&CancelToken) -> T + Send + 'static,
    ) -> TaskHandle<T> {
        let token = parent.child_with_deadline(deadline);
        let handle = spawn_on_with_token(&self.inner, token, f);
        let core = Arc::clone(&handle.core);
        self.inner.register_deadline(DeadlineEntry {
            due: Instant::now() + deadline,
            task: core.id.as_u64(),
            token: handle.cancel_token(),
            finished: Arc::new(move || core.is_finished()),
        });
        handle
    }

    /// The root of this runtime's cancellation tree. Derive subtree
    /// tokens from it (`root.child()`) to group tasks for collective
    /// cancellation; [`TaskRuntime::shutdown_graceful`] cancels it.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.inner.root_token.clone()
    }

    /// Spawn a task that starts only after every watcher in `deps`
    /// has completed; the `dependsOn` analogue.
    pub fn spawn_after<T: Send + 'static>(
        &self,
        deps: &[TaskWatcher],
        f: impl FnOnce() -> T + Send + 'static,
    ) -> TaskHandle<T> {
        spawn_after_on(&self.inner, deps, move |_t| f())
    }

    /// Spawn `n` copies of a task; the `TASK(n)` multi-task analogue.
    /// Each copy receives its index in `0..n`.
    pub fn spawn_multi<T: Send + 'static>(
        &self,
        n: usize,
        f: impl Fn(usize) -> T + Send + Sync + 'static,
    ) -> crate::multi::MultiHandle<T> {
        crate::multi::spawn_multi(&self.inner, n, f)
    }

    /// Spawn one copy per worker; the `TASK(*)` analogue.
    pub fn spawn_per_worker<T: Send + 'static>(
        &self,
        f: impl Fn(usize) -> T + Send + Sync + 'static,
    ) -> crate::multi::MultiHandle<T> {
        crate::multi::spawn_multi(&self.inner, self.inner.n_workers, f)
    }

    /// Block until every submitted task (including dependence-pending
    /// ones) has finished.
    pub fn wait_quiescent(&self) {
        let inner = &self.inner;
        // Help from this thread while waiting: useful on small pools.
        while inner.live_jobs.load(Ordering::Acquire) != 0 {
            if !inner.help_once() {
                let mut guard = inner.idle.lock();
                if inner.live_jobs.load(Ordering::Acquire) == 0 {
                    break;
                }
                let _ = inner
                    .quiescent_cv
                    .wait_for(&mut guard, Duration::from_micros(500));
            }
        }
    }

    /// Rough number of jobs currently visible in queues (diagnostic).
    #[must_use]
    pub fn queued_hint(&self) -> usize {
        self.inner.sched.shared_len_hint()
    }

    /// Current activity counters.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        let inner = &self.inner;
        RuntimeStats {
            spawned: inner.spawned.get(),
            executed: inner.executed.get(),
            local_pops: inner.counters.local_pops.get(),
            global_pops: inner.counters.global_pops.get(),
            steals: inner.counters.steals.get(),
            helped: inner.helped.get(),
            cancelled: inner.cancelled.get(),
            timed_out: inner.timed_out.get(),
        }
    }

    /// Latency distributions recorded so far (task run duration and
    /// steal-search latency). A snapshot: the histograms keep growing
    /// in the runtime after this returns.
    #[must_use]
    pub fn latencies(&self) -> RuntimeLatencies {
        RuntimeLatencies {
            run_ms: self.inner.run_ms.lock().clone(),
            steal_wait_ms: self.inner.counters.steal_wait_ms.lock().clone(),
        }
    }

    /// Wait for quiescence, then stop and join all workers.
    pub fn shutdown(self) {
        self.shutdown_impl();
    }

    /// Cancel every outstanding task, then drain in-flight work with a
    /// bounded budget before stopping the pool.
    ///
    /// The sequence is deterministic in its *accounting*: the root
    /// token is cancelled first (so every queued task resolves to
    /// [`crate::TaskError::Cancelled`] without running its body, and
    /// every cooperative running body observes its token), then this
    /// thread helps drain until the runtime is quiescent or `budget`
    /// elapses, then workers are stopped and joined. Queued jobs left
    /// at expiry still resolve — workers drain the queue before
    /// exiting — so `spawned == executed` holds in the final stats
    /// regardless of the budget; the budget only bounds how long we
    /// wait for *running* bodies to notice their token.
    pub fn shutdown_graceful(self, budget: Duration) -> DrainReport {
        let deadline = Instant::now() + budget;
        self.inner.root_token.cancel();
        self.inner.wake_all();
        let inner = &self.inner;
        while inner.live_jobs.load(Ordering::Acquire) != 0 && Instant::now() < deadline {
            if !inner.help_once() {
                let mut guard = inner.idle.lock();
                if inner.live_jobs.load(Ordering::Acquire) == 0 {
                    break;
                }
                let _ = inner
                    .quiescent_cv
                    .wait_for(&mut guard, Duration::from_micros(500));
            }
        }
        let leftover = inner.live_jobs.load(Ordering::Acquire);
        inner.stop.store(true, Ordering::Release);
        inner.stop_deadline_watch();
        inner.wake_all();
        let joiners = std::mem::take(&mut *self.joiners.lock());
        let self_id = thread::current().id();
        for j in joiners {
            if j.thread().id() != self_id {
                let _ = j.join();
            }
        }
        DrainReport {
            drained: leftover == 0,
            leftover,
            stats: self.stats(),
        }
    }

    fn shutdown_impl(&self) {
        self.wait_quiescent();
        self.inner.stop.store(true, Ordering::Release);
        self.inner.stop_deadline_watch();
        self.inner.wake_all();
        let joiners = std::mem::take(&mut *self.joiners.lock());
        let self_id = thread::current().id();
        for j in joiners {
            // Never join the current thread (shutdown from a worker).
            if j.thread().id() != self_id {
                let _ = j.join();
            }
        }
    }
}

impl Default for TaskRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for TaskRuntime {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

impl RuntimeHandle {
    /// Spawn a task, or run `f` inline if the runtime is gone.
    pub fn spawn<T: Send + 'static>(
        &self,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> TaskHandle<T> {
        match self.inner.upgrade() {
            Some(inner) => spawn_on(&inner, move |_t| f()),
            None => run_inline(move |_t| f()),
        }
    }

    /// Spawn a cancellable task, or run inline if the runtime is gone.
    pub fn spawn_cancellable<T: Send + 'static>(
        &self,
        f: impl FnOnce(&CancelToken) -> T + Send + 'static,
    ) -> TaskHandle<T> {
        match self.inner.upgrade() {
            Some(inner) => spawn_on(&inner, f),
            None => run_inline(f),
        }
    }

    /// Spawn after dependences, or run inline if the runtime is gone
    /// (dependences are then waited for by polling).
    pub fn spawn_after<T: Send + 'static>(
        &self,
        deps: &[TaskWatcher],
        f: impl FnOnce() -> T + Send + 'static,
    ) -> TaskHandle<T> {
        match self.inner.upgrade() {
            Some(inner) => spawn_after_on(&inner, deps, move |_t| f()),
            None => {
                while deps.iter().any(|d| !d.is_done()) {
                    thread::yield_now();
                }
                run_inline(move |_t| f())
            }
        }
    }

    /// Is the underlying pool still alive?
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.inner.strong_count() > 0
    }

    /// Execute one queued task on the calling thread, if any is
    /// available. Returns `true` when a task ran.
    ///
    /// This is the building block for *task-aware* blocking: code that
    /// must wait inside a task should alternate its condition check
    /// with `help_once`, so the bounded worker pool keeps making
    /// progress instead of deadlocking (SoftEng 751 project 6).
    pub fn help_once(&self) -> bool {
        match self.inner.upgrade() {
            Some(inner) => inner.help_once(),
            None => false,
        }
    }
}

fn run_inline<T: Send + 'static>(f: impl FnOnce(&CancelToken) -> T) -> TaskHandle<T> {
    let core = Core::new();
    core.run(f);
    TaskHandle { core, helper: None }
}

fn make_helper(inner: &Arc<RtInner>) -> HelpHook {
    let weak = Arc::downgrade(inner);
    Some(Arc::new(move || match weak.upgrade() {
        Some(inner) => inner.help_once(),
        None => false,
    }))
}

/// The shared tail of both spawn paths: count the submission, emit the
/// spawn mark (linked to the spawning thread's current span), and
/// build the worker-side job closure that runs the body inside a
/// `task.run` span and records its outcome.
fn make_traced_job<T: Send + 'static>(
    inner: &Arc<RtInner>,
    core: &Arc<Core<T>>,
    f: impl FnOnce(&CancelToken) -> T + Send + 'static,
) -> Job {
    let task = core.id.as_u64();
    inner.spawned.inc();
    inner.trace.mark(
        inner.pid,
        MarkKind::TaskSpawn { task, parent_span: inner.trace.current_span() },
    );
    inner.live_jobs.fetch_add(1, Ordering::AcqRel);
    let job_core = Arc::clone(core);
    let job_inner = Arc::downgrade(inner);
    Box::new(move || {
        let rt = job_inner.upgrade();
        let run_start = Instant::now();
        let was_cancelled = {
            let _span = rt.as_ref().map(|i| i.trace.span(i.pid, SpanKind::TaskRun { task }));
            job_core.run(f)
        };
        if let Some(inner) = rt {
            inner.run_ms.lock().record(run_start.elapsed().as_secs_f64() * 1e3);
            inner.executed.inc();
            let outcome = if was_cancelled {
                inner.cancelled.inc();
                Outcome::Cancelled
            } else {
                Outcome::Completed
            };
            inner.trace.mark(inner.pid, MarkKind::TaskOutcome { task, outcome });
            inner.job_finished();
        }
    })
}

pub(crate) fn spawn_on<T: Send + 'static>(
    inner: &Arc<RtInner>,
    f: impl FnOnce(&CancelToken) -> T + Send + 'static,
) -> TaskHandle<T> {
    spawn_on_with_token(inner, inner.root_token.child(), f)
}

pub(crate) fn spawn_on_with_token<T: Send + 'static>(
    inner: &Arc<RtInner>,
    token: CancelToken,
    f: impl FnOnce(&CancelToken) -> T + Send + 'static,
) -> TaskHandle<T> {
    let core = Core::with_token(token);
    let job = make_traced_job(inner, &core, f);
    inner.push_job(job);
    TaskHandle {
        core,
        helper: make_helper(inner),
    }
}

pub(crate) fn spawn_after_on<T: Send + 'static>(
    inner: &Arc<RtInner>,
    deps: &[TaskWatcher],
    f: impl FnOnce(&CancelToken) -> T + Send + 'static,
) -> TaskHandle<T> {
    let core = Core::with_token(inner.root_token.child());
    let job = make_traced_job(inner, &core, f);
    if deps.is_empty() {
        inner.push_job(job);
    } else {
        // Gate: schedule the job once `remaining` reaches zero. The
        // +1 guard prevents firing while hooks are still being added.
        struct Gate {
            remaining: AtomicUsize,
            job: Mutex<Option<Job>>,
            rt: Weak<RtInner>,
        }
        impl Gate {
            fn arm(&self) {
                if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    if let Some(job) = self.job.lock().take() {
                        if let Some(rt) = self.rt.upgrade() {
                            rt.push_job(job);
                        } else {
                            job();
                        }
                    }
                }
            }
        }
        let gate = Arc::new(Gate {
            remaining: AtomicUsize::new(deps.len() + 1),
            job: Mutex::new(Some(job)),
            rt: Arc::downgrade(inner),
        });
        for dep in deps {
            let gate = Arc::clone(&gate);
            dep.on_done_boxed(Box::new(move || gate.arm()));
        }
        gate.arm();
    }
    TaskHandle {
        core,
        helper: make_helper(inner),
    }
}
