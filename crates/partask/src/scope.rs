//! Structured (scoped) tasks: spawn tasks that borrow from the
//! enclosing stack frame.
//!
//! Parallel Task programs routinely parallelise over local data; in
//! Rust that needs a *scope* that guarantees every spawned task
//! finishes before the borrowed data goes out of scope (the same
//! contract as `std::thread::scope` / rayon's `scope`). The
//! implementation erases the closure lifetimes and re-establishes
//! safety with a completion latch that [`TaskRuntime::scope`] waits on
//! before returning — and the waiting thread *helps*, so scopes nested
//! inside tasks cannot deadlock the pool.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::runtime::TaskRuntime;
use crate::task::TaskError;

/// Handle passed to the scope body for spawning borrowed tasks.
pub struct Scope<'scope, 'env: 'scope> {
    rt: &'scope TaskRuntime,
    state: Arc<ScopeState>,
    _marker: std::marker::PhantomData<&'scope mut &'env ()>,
}

struct ScopeState {
    pending: AtomicUsize,
    panicked: AtomicBool,
    panic_msg: Mutex<Option<String>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task that may borrow anything outliving the scope.
    /// Results are not returned directly — write into borrowed slots
    /// or use [`crate::interim::channel`]; this mirrors scoped-thread
    /// APIs. A panic inside any scoped task is re-thrown by
    /// [`TaskRuntime::scope`] after all tasks finish.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        // SAFETY: `scope()` blocks until `pending` reaches zero, so
        // the closure (and everything it borrows, bounded by 'scope)
        // outlives its execution.
        let f_static: Box<dyn FnOnce() + Send + 'static> =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, _>(Box::new(f)) };
        let handle = self.rt.spawn(f_static);
        handle.deliver_inline(move |result| {
            if let Err(TaskError::Panicked(msg)) = result {
                if !state.panicked.swap(true, Ordering::AcqRel) {
                    *state.panic_msg.lock() = Some(msg);
                }
            }
            state.pending.fetch_sub(1, Ordering::AcqRel);
        });
    }
}

impl TaskRuntime {
    /// Run `body` with a [`Scope`]; every task spawned through the
    /// scope completes before `scope` returns. If any scoped task
    /// panicked, the panic is resumed on the caller (after all tasks
    /// have still been waited for).
    pub fn scope<'env, F, R>(&self, body: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic_msg: Mutex::new(None),
        });
        let scope = Scope {
            rt: self,
            state: Arc::clone(&state),
            _marker: std::marker::PhantomData,
        };
        let out = body(&scope);
        // Wait for all scoped tasks, helping while we wait.
        let handle = self.handle();
        while state.pending.load(Ordering::Acquire) != 0 {
            if !handle.help_once() {
                std::thread::yield_now();
            }
        }
        if state.panicked.load(Ordering::Acquire) {
            let msg = state
                .panic_msg
                .lock()
                .take()
                .unwrap_or_else(|| "scoped task panicked".to_string());
            panic!("scoped task panicked: {msg}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scoped_tasks_borrow_local_data() {
        let rt = TaskRuntime::builder().workers(2).build();
        let data: Vec<u64> = (0..1000).collect();
        let total = AtomicU64::new(0);
        rt.scope(|s| {
            for chunk in data.chunks(100) {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 499_500);
        rt.shutdown();
    }

    #[test]
    fn scope_returns_body_value() {
        let rt = TaskRuntime::builder().workers(1).build();
        let out = rt.scope(|s| {
            s.spawn(|| {});
            "body value"
        });
        assert_eq!(out, "body value");
        rt.shutdown();
    }

    #[test]
    fn scoped_writes_to_disjoint_slices() {
        let rt = TaskRuntime::builder().workers(2).build();
        let mut out = vec![0u64; 64];
        rt.scope(|s| {
            for (i, slot) in out.chunks_mut(16).enumerate() {
                s.spawn(move || {
                    for (j, x) in slot.iter_mut().enumerate() {
                        *x = (i * 16 + j) as u64;
                    }
                });
            }
        });
        assert_eq!(out, (0..64u64).collect::<Vec<_>>());
        rt.shutdown();
    }

    #[test]
    #[should_panic(expected = "scoped task panicked: kaboom")]
    fn scope_propagates_panics_after_completion() {
        let rt = TaskRuntime::builder().workers(2).build();
        let finished = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&finished);
        rt.scope(|s| {
            s.spawn(|| panic!("kaboom"));
            s.spawn(move || {
                f2.fetch_add(1, Ordering::Relaxed);
            });
        });
    }

    #[test]
    fn nested_scopes_inside_tasks() {
        let rt = TaskRuntime::builder().workers(2).build();
        let handle = rt.handle();
        let t = rt.spawn(move || {
            // A scope cannot be used inside a plain spawn (it borrows
            // the runtime), but help-based waiting means a task can
            // simply block on children; emulate a nested structured
            // join:
            let inner: Vec<_> = (0..4).map(|i| handle.spawn(move || i * 2)).collect();
            inner.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        });
        assert_eq!(t.join().unwrap(), 12);
        rt.shutdown();
    }

    #[test]
    fn empty_scope_is_fine() {
        let rt = TaskRuntime::builder().workers(1).build();
        let v = rt.scope(|_s| 42);
        assert_eq!(v, 42);
        rt.shutdown();
    }

    #[test]
    fn many_scoped_waves() {
        let rt = TaskRuntime::builder().workers(2).build();
        let counter = AtomicU64::new(0);
        for _ in 0..20 {
            rt.scope(|s| {
                for _ in 0..20 {
                    let counter = &counter;
                    s.spawn(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 400);
        rt.shutdown();
    }
}
