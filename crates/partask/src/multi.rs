//! Multi-tasks: the `TASK(n)` / `TASK(*)` analogue.
//!
//! A multi-task launches `n` instances of the same body, each knowing
//! its index, and exposes the group as one handle. Parallel Task uses
//! these for data-parallel loops inside an otherwise task-parallel
//! program — e.g. one sub-range of a gallery per instance.

use std::sync::Arc;

use crate::runtime::{spawn_on, RtInner};
use crate::task::{TaskError, TaskHandle, TaskWatcher};

/// Handle to a group of `n` task instances.
pub struct MultiHandle<T> {
    handles: Vec<TaskHandle<T>>,
}

pub(crate) fn spawn_multi<T: Send + 'static>(
    inner: &Arc<RtInner>,
    n: usize,
    f: impl Fn(usize) -> T + Send + Sync + 'static,
) -> MultiHandle<T> {
    assert!(n > 0, "a multi-task needs at least one instance");
    let f = Arc::new(f);
    let handles = (0..n)
        .map(|i| {
            let f = Arc::clone(&f);
            spawn_on(inner, move |_t| f(i))
        })
        .collect();
    MultiHandle { handles }
}

impl<T: Send + 'static> MultiHandle<T> {
    /// Number of instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Never true: construction requires `n > 0`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// True once every instance has completed.
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.handles.iter().all(TaskHandle::is_done)
    }

    /// Number of instances that have completed so far — drives
    /// progress bars in the GUI scenarios.
    #[must_use]
    pub fn done_count(&self) -> usize {
        self.handles.iter().filter(|h| h.is_done()).count()
    }

    /// Block until all instances complete.
    pub fn wait_all(&self) {
        for h in &self.handles {
            h.wait();
        }
    }

    /// Join all instances in index order. Returns the first error
    /// encountered (remaining instances are still waited for, so no
    /// work is left dangling).
    pub fn join_all(self) -> Result<Vec<T>, TaskError> {
        self.wait_all();
        let mut out = Vec::with_capacity(self.handles.len());
        let mut first_err = None;
        for h in self.handles {
            match h.join() {
                Ok(v) => out.push(v),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Join and fold the instance results in index order.
    pub fn join_reduce<A>(
        self,
        init: A,
        fold: impl FnMut(A, T) -> A,
    ) -> Result<A, TaskError> {
        let values = self.join_all()?;
        Ok(values.into_iter().fold(init, fold))
    }

    /// Watchers for every instance, e.g. to make another task depend
    /// on the whole group.
    #[must_use]
    pub fn watchers(&self) -> Vec<TaskWatcher> {
        self.handles.iter().map(TaskHandle::watcher).collect()
    }

    /// Request cancellation of all not-yet-started instances.
    pub fn cancel_all(&self) {
        for h in &self.handles {
            h.cancel();
        }
    }
}
