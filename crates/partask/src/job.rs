//! Small-closure job storage: the scheduler's unit of work without a
//! mandatory heap allocation.
//!
//! The previous `type Job = Box<dyn FnOnce() + Send>` put one
//! allocation on the spawn path of *every* task. [`SmallJob`] stores
//! closures up to [`INLINE_BYTES`] inline (the spawn path's traced-job
//! closure is an `Arc` + `Weak` + small user capture, comfortably
//! under the limit; batch-member jobs are 32 bytes), falling back to a
//! box only for oversized captures. The deque then moves jobs by
//! value: spawn→run for a fine-grained task touches the allocator
//! zero times.
//!
//! The layout is a hand-rolled two-entry vtable: a `call` thunk that
//! consumes the closure and a `drop` thunk for jobs discarded without
//! running (e.g. a deque dropped with items still queued). Both are
//! monomorphised per closure type by [`SmallJob::new`].

use std::mem::{self, ManuallyDrop, MaybeUninit};
use std::ptr;

/// Inline capacity in machine words; 8 × 8 = 64 bytes on 64-bit.
const INLINE_WORDS: usize = 8;
/// Inline capacity in bytes — closures at most this large (and at most
/// word-aligned) are stored without allocating.
pub(crate) const INLINE_BYTES: usize = INLINE_WORDS * mem::size_of::<usize>();

type Slot = [MaybeUninit<usize>; INLINE_WORDS];

/// A `FnOnce() + Send` with inline small-closure storage.
pub(crate) struct SmallJob {
    data: Slot,
    /// Consume the stored closure and run it.
    call: unsafe fn(*mut Slot),
    /// Drop the stored closure without running it.
    drop_fn: unsafe fn(*mut Slot),
}

// SAFETY: `new` requires `F: Send`, and the closure is owned by
// exactly one `SmallJob` at a time.
unsafe impl Send for SmallJob {}

/// Whether `F` fits the inline slot (size *and* alignment).
fn fits_inline<F>() -> bool {
    mem::size_of::<F>() <= INLINE_BYTES && mem::align_of::<F>() <= mem::align_of::<usize>()
}

unsafe fn call_inline<F: FnOnce()>(slot: *mut Slot) {
    // SAFETY: `new` wrote an `F` at the slot start; calling consumes it.
    let f: F = ptr::read(slot.cast::<F>());
    f();
}

unsafe fn drop_inline<F>(slot: *mut Slot) {
    // SAFETY: as above; dropping instead of calling.
    ptr::drop_in_place(slot.cast::<F>());
}

unsafe fn call_boxed<F: FnOnce()>(slot: *mut Slot) {
    // SAFETY: `new` wrote a `Box<F>` pointer at the slot start.
    let b: Box<F> = Box::from_raw(ptr::read(slot.cast::<*mut F>()));
    (*b)();
}

unsafe fn drop_boxed<F>(slot: *mut Slot) {
    // SAFETY: as above.
    drop(Box::from_raw(ptr::read(slot.cast::<*mut F>())));
}

impl SmallJob {
    /// Wrap a closure, storing it inline when it fits.
    pub(crate) fn new<F: FnOnce() + Send + 'static>(f: F) -> Self {
        let mut data: Slot = [MaybeUninit::uninit(); INLINE_WORDS];
        if fits_inline::<F>() {
            // SAFETY: size and alignment checked; the slot owns `f`
            // until `run` or drop.
            unsafe { ptr::write(data.as_mut_ptr().cast::<F>(), f) };
            Self {
                data,
                call: call_inline::<F>,
                drop_fn: drop_inline::<F>,
            }
        } else {
            let boxed = Box::into_raw(Box::new(f));
            // SAFETY: a thin pointer always fits the first word.
            unsafe { ptr::write(data.as_mut_ptr().cast::<*mut F>(), boxed) };
            Self {
                data,
                call: call_boxed::<F>,
                drop_fn: drop_boxed::<F>,
            }
        }
    }

    /// Run the stored closure, consuming the job.
    pub(crate) fn run(self) {
        let mut this = ManuallyDrop::new(self);
        // SAFETY: `call` matches how `new` stored the closure, and
        // `ManuallyDrop` prevents the drop thunk from double-freeing.
        unsafe { (this.call)(&mut this.data) };
    }
}

impl Drop for SmallJob {
    fn drop(&mut self) {
        // SAFETY: only reached when the job was never run.
        unsafe { (self.drop_fn)(&mut self.data) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn small_closure_is_inline_and_runs() {
        let hit = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hit);
        assert!(fits_inline::<Box<dyn Fn()>>());
        let job = SmallJob::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        job.run();
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn oversized_closure_falls_back_to_box() {
        let big = [7u64; 32]; // 256 bytes of capture
        let hit = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hit);
        let job = SmallJob::new(move || {
            h.fetch_add(big.iter().sum::<u64>() as usize, Ordering::SeqCst);
        });
        job.run();
        assert_eq!(hit.load(Ordering::SeqCst), 7 * 32);
    }

    #[test]
    fn unrun_jobs_drop_their_captures() {
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let small = Probe(Arc::clone(&drops));
        let big = (Probe(Arc::clone(&drops)), [0u8; 128]);
        drop(SmallJob::new(move || drop(small)));
        drop(SmallJob::new(move || drop(big)));
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }
}
