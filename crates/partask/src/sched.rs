//! The task schedulers: work-stealing (lock-free and locked) and
//! work-sharing.
//!
//! The PARC runtime exposed interchangeable scheduling policies and
//! one SoftEng 751 project compared "different ways to schedule the
//! workload"; experiment A1 reproduces that comparison. All policies
//! present the same interface to the runtime:
//!
//! * [`SchedulerKind::WorkStealing`] — per-worker lock-free Chase–Lev
//!   deques (LIFO for the owner, FIFO for thieves, CAS-based steal)
//!   plus a global injector queue for tasks submitted from outside the
//!   pool. This is the classic Cilk/rayon design: good locality,
//!   distributed contention, and no lock on the owner's hot path.
//! * [`SchedulerKind::WorkStealingLocked`] — the same policy on the
//!   previous `Mutex<VecDeque>` deque substrate, kept as the measured
//!   baseline for the E-SCHED ablation (`examples/sched_bench.rs`).
//! * [`SchedulerKind::WorkSharing`] — one global FIFO protected by a
//!   mutex. Trivially fair, but every push and pop contends on a
//!   single lock; the A1 benchmark shows the overhead gap grow with
//!   task count.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::deque::{locked, Injector, Steal, Stealer, Worker};
use parc_trace::{Counter, LatencyHistogram, MarkKind, TraceHandle};
use parking_lot::Mutex;

/// A unit of scheduled work (small-closure storage, see `job.rs`).
pub(crate) type Job = crate::job::SmallJob;

/// Which scheduling policy a [`crate::TaskRuntime`] uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Per-worker lock-free Chase–Lev deques with stealing (default).
    #[default]
    WorkStealing,
    /// The stealing policy on mutex-protected deques: the pre-overhaul
    /// substrate, selectable as the scheduler-bench baseline.
    WorkStealingLocked,
    /// Single shared FIFO queue.
    WorkSharing,
}

/// Bounds shared by the runtime's latency histograms: 100 ns to 100 s
/// in milliseconds, 12 geometric buckets per decade (~21% relative
/// bucket width — fine enough for p99/p99.9 reporting).
pub(crate) fn new_latency_hist() -> LatencyHistogram {
    LatencyHistogram::new(1e-4, 1e5, 12)
}

/// A latency histogram padded out to its own cache line, so per-worker
/// instances never share a line. Each is still behind a mutex, but the
/// mutex is effectively uncontended: slot `i` is written only by worker
/// `i` (the final slot serves all non-worker threads), and other
/// threads touch it only in [`SchedCounters::merged_steal_wait`].
#[repr(align(64))]
pub(crate) struct PaddedHist(pub(crate) Mutex<LatencyHistogram>);

impl PaddedHist {
    fn new() -> Self {
        PaddedHist(Mutex::new(new_latency_hist()))
    }
}

/// Build `workers + 1` padded per-thread histogram slots (one per
/// worker plus a shared slot for helping/external threads).
pub(crate) fn per_worker_hists(workers: usize) -> Box<[PaddedHist]> {
    (0..=workers).map(|_| PaddedHist::new()).collect()
}

/// Counters describing where jobs were found, shared with the metrics
/// registry when tracing is attached, plus the trace handle steal
/// marks are emitted through.
pub(crate) struct SchedCounters {
    /// Jobs popped from the owner's local deque.
    pub local_pops: Arc<Counter>,
    /// Jobs taken from the global injector / shared queue.
    pub global_pops: Arc<Counter>,
    /// Jobs stolen from another worker's deque (counted per *item*:
    /// a batch steal of n items adds n, and emits n steal marks, so
    /// `sched.steal` marks always equal this counter).
    pub steals: Arc<Counter>,
    /// Per-worker steal-latency histograms: elapsed time from a failed
    /// local pop to the successful steal episode that ended the
    /// search, in milliseconds (one sample per episode, not per stolen
    /// item). Slot `i` belongs to worker `i`; the last slot serves
    /// helping/external threads. Merged on demand by
    /// [`SchedCounters::merged_steal_wait`] — the hot path never takes
    /// a shared lock (the old single `Mutex<LatencyHistogram>`
    /// serialized every thief it was measuring).
    pub steal_wait_ms: Box<[PaddedHist]>,
    /// Where scheduling events are recorded (disabled by default).
    pub trace: TraceHandle,
    /// The runtime's trace track.
    pub pid: u32,
}

impl Default for SchedCounters {
    fn default() -> Self {
        Self::for_workers(1)
    }
}

impl SchedCounters {
    /// Counters with one steal-wait histogram slot per worker (plus
    /// the shared slot).
    pub(crate) fn for_workers(workers: usize) -> Self {
        Self {
            local_pops: Arc::default(),
            global_pops: Arc::default(),
            steals: Arc::default(),
            steal_wait_ms: per_worker_hists(workers),
            trace: TraceHandle::default(),
            pid: 0,
        }
    }

    /// The histogram slot for `thief` (`None` = not a pool worker).
    fn slot(&self, thief: Option<usize>) -> usize {
        let shared = self.steal_wait_ms.len() - 1;
        match thief {
            Some(i) if i < shared => i,
            _ => shared,
        }
    }

    /// Book-keeping for one successful steal episode claiming `items`
    /// jobs: count every item, record the search latency once, and
    /// emit one trace mark per item (keeping `sched.steal` marks equal
    /// to the `steals` counter).
    fn record_steal(
        &self,
        thief: Option<usize>,
        victim: usize,
        items: u64,
        search_start: Instant,
    ) {
        self.steals.add(items);
        self.steal_wait_ms[self.slot(thief)]
            .0
            .lock()
            .record(search_start.elapsed().as_secs_f64() * 1e3);
        for _ in 0..items {
            self.trace.mark(self.pid, MarkKind::Steal { victim: victim as u32 });
        }
    }

    /// All per-thread steal-wait histograms merged into one (snapshot;
    /// exact totals once the runtime is quiescent).
    pub(crate) fn merged_steal_wait(&self) -> LatencyHistogram {
        let mut merged = new_latency_hist();
        for slot in self.steal_wait_ms.iter() {
            merged.merge(&slot.0.lock());
        }
        merged
    }
}

/// The shared (thread-safe) half of a scheduler.
pub(crate) enum SharedSched {
    Stealing {
        injector: Injector<Job>,
        stealers: Vec<Stealer<Job>>,
    },
    StealingLocked {
        injector: locked::Injector<Job>,
        stealers: Vec<locked::Stealer<Job>>,
    },
    Sharing {
        queue: Mutex<VecDeque<Job>>,
    },
}

/// The per-worker (thread-local) half of a scheduler.
pub(crate) enum LocalQueue {
    Stealing(Worker<Job>),
    StealingLocked(locked::Worker<Job>),
    Sharing,
}

impl SharedSched {
    /// Build the shared scheduler plus one local queue per worker.
    pub(crate) fn new(kind: SchedulerKind, workers: usize) -> (Self, Vec<LocalQueue>) {
        match kind {
            SchedulerKind::WorkStealing => {
                let locals: Vec<Worker<Job>> = (0..workers).map(|_| Worker::new_lifo()).collect();
                let stealers = locals.iter().map(Worker::stealer).collect();
                (
                    SharedSched::Stealing {
                        injector: Injector::new(),
                        stealers,
                    },
                    locals.into_iter().map(LocalQueue::Stealing).collect(),
                )
            }
            SchedulerKind::WorkStealingLocked => {
                let locals: Vec<locked::Worker<Job>> =
                    (0..workers).map(|_| locked::Worker::new_lifo()).collect();
                let stealers = locals.iter().map(locked::Worker::stealer).collect();
                (
                    SharedSched::StealingLocked {
                        injector: locked::Injector::new(),
                        stealers,
                    },
                    locals.into_iter().map(LocalQueue::StealingLocked).collect(),
                )
            }
            SchedulerKind::WorkSharing => (
                SharedSched::Sharing {
                    queue: Mutex::new(VecDeque::new()),
                },
                (0..workers).map(|_| LocalQueue::Sharing).collect(),
            ),
        }
    }

    /// Submit a job from outside the worker pool.
    pub(crate) fn push_external(&self, job: Job) {
        match self {
            SharedSched::Stealing { injector, .. } => injector.push(job),
            SharedSched::StealingLocked { injector, .. } => injector.push(job),
            SharedSched::Sharing { queue } => queue.lock().push_back(job),
        }
    }

    /// Submit a whole batch in one shared-queue episode: a single lock
    /// acquisition regardless of batch size (except on the locked
    /// baseline, which deliberately keeps its historical one-lock-per-
    /// task behaviour for the ablation).
    pub(crate) fn push_external_batch(&self, jobs: Vec<Job>) {
        match self {
            SharedSched::Stealing { injector, .. } => injector.push_batch(jobs),
            SharedSched::StealingLocked { injector, .. } => {
                for job in jobs {
                    injector.push(job);
                }
            }
            SharedSched::Sharing { queue } => queue.lock().extend(jobs),
        }
    }

    /// Submit a job from worker `local` (its own deque when stealing).
    pub(crate) fn push_local(&self, local: &LocalQueue, job: Job) {
        match (self, local) {
            (SharedSched::Stealing { .. }, LocalQueue::Stealing(w)) => w.push(job),
            (SharedSched::StealingLocked { .. }, LocalQueue::StealingLocked(w)) => w.push(job),
            (SharedSched::Sharing { queue }, LocalQueue::Sharing) => {
                queue.lock().push_back(job);
            }
            _ => unreachable!("scheduler kind mismatch"),
        }
    }

    /// Find a job for worker `index` owning `local`.
    pub(crate) fn pop_for(
        &self,
        local: &LocalQueue,
        index: usize,
        counters: &SchedCounters,
    ) -> Option<Job> {
        match (self, local) {
            (SharedSched::Stealing { injector, stealers }, LocalQueue::Stealing(w)) => {
                if let Some(job) = w.pop() {
                    counters.local_pops.inc();
                    return Some(job);
                }
                // The local deque missed: the search for remote work
                // starts here, and a successful *steal* records how
                // long it took.
                let search_start = Instant::now();
                // Refill from the injector in a batch, then steal.
                loop {
                    match injector.steal_batch_and_pop(w) {
                        Steal::Success(job) => {
                            counters.global_pops.inc();
                            return Some(job);
                        }
                        Steal::Empty => break,
                        Steal::Retry => {}
                    }
                }
                for (victim, stealer) in stealers.iter().enumerate() {
                    if victim == index {
                        continue;
                    }
                    loop {
                        // Batch steal: one walk of the victim's ring
                        // claims a run of jobs (a CAS per job — the
                        // victim may be popping the other end), the
                        // surplus lands in our own deque for
                        // subsequent local pops.
                        match stealer.steal_batch_and_pop_with_count(w) {
                            Steal::Success((job, items)) => {
                                counters.record_steal(
                                    Some(index),
                                    victim,
                                    items as u64,
                                    search_start,
                                );
                                return Some(job);
                            }
                            Steal::Empty => break,
                            Steal::Retry => {}
                        }
                    }
                }
                None
            }
            (
                SharedSched::StealingLocked { injector, stealers },
                LocalQueue::StealingLocked(w),
            ) => {
                if let Some(job) = w.pop() {
                    counters.local_pops.inc();
                    return Some(job);
                }
                let search_start = Instant::now();
                loop {
                    match injector.steal_batch_and_pop(w) {
                        locked::Steal::Success(job) => {
                            counters.global_pops.inc();
                            return Some(job);
                        }
                        locked::Steal::Empty => break,
                        locked::Steal::Retry => {}
                    }
                }
                for (victim, stealer) in stealers.iter().enumerate() {
                    if victim == index {
                        continue;
                    }
                    loop {
                        match stealer.steal() {
                            locked::Steal::Success(job) => {
                                counters.record_steal(Some(index), victim, 1, search_start);
                                return Some(job);
                            }
                            locked::Steal::Empty => break,
                            locked::Steal::Retry => {}
                        }
                    }
                }
                None
            }
            (SharedSched::Sharing { queue }, LocalQueue::Sharing) => {
                let job = queue.lock().pop_front();
                if job.is_some() {
                    counters.global_pops.inc();
                }
                job
            }
            _ => unreachable!("scheduler kind mismatch"),
        }
    }

    /// Take a job from the shared structures only (never a local
    /// deque). Safe to call from *any* thread; used by helping joins.
    pub(crate) fn pop_shared(&self, counters: &SchedCounters) -> Option<Job> {
        match self {
            SharedSched::Stealing { injector, stealers } => {
                let search_start = Instant::now();
                loop {
                    match injector.steal() {
                        Steal::Success(job) => {
                            counters.global_pops.inc();
                            return Some(job);
                        }
                        Steal::Empty => break,
                        Steal::Retry => {}
                    }
                }
                for (victim, stealer) in stealers.iter().enumerate() {
                    loop {
                        match stealer.steal() {
                            Steal::Success(job) => {
                                counters.record_steal(None, victim, 1, search_start);
                                return Some(job);
                            }
                            Steal::Empty => break,
                            Steal::Retry => {}
                        }
                    }
                }
                None
            }
            SharedSched::StealingLocked { injector, stealers } => {
                let search_start = Instant::now();
                loop {
                    match injector.steal() {
                        locked::Steal::Success(job) => {
                            counters.global_pops.inc();
                            return Some(job);
                        }
                        locked::Steal::Empty => break,
                        locked::Steal::Retry => {}
                    }
                }
                for (victim, stealer) in stealers.iter().enumerate() {
                    loop {
                        match stealer.steal() {
                            locked::Steal::Success(job) => {
                                counters.record_steal(None, victim, 1, search_start);
                                return Some(job);
                            }
                            locked::Steal::Empty => break,
                            locked::Steal::Retry => {}
                        }
                    }
                }
                None
            }
            SharedSched::Sharing { queue } => {
                let job = queue.lock().pop_front();
                if job.is_some() {
                    counters.global_pops.inc();
                }
                job
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn job(f: impl FnOnce() + Send + 'static) -> Job {
        Job::new(f)
    }

    fn run_all(shared: &SharedSched, local: &LocalQueue, counters: &SchedCounters) -> usize {
        let mut n = 0;
        while let Some(job) = shared.pop_for(local, 0, counters) {
            job.run();
            n += 1;
        }
        n
    }

    #[test]
    fn stealing_local_lifo_order() {
        let (shared, mut locals) = SharedSched::new(SchedulerKind::WorkStealing, 1);
        let local = locals.remove(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let log = Arc::clone(&log);
            shared.push_local(&local, job(move || log.lock().push(i)));
        }
        let counters = SchedCounters::default();
        assert_eq!(run_all(&shared, &local, &counters), 3);
        // Owner pops LIFO.
        assert_eq!(*log.lock(), vec![2, 1, 0]);
        assert_eq!(counters.local_pops.get(), 3);
    }

    #[test]
    fn sharing_fifo_order() {
        let (shared, mut locals) = SharedSched::new(SchedulerKind::WorkSharing, 1);
        let local = locals.remove(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let log = Arc::clone(&log);
            shared.push_external(job(move || log.lock().push(i)));
        }
        let counters = SchedCounters::default();
        assert_eq!(run_all(&shared, &local, &counters), 3);
        assert_eq!(*log.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn stealing_worker_takes_from_injector() {
        let (shared, mut locals) = SharedSched::new(SchedulerKind::WorkStealing, 1);
        let local = locals.remove(0);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&count);
            shared.push_external(job(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let counters = SchedCounters::default();
        assert_eq!(run_all(&shared, &local, &counters), 10);
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn thief_steals_from_victim_deque() {
        let (shared, locals) = SharedSched::new(SchedulerKind::WorkStealing, 2);
        let count = Arc::new(AtomicUsize::new(0));
        // Worker 0 queues work locally; worker 1 must steal it.
        for _ in 0..5 {
            let c = Arc::clone(&count);
            shared.push_local(&locals[0], job(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let counters = SchedCounters::for_workers(2);
        let mut stolen = 0;
        while let Some(job) = shared.pop_for(&locals[1], 1, &counters) {
            job.run();
            stolen += 1;
        }
        assert_eq!(stolen, 5);
        // The steals counter counts *items*: every job left worker 0's
        // deque via a steal (worker 0 never popped), whether it arrived
        // one at a time or inside a claimed batch. Batch surplus that
        // the thief later pops from its own deque shows up in
        // local_pops *in addition* to steals.
        assert_eq!(counters.steals.get(), 5);
        assert!(counters.local_pops.get() <= counters.steals.get());
        assert_eq!(count.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn locked_baseline_same_policy() {
        let (shared, locals) = SharedSched::new(SchedulerKind::WorkStealingLocked, 2);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let c = Arc::clone(&count);
            shared.push_local(&locals[0], job(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let counters = SchedCounters::for_workers(2);
        let mut stolen = 0;
        while let Some(job) = shared.pop_for(&locals[1], 1, &counters) {
            job.run();
            stolen += 1;
        }
        assert_eq!(stolen, 5);
        assert_eq!(counters.steals.get(), 5);
        assert_eq!(count.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn pop_shared_sees_injector_and_deques() {
        let (shared, locals) = SharedSched::new(SchedulerKind::WorkStealing, 1);
        shared.push_external(job(|| {}));
        shared.push_local(&locals[0], job(|| {}));
        let counters = SchedCounters::default();
        assert!(shared.pop_shared(&counters).is_some());
        assert!(shared.pop_shared(&counters).is_some());
        assert!(shared.pop_shared(&counters).is_none());
    }

    #[test]
    fn batch_submit_is_one_episode_and_fifo() {
        let (shared, mut locals) = SharedSched::new(SchedulerKind::WorkStealing, 1);
        let local = locals.remove(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        let jobs: Vec<Job> = (0..8)
            .map(|i| {
                let log = Arc::clone(&log);
                job(move || log.lock().push(i))
            })
            .collect();
        shared.push_external_batch(jobs);
        let counters = SchedCounters::default();
        assert_eq!(run_all(&shared, &local, &counters), 8);
        // Injector batches preserve FIFO across the refill boundary.
        assert_eq!(*log.lock(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn steal_wait_merges_per_worker_slots() {
        let counters = SchedCounters::for_workers(2);
        let t0 = Instant::now();
        counters.record_steal(Some(0), 1, 1, t0);
        counters.record_steal(Some(1), 0, 1, t0);
        counters.record_steal(None, 0, 1, t0); // helper thread slot
        assert_eq!(counters.steal_wait_ms[0].0.lock().total(), 1);
        assert_eq!(counters.steal_wait_ms[1].0.lock().total(), 1);
        assert_eq!(counters.steal_wait_ms[2].0.lock().total(), 1);
        assert_eq!(counters.merged_steal_wait().total(), 3);
        assert_eq!(counters.steals.get(), 3);
    }
}
