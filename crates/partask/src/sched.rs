//! The two task schedulers: work-stealing and work-sharing.
//!
//! The PARC runtime exposed interchangeable scheduling policies and
//! one SoftEng 751 project compared "different ways to schedule the
//! workload"; experiment A1 reproduces that comparison. Both policies
//! present the same interface to the runtime:
//!
//! * [`SchedulerKind::WorkStealing`] — per-worker Chase–Lev deques
//!   (LIFO for the owner, FIFO for thieves) plus a global injector
//!   queue for tasks submitted from outside the pool. This is the
//!   classic Cilk/rayon design: good locality, distributed contention.
//! * [`SchedulerKind::WorkSharing`] — one global FIFO protected by a
//!   mutex. Trivially fair, but every push and pop contends on a
//!   single lock; the A1 benchmark shows the overhead gap grow with
//!   task count.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parc_trace::{Counter, LatencyHistogram, MarkKind, TraceHandle};
use parking_lot::Mutex;

/// A unit of scheduled work.
pub(crate) type Job = Box<dyn FnOnce() + Send>;

/// Which scheduling policy a [`crate::TaskRuntime`] uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Per-worker deques with stealing (default).
    #[default]
    WorkStealing,
    /// Single shared FIFO queue.
    WorkSharing,
}

/// Bounds shared by the runtime's latency histograms: 100 ns to 100 s
/// in milliseconds, 12 geometric buckets per decade (~21% relative
/// bucket width — fine enough for p99/p99.9 reporting).
pub(crate) fn new_latency_hist() -> LatencyHistogram {
    LatencyHistogram::new(1e-4, 1e5, 12)
}

/// Counters describing where jobs were found, shared with the metrics
/// registry when tracing is attached, plus the trace handle steal
/// marks are emitted through.
pub(crate) struct SchedCounters {
    /// Jobs popped from the owner's local deque.
    pub local_pops: Arc<Counter>,
    /// Jobs taken from the global injector / shared queue.
    pub global_pops: Arc<Counter>,
    /// Jobs stolen from another worker's deque.
    pub steals: Arc<Counter>,
    /// Steal latency: elapsed time from a failed local pop to the
    /// successful steal that ended the search, in milliseconds. Feeds
    /// [`crate::RuntimeLatencies::steal_wait_ms`] and the scheduler
    /// benches ROADMAP item 1 calls for.
    pub steal_wait_ms: Arc<Mutex<LatencyHistogram>>,
    /// Where scheduling events are recorded (disabled by default).
    pub trace: TraceHandle,
    /// The runtime's trace track.
    pub pid: u32,
}

impl Default for SchedCounters {
    fn default() -> Self {
        Self {
            local_pops: Arc::default(),
            global_pops: Arc::default(),
            steals: Arc::default(),
            steal_wait_ms: Arc::new(Mutex::new(new_latency_hist())),
            trace: TraceHandle::default(),
            pid: 0,
        }
    }
}

impl SchedCounters {
    /// Book-keeping for one successful steal: count it, record the
    /// search latency, and emit the trace mark.
    fn record_steal(&self, victim: usize, search_start: Instant) {
        self.steals.inc();
        self.steal_wait_ms
            .lock()
            .record(search_start.elapsed().as_secs_f64() * 1e3);
        self.trace.mark(self.pid, MarkKind::Steal { victim: victim as u32 });
    }
}

/// The shared (thread-safe) half of a scheduler.
pub(crate) enum SharedSched {
    Stealing {
        injector: Injector<Job>,
        stealers: Vec<Stealer<Job>>,
    },
    Sharing {
        queue: Mutex<VecDeque<Job>>,
    },
}

/// The per-worker (thread-local) half of a scheduler.
pub(crate) enum LocalQueue {
    Stealing(Worker<Job>),
    Sharing,
}

impl SharedSched {
    /// Build the shared scheduler plus one local queue per worker.
    pub(crate) fn new(kind: SchedulerKind, workers: usize) -> (Self, Vec<LocalQueue>) {
        match kind {
            SchedulerKind::WorkStealing => {
                let locals: Vec<Worker<Job>> = (0..workers).map(|_| Worker::new_lifo()).collect();
                let stealers = locals.iter().map(Worker::stealer).collect();
                (
                    SharedSched::Stealing {
                        injector: Injector::new(),
                        stealers,
                    },
                    locals.into_iter().map(LocalQueue::Stealing).collect(),
                )
            }
            SchedulerKind::WorkSharing => (
                SharedSched::Sharing {
                    queue: Mutex::new(VecDeque::new()),
                },
                (0..workers).map(|_| LocalQueue::Sharing).collect(),
            ),
        }
    }

    /// Submit a job from outside the worker pool.
    pub(crate) fn push_external(&self, job: Job) {
        match self {
            SharedSched::Stealing { injector, .. } => injector.push(job),
            SharedSched::Sharing { queue } => queue.lock().push_back(job),
        }
    }

    /// Submit a job from worker `local` (its own deque when stealing).
    pub(crate) fn push_local(&self, local: &LocalQueue, job: Job) {
        match (self, local) {
            (SharedSched::Stealing { .. }, LocalQueue::Stealing(w)) => w.push(job),
            (SharedSched::Sharing { queue }, LocalQueue::Sharing) => {
                queue.lock().push_back(job);
            }
            _ => unreachable!("scheduler kind mismatch"),
        }
    }

    /// Find a job for worker `index` owning `local`.
    pub(crate) fn pop_for(
        &self,
        local: &LocalQueue,
        index: usize,
        counters: &SchedCounters,
    ) -> Option<Job> {
        match (self, local) {
            (SharedSched::Stealing { injector, stealers }, LocalQueue::Stealing(w)) => {
                if let Some(job) = w.pop() {
                    counters.local_pops.inc();
                    return Some(job);
                }
                // The local deque missed: the search for remote work
                // starts here, and a successful *steal* records how
                // long it took.
                let search_start = Instant::now();
                // Refill from the injector in a batch, then steal.
                loop {
                    match injector.steal_batch_and_pop(w) {
                        Steal::Success(job) => {
                            counters.global_pops.inc();
                            return Some(job);
                        }
                        Steal::Empty => break,
                        Steal::Retry => {}
                    }
                }
                for (victim, stealer) in stealers.iter().enumerate() {
                    if victim == index {
                        continue;
                    }
                    loop {
                        match stealer.steal() {
                            Steal::Success(job) => {
                                counters.record_steal(victim, search_start);
                                return Some(job);
                            }
                            Steal::Empty => break,
                            Steal::Retry => {}
                        }
                    }
                }
                None
            }
            (SharedSched::Sharing { queue }, LocalQueue::Sharing) => {
                let job = queue.lock().pop_front();
                if job.is_some() {
                    counters.global_pops.inc();
                }
                job
            }
            _ => unreachable!("scheduler kind mismatch"),
        }
    }

    /// Take a job from the shared structures only (never a local
    /// deque). Safe to call from *any* thread; used by helping joins.
    pub(crate) fn pop_shared(&self, counters: &SchedCounters) -> Option<Job> {
        match self {
            SharedSched::Stealing { injector, stealers } => {
                let search_start = Instant::now();
                loop {
                    match injector.steal() {
                        Steal::Success(job) => {
                            counters.global_pops.inc();
                            return Some(job);
                        }
                        Steal::Empty => break,
                        Steal::Retry => {}
                    }
                }
                for (victim, stealer) in stealers.iter().enumerate() {
                    loop {
                        match stealer.steal() {
                            Steal::Success(job) => {
                                counters.record_steal(victim, search_start);
                                return Some(job);
                            }
                            Steal::Empty => break,
                            Steal::Retry => {}
                        }
                    }
                }
                None
            }
            SharedSched::Sharing { queue } => {
                let job = queue.lock().pop_front();
                if job.is_some() {
                    counters.global_pops.inc();
                }
                job
            }
        }
    }

    /// Rough count of queued jobs visible in shared structures.
    pub(crate) fn shared_len_hint(&self) -> usize {
        match self {
            SharedSched::Stealing { injector, stealers } => {
                injector.len() + stealers.iter().map(Stealer::len).sum::<usize>()
            }
            SharedSched::Sharing { queue } => queue.lock().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn run_all(shared: &SharedSched, local: &LocalQueue, counters: &SchedCounters) -> usize {
        let mut n = 0;
        while let Some(job) = shared.pop_for(local, 0, counters) {
            job();
            n += 1;
        }
        n
    }

    #[test]
    fn stealing_local_lifo_order() {
        let (shared, mut locals) = SharedSched::new(SchedulerKind::WorkStealing, 1);
        let local = locals.remove(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let log = Arc::clone(&log);
            shared.push_local(&local, Box::new(move || log.lock().push(i)));
        }
        let counters = SchedCounters::default();
        assert_eq!(run_all(&shared, &local, &counters), 3);
        // Owner pops LIFO.
        assert_eq!(*log.lock(), vec![2, 1, 0]);
        assert_eq!(counters.local_pops.get(), 3);
    }

    #[test]
    fn sharing_fifo_order() {
        let (shared, mut locals) = SharedSched::new(SchedulerKind::WorkSharing, 1);
        let local = locals.remove(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let log = Arc::clone(&log);
            shared.push_external(Box::new(move || log.lock().push(i)));
        }
        let counters = SchedCounters::default();
        assert_eq!(run_all(&shared, &local, &counters), 3);
        assert_eq!(*log.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn stealing_worker_takes_from_injector() {
        let (shared, mut locals) = SharedSched::new(SchedulerKind::WorkStealing, 1);
        let local = locals.remove(0);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&count);
            shared.push_external(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let counters = SchedCounters::default();
        assert_eq!(run_all(&shared, &local, &counters), 10);
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn thief_steals_from_victim_deque() {
        let (shared, locals) = SharedSched::new(SchedulerKind::WorkStealing, 2);
        let count = Arc::new(AtomicUsize::new(0));
        // Worker 0 queues work locally; worker 1 must steal it.
        for _ in 0..5 {
            let c = Arc::clone(&count);
            shared.push_local(&locals[0], Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let counters = SchedCounters::default();
        let mut stolen = 0;
        while let Some(job) = shared.pop_for(&locals[1], 1, &counters) {
            job();
            stolen += 1;
        }
        assert_eq!(stolen, 5);
        assert_eq!(counters.steals.get(), 5);
    }

    #[test]
    fn pop_shared_sees_injector_and_deques() {
        let (shared, locals) = SharedSched::new(SchedulerKind::WorkStealing, 1);
        shared.push_external(Box::new(|| {}));
        shared.push_local(&locals[0], Box::new(|| {}));
        let counters = SchedCounters::default();
        assert!(shared.pop_shared(&counters).is_some());
        assert!(shared.pop_shared(&counters).is_some());
        assert!(shared.pop_shared(&counters).is_none());
    }

    #[test]
    fn shared_len_hint_counts() {
        let (shared, _locals) = SharedSched::new(SchedulerKind::WorkSharing, 1);
        assert_eq!(shared.shared_len_hint(), 0);
        shared.push_external(Box::new(|| {}));
        shared.push_external(Box::new(|| {}));
        assert_eq!(shared.shared_len_hint(), 2);
    }
}
