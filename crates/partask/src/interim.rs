//! Interim results: streaming values out of a running task.
//!
//! Parallel Task's `notifyInter` lets a long task publish partial
//! results (search hits, finished thumbnails) as they appear, with the
//! notifications marshalled onto the GUI thread. Here the same idea is
//! a small channel whose receiver either **buffers** values for
//! polling or **forwards** each value to a callback — optionally via a
//! [`guievent::GuiHandle`] so the callback runs on the event-dispatch
//! thread.
//!
//! ```
//! use partask::interim;
//! let (tx, rx) = interim::channel::<u32>();
//! tx.send(1);
//! tx.send(2);
//! assert_eq!(rx.try_drain(), vec![1, 2]);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use guievent::GuiHandle;
use parking_lot::Mutex;

enum Mode<I> {
    Buffering(Vec<I>),
    Forwarding(Arc<dyn Fn(I) + Send + Sync>),
}

struct Inner<I> {
    mode: Mutex<Mode<I>>,
    sent: AtomicU64,
}

/// Producer half; cheap to clone into task bodies.
pub struct InterimSender<I> {
    inner: Arc<Inner<I>>,
}

impl<I> Clone for InterimSender<I> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Consumer half: poll buffered values or install a forwarder.
pub struct InterimReceiver<I> {
    inner: Arc<Inner<I>>,
}

/// Create an interim-result channel.
#[must_use]
pub fn channel<I: Send + 'static>() -> (InterimSender<I>, InterimReceiver<I>) {
    let inner = Arc::new(Inner {
        mode: Mutex::new(Mode::Buffering(Vec::new())),
        sent: AtomicU64::new(0),
    });
    (
        InterimSender {
            inner: Arc::clone(&inner),
        },
        InterimReceiver { inner },
    )
}

impl<I: Send + 'static> InterimSender<I> {
    /// Publish one interim value. Buffered, or forwarded immediately
    /// if a forwarder is installed. The forwarder is invoked outside
    /// the channel lock so it may itself publish or block.
    pub fn send(&self, item: I) {
        self.inner.sent.fetch_add(1, Ordering::Relaxed);
        let forward = {
            let mut mode = self.inner.mode.lock();
            match &mut *mode {
                Mode::Buffering(buf) => {
                    buf.push(item);
                    None
                }
                Mode::Forwarding(f) => Some((Arc::clone(f), item)),
            }
        };
        if let Some((f, item)) = forward {
            f(item);
        }
    }

    /// Total values ever sent through this channel.
    #[must_use]
    pub fn sent_count(&self) -> u64 {
        self.inner.sent.load(Ordering::Relaxed)
    }
}

impl<I: Send + 'static> InterimReceiver<I> {
    /// Take everything buffered so far (empty when forwarding).
    #[must_use]
    pub fn try_drain(&self) -> Vec<I> {
        let mut mode = self.inner.mode.lock();
        match &mut *mode {
            Mode::Buffering(buf) => std::mem::take(buf),
            Mode::Forwarding(_) => Vec::new(),
        }
    }

    /// Switch to forwarding: every value (including those already
    /// buffered, in order) is passed to `f` on whatever thread sends
    /// it.
    pub fn forward(&self, f: impl Fn(I) + Send + Sync + 'static) {
        let f: Arc<dyn Fn(I) + Send + Sync> = Arc::new(f);
        let backlog = {
            let mut mode = self.inner.mode.lock();
            let backlog = match &mut *mode {
                Mode::Buffering(buf) => std::mem::take(buf),
                Mode::Forwarding(_) => panic!("forwarder already installed"),
            };
            *mode = Mode::Forwarding(Arc::clone(&f));
            backlog
        };
        for item in backlog {
            f(item);
        }
    }

    /// Forward each value to `f` **on the GUI dispatch thread** — the
    /// `notifyInter`-to-GUI analogue.
    pub fn forward_to_gui(&self, gui: &GuiHandle, f: impl Fn(I) + Send + Sync + 'static) {
        let gui = gui.clone();
        let f = Arc::new(f);
        self.forward(move |item| {
            let f = Arc::clone(&f);
            gui.invoke_later(move || f(item));
        });
    }

    /// Total values ever sent through this channel.
    #[must_use]
    pub fn sent_count(&self) -> u64 {
        self.inner.sent.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guievent::EventLoop;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn buffered_then_drained_in_order() {
        let (tx, rx) = channel();
        for i in 0..5 {
            tx.send(i);
        }
        assert_eq!(rx.try_drain(), vec![0, 1, 2, 3, 4]);
        assert!(rx.try_drain().is_empty());
        assert_eq!(tx.sent_count(), 5);
    }

    #[test]
    fn forward_flushes_backlog_then_streams() {
        let (tx, rx) = channel();
        tx.send(1);
        tx.send(2);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        rx.forward(move |v| seen2.lock().push(v));
        tx.send(3);
        assert_eq!(*seen.lock(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "forwarder already installed")]
    fn double_forward_panics() {
        let (_tx, rx) = channel::<u8>();
        rx.forward(|_| {});
        rx.forward(|_| {});
    }

    #[test]
    fn senders_clone_and_share() {
        let (tx, rx) = channel();
        let tx2 = tx.clone();
        tx.send("a");
        tx2.send("b");
        assert_eq!(rx.try_drain(), vec!["a", "b"]);
        assert_eq!(rx.sent_count(), 2);
    }

    #[test]
    fn forward_to_gui_runs_on_dispatch_thread() {
        let gui = EventLoop::spawn();
        let (tx, rx) = channel::<u32>();
        let count = Arc::new(AtomicUsize::new(0));
        let on_edt = Arc::new(AtomicUsize::new(0));
        let count2 = Arc::clone(&count);
        let on_edt2 = Arc::clone(&on_edt);
        let handle_probe = gui.handle();
        rx.forward_to_gui(&gui.handle(), move |v| {
            count2.fetch_add(v as usize, Ordering::Relaxed);
            if handle_probe.is_dispatch_thread() {
                on_edt2.fetch_add(1, Ordering::Relaxed);
            }
        });
        for _ in 0..10 {
            tx.send(1);
        }
        gui.handle().drain();
        assert_eq!(count.load(Ordering::Relaxed), 10);
        assert_eq!(on_edt.load(Ordering::Relaxed), 10);
        gui.shutdown();
    }
}
