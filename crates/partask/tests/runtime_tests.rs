//! End-to-end tests of the partask runtime: spawning, joining,
//! dependences, multi-tasks, cancellation, panics, helping joins and
//! GUI delivery.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use guievent::EventLoop;
use partask::{interim, SchedulerKind, TaskError, TaskRuntime};

fn runtimes() -> Vec<TaskRuntime> {
    vec![
        TaskRuntime::builder()
            .workers(2)
            .scheduler(SchedulerKind::WorkStealing)
            .build(),
        TaskRuntime::builder()
            .workers(2)
            .scheduler(SchedulerKind::WorkSharing)
            .build(),
    ]
}

#[test]
fn spawn_and_join_value() {
    for rt in runtimes() {
        let t = rt.spawn(|| 2 + 2);
        assert_eq!(t.join().unwrap(), 4);
        rt.shutdown();
    }
}

#[test]
fn join_from_main_thread_many_tasks() {
    for rt in runtimes() {
        let handles: Vec<_> = (0..100).map(|i| rt.spawn(move || i * i)).collect();
        let total: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, (0..100).map(|i| i * i).sum::<i64>());
        rt.shutdown();
    }
}

#[test]
fn nested_fork_join_does_not_deadlock() {
    // Recursive fib with more live joins than workers: only works
    // because joining workers help.
    fn fib(rt: &partask::runtime::RuntimeHandle, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let rt2 = rt.clone();
        let left = rt.spawn(move || fib(&rt2, n - 1));
        let right = fib(rt, n - 2);
        left.join().unwrap() + right
    }
    let rt = TaskRuntime::builder().workers(2).build();
    let h = rt.handle();
    let result = fib(&h, 15);
    assert_eq!(result, 610);
    rt.shutdown();
}

#[test]
fn task_panic_is_contained() {
    let rt = TaskRuntime::builder().workers(1).build();
    let bad = rt.spawn(|| -> u32 { panic!("boom {}", 42) });
    let good = rt.spawn(|| 7u32);
    match bad.join() {
        Err(TaskError::Panicked(msg)) => assert!(msg.contains("boom 42")),
        other => panic!("expected panic error, got {other:?}"),
    }
    assert_eq!(good.join().unwrap(), 7);
    rt.shutdown();
}

#[test]
fn cancellation_before_start() {
    // One busy worker; the second task can be cancelled before it runs.
    let rt = TaskRuntime::builder().workers(1).build();
    let gate = Arc::new(AtomicUsize::new(0));
    let gate2 = Arc::clone(&gate);
    let blocker = rt.spawn(move || {
        while gate2.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
    });
    let doomed = rt.spawn(|| 1);
    doomed.cancel();
    gate.store(1, Ordering::Release);
    blocker.join().unwrap();
    assert_eq!(doomed.join(), Err(TaskError::Cancelled));
    rt.shutdown();
}

#[test]
fn cooperative_cancellation_mid_task() {
    let rt = TaskRuntime::builder().workers(1).build();
    let t = rt.spawn_cancellable(|token| {
        let mut i: u64 = 0;
        while !token.is_cancelled() {
            i += 1;
            if i > 50_000_000 {
                return Err("never cancelled");
            }
            if i == 1000 {
                // Cancel ourselves to keep the test deterministic.
                token.cancel();
            }
        }
        Ok(i)
    });
    assert_eq!(t.join().unwrap(), Ok(1000));
    rt.shutdown();
}

#[test]
fn dependences_run_after_predecessors() {
    for rt in runtimes() {
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        let a = rt.spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            l1.lock().push("a");
            1u32
        });
        let l2 = Arc::clone(&log);
        let b = rt.spawn(move || {
            std::thread::sleep(Duration::from_millis(3));
            l2.lock().push("b");
            2u32
        });
        let l3 = Arc::clone(&log);
        let c = rt.spawn_after(&[a.watcher(), b.watcher()], move || {
            l3.lock().push("c");
            3u32
        });
        assert_eq!(c.join().unwrap(), 3);
        let order = log.lock().clone();
        assert_eq!(order.len(), 3);
        assert_eq!(*order.last().unwrap(), "c");
        assert_eq!(a.join().unwrap(), 1);
        assert_eq!(b.join().unwrap(), 2);
        rt.shutdown();
    }
}

#[test]
fn dependence_on_completed_task_fires_immediately() {
    let rt = TaskRuntime::builder().workers(2).build();
    let a = rt.spawn(|| 10u32);
    a.wait();
    let b = rt.spawn_after(&[a.watcher()], || 20u32);
    assert_eq!(b.join().unwrap(), 20);
    rt.shutdown();
}

#[test]
fn dependence_chain_executes_in_order() {
    let rt = TaskRuntime::builder().workers(2).build();
    let counter = Arc::new(AtomicUsize::new(0));
    let c0 = Arc::clone(&counter);
    let t0 = rt.spawn(move || c0.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst).is_ok());
    let c1 = Arc::clone(&counter);
    let t1 = rt.spawn_after(&[t0.watcher()], move || {
        c1.compare_exchange(1, 2, Ordering::SeqCst, Ordering::SeqCst).is_ok()
    });
    let c2 = Arc::clone(&counter);
    let t2 = rt.spawn_after(&[t1.watcher()], move || {
        c2.compare_exchange(2, 3, Ordering::SeqCst, Ordering::SeqCst).is_ok()
    });
    assert!(t2.join().unwrap());
    assert!(t1.join().unwrap());
    assert!(t0.join().unwrap());
    assert_eq!(counter.load(Ordering::SeqCst), 3);
    rt.shutdown();
}

#[test]
fn multi_task_collects_indexed_results() {
    for rt in runtimes() {
        let m = rt.spawn_multi(8, |i| i * 10);
        let values = m.join_all().unwrap();
        assert_eq!(values, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        rt.shutdown();
    }
}

#[test]
fn multi_task_reduce() {
    let rt = TaskRuntime::builder().workers(2).build();
    let m = rt.spawn_multi(10, |i| i as u64 + 1);
    let sum = m.join_reduce(0u64, |acc, v| acc + v).unwrap();
    assert_eq!(sum, 55);
    rt.shutdown();
}

#[test]
fn per_worker_task_count_matches_workers() {
    let rt = TaskRuntime::builder().workers(3).build();
    let m = rt.spawn_per_worker(|i| i);
    assert_eq!(m.len(), 3);
    let mut ids = m.join_all().unwrap();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1, 2]);
    rt.shutdown();
}

#[test]
fn multi_task_error_reported_but_all_joined() {
    let rt = TaskRuntime::builder().workers(2).build();
    let m = rt.spawn_multi(4, |i| {
        if i == 2 {
            panic!("instance 2 failed");
        }
        i
    });
    match m.join_all() {
        Err(TaskError::Panicked(msg)) => assert!(msg.contains("instance 2")),
        other => panic!("expected panic, got {other:?}"),
    }
    rt.shutdown();
}

#[test]
fn wait_quiescent_sees_all_tasks() {
    let rt = TaskRuntime::builder().workers(2).build();
    let counter = Arc::new(AtomicUsize::new(0));
    for _ in 0..200 {
        let c = Arc::clone(&counter);
        let _detached = rt.spawn(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
    }
    rt.wait_quiescent();
    assert_eq!(counter.load(Ordering::Relaxed), 200);
    rt.shutdown();
}

#[test]
fn shutdown_runs_pending_tasks() {
    let rt = TaskRuntime::builder().workers(1).build();
    let counter = Arc::new(AtomicUsize::new(0));
    for _ in 0..50 {
        let c = Arc::clone(&counter);
        let _ = rt.spawn(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
    }
    rt.shutdown();
    assert_eq!(counter.load(Ordering::Relaxed), 50);
}

#[test]
fn stats_account_spawned_and_executed() {
    let rt = TaskRuntime::builder().workers(2).build();
    for _ in 0..25 {
        let _ = rt.spawn(|| ());
    }
    rt.wait_quiescent();
    let stats = rt.stats();
    assert_eq!(stats.spawned, 25);
    assert_eq!(stats.executed, 25);
    assert!(stats.local_pops + stats.global_pops + stats.steals + stats.helped >= 25);
    rt.shutdown();
}

#[test]
fn runtime_handle_spawns_from_task_bodies() {
    let rt = TaskRuntime::builder().workers(2).build();
    let h = rt.handle();
    let t = rt.spawn(move || {
        let inner = h.spawn(|| 21);
        inner.join().unwrap() * 2
    });
    assert_eq!(t.join().unwrap(), 42);
    rt.shutdown();
}

#[test]
fn runtime_handle_degrades_to_inline_after_shutdown() {
    let rt = TaskRuntime::builder().workers(1).build();
    let h = rt.handle();
    rt.shutdown();
    assert!(!h.is_alive());
    let t = h.spawn(|| 5);
    assert_eq!(t.join().unwrap(), 5);
}

#[test]
fn deliver_runs_on_gui_thread_with_result() {
    let gui = EventLoop::spawn();
    let rt = TaskRuntime::builder().workers(2).build();
    let received = Arc::new(parking_lot::Mutex::new(None));
    let received2 = Arc::clone(&received);
    let probe = gui.handle();
    let t = rt.spawn(|| 99u64);
    t.deliver(&gui.handle(), move |result| {
        assert!(probe.is_dispatch_thread());
        *received2.lock() = Some(result);
    });
    rt.wait_quiescent();
    gui.handle().drain();
    assert_eq!(*received.lock(), Some(Ok(99)));
    rt.shutdown();
    gui.shutdown();
}

#[test]
fn deliver_after_completion_still_fires() {
    let gui = EventLoop::spawn();
    let rt = TaskRuntime::builder().workers(1).build();
    let t = rt.spawn(|| "late");
    t.wait();
    let received = Arc::new(parking_lot::Mutex::new(None));
    let received2 = Arc::clone(&received);
    t.deliver(&gui.handle(), move |r| {
        *received2.lock() = Some(r.unwrap());
    });
    gui.handle().drain();
    assert_eq!(*received.lock(), Some("late"));
    rt.shutdown();
    gui.shutdown();
}

#[test]
fn on_done_hook_fires_once() {
    let rt = TaskRuntime::builder().workers(1).build();
    let fired = Arc::new(AtomicUsize::new(0));
    let f2 = Arc::clone(&fired);
    let t = rt.spawn(|| 1);
    t.on_done(move || {
        f2.fetch_add(1, Ordering::Relaxed);
    });
    t.wait();
    // Hook registered after completion also runs (immediately).
    let f3 = Arc::clone(&fired);
    t.on_done(move || {
        f3.fetch_add(10, Ordering::Relaxed);
    });
    assert_eq!(t.join().unwrap(), 1);
    assert_eq!(fired.load(Ordering::Relaxed), 11);
    rt.shutdown();
}

#[test]
fn interim_results_stream_while_task_runs() {
    let rt = TaskRuntime::builder().workers(1).build();
    let (tx, rx) = interim::channel::<usize>();
    let t = rt.spawn(move || {
        for i in 0..10 {
            tx.send(i);
        }
        "done"
    });
    assert_eq!(t.join().unwrap(), "done");
    let drained = rx.try_drain();
    assert_eq!(drained, (0..10).collect::<Vec<_>>());
    rt.shutdown();
}

#[test]
fn try_join_nonblocking() {
    let rt = TaskRuntime::builder().workers(1).build();
    let gate = Arc::new(AtomicUsize::new(0));
    let g = Arc::clone(&gate);
    let t = rt.spawn(move || {
        while g.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        8
    });
    let t = match t.try_join() {
        Ok(_) => panic!("task should still be running"),
        Err(handle) => handle,
    };
    gate.store(1, Ordering::Release);
    assert_eq!(t.join().unwrap(), 8);
    rt.shutdown();
}

#[test]
fn task_ids_are_unique() {
    let rt = TaskRuntime::builder().workers(2).build();
    let handles: Vec<_> = (0..50).map(|_| rt.spawn(|| ())).collect();
    let mut ids: Vec<_> = handles.iter().map(|h| h.id().as_u64()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 50);
    for h in handles {
        h.join().unwrap();
    }
    rt.shutdown();
}

#[test]
fn work_sharing_and_stealing_produce_identical_results() {
    let input: Vec<u64> = (0..500).collect();
    let mut outputs = Vec::new();
    for kind in [SchedulerKind::WorkStealing, SchedulerKind::WorkSharing] {
        let rt = TaskRuntime::builder().workers(2).scheduler(kind).build();
        let data = input.clone();
        let m = rt.spawn_multi(8, move |i| {
            data.iter().skip(i).step_by(8).map(|x| x * x).sum::<u64>()
        });
        outputs.push(m.join_reduce(0u64, |a, b| a + b).unwrap());
        rt.shutdown();
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], input.iter().map(|x| x * x).sum::<u64>());
}

#[test]
fn heavy_spawn_storm_completes() {
    let rt = TaskRuntime::builder().workers(4).build();
    let counter = Arc::new(AtomicUsize::new(0));
    let h = rt.handle();
    let roots: Vec<_> = (0..20)
        .map(|_| {
            let h = h.clone();
            let c = Arc::clone(&counter);
            rt.spawn(move || {
                let children: Vec<_> = (0..20)
                    .map(|_| {
                        let c = Arc::clone(&c);
                        h.spawn(move || {
                            c.fetch_add(1, Ordering::Relaxed);
                        })
                    })
                    .collect();
                for ch in children {
                    ch.join().unwrap();
                }
            })
        })
        .collect();
    for r in roots {
        r.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::Relaxed), 400);
    rt.shutdown();
}

#[test]
fn join_timeout_returns_value_when_fast_enough() {
    let rt = TaskRuntime::builder().workers(2).build();
    let t = rt.spawn(|| 6 * 7);
    assert_eq!(t.join_timeout(Duration::from_secs(5)).unwrap(), 42);
    rt.shutdown();
}

#[test]
fn join_timeout_expires_and_cancels() {
    let rt = TaskRuntime::builder().workers(2).build();
    let released = Arc::new(AtomicUsize::new(0));
    let t = rt.spawn_cancellable({
        let released = Arc::clone(&released);
        move |token| {
            // Cooperative slow loop: spins until cancelled.
            while !token.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            released.fetch_add(1, Ordering::SeqCst);
        }
    });
    let token = t.cancel_token();
    assert_eq!(
        t.join_timeout(Duration::from_millis(20)),
        Err(TaskError::TimedOut)
    );
    assert!(token.is_cancelled(), "expiry must request cancellation");
    rt.shutdown(); // waits for the (now-released) body to finish
    assert_eq!(released.load(Ordering::SeqCst), 1);
}

#[test]
fn spawn_deadline_cancels_overdue_task() {
    let rt = TaskRuntime::builder().workers(2).build();
    let t = rt.spawn_deadline(Duration::from_millis(15), |token| {
        let mut polls = 0u64;
        while !token.is_cancelled() {
            std::thread::sleep(Duration::from_millis(1));
            polls += 1;
            assert!(polls < 10_000, "deadline never fired");
        }
        "stopped early"
    });
    assert_eq!(t.join().unwrap(), "stopped early");
    let stats = rt.stats();
    assert_eq!(stats.timed_out, 1, "watchdog must count the expiry");
    rt.shutdown();
}

#[test]
fn spawn_deadline_is_free_for_fast_tasks() {
    let rt = TaskRuntime::builder().workers(2).build();
    for i in 0..20 {
        let t = rt.spawn_deadline(Duration::from_secs(10), move |_| i * 2);
        assert_eq!(t.join().unwrap(), i * 2);
    }
    let stats = rt.stats();
    assert_eq!(stats.timed_out, 0);
    rt.shutdown();
}

#[test]
fn stats_count_cancelled_tasks() {
    let rt = TaskRuntime::builder().workers(1).build();
    // Occupy the single worker so queued tasks can be cancelled
    // before starting.
    let gate = Arc::new(AtomicUsize::new(0));
    let blocker = rt.spawn({
        let gate = Arc::clone(&gate);
        move || {
            while gate.load(Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    });
    let doomed: Vec<_> = (0..5).map(|_| rt.spawn(|| ())).collect();
    for t in &doomed {
        t.cancel();
    }
    gate.store(1, Ordering::SeqCst);
    blocker.join().unwrap();
    let mut cancelled = 0;
    for t in doomed {
        if t.join() == Err(TaskError::Cancelled) {
            cancelled += 1;
        }
    }
    rt.wait_quiescent();
    assert_eq!(rt.stats().cancelled, cancelled);
    assert!(cancelled > 0, "at least one queued task must be cancelled");
    rt.shutdown();
}
