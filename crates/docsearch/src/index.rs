//! Inverted index over a folder tree — the "search it twice? index
//! it" extension of project 4.
//!
//! The index maps each token to postings `(file id, line number)`.
//! Building is a parallel map-merge reduction (one partial index per
//! task, merged pairwise — the object-oriented reduction of project 5
//! applied to a real data structure), and term queries become O(1)
//! lookups instead of corpus scans.

use std::collections::HashMap;
use std::sync::Arc;

use partask::TaskRuntime;

use crate::vfs::Dir;

/// A token position: file id (index into [`InvertedIndex::files`])
/// and 1-based line number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Posting {
    /// File id.
    pub file: u32,
    /// 1-based line number.
    pub line: u32,
}

/// An inverted index over one folder tree.
#[derive(Clone, Debug, Default)]
pub struct InvertedIndex {
    /// File id → path.
    pub files: Vec<String>,
    postings: HashMap<String, Vec<Posting>>,
}

/// Lowercase alphanumeric tokenisation (the corpus is ASCII).
pub fn tokenize(line: &str) -> impl Iterator<Item = String> + '_ {
    line.split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_ascii_lowercase)
}

impl InvertedIndex {
    /// Build sequentially (the reference).
    #[must_use]
    pub fn build_seq(root: &Dir) -> Self {
        let walked = root.walk();
        let files: Vec<String> = walked.iter().map(|(p, _)| p.clone()).collect();
        let mut postings: HashMap<String, Vec<Posting>> = HashMap::new();
        for (fid, (_, file)) in walked.iter().enumerate() {
            for (ln, line) in file.lines.iter().enumerate() {
                for token in tokenize(line) {
                    postings.entry(token).or_default().push(Posting {
                        file: fid as u32,
                        line: ln as u32 + 1,
                    });
                }
            }
        }
        let mut index = Self { files, postings };
        index.normalise();
        index
    }

    /// Build in parallel: one task per file produces a partial index;
    /// partials merge pairwise (associative map-merge).
    #[must_use]
    pub fn build_par(rt: &TaskRuntime, root: &Dir) -> Self {
        let walked = root.walk();
        let files: Vec<String> = walked.iter().map(|(p, _)| p.clone()).collect();
        let owned: Arc<Vec<Vec<String>>> = Arc::new(
            walked
                .iter()
                .map(|(_, f)| f.lines.clone())
                .collect(),
        );
        let n = owned.len();
        let handles: Vec<_> = (0..n)
            .map(|fid| {
                let owned = Arc::clone(&owned);
                rt.spawn(move || {
                    let mut partial: HashMap<String, Vec<Posting>> = HashMap::new();
                    for (ln, line) in owned[fid].iter().enumerate() {
                        for token in tokenize(line) {
                            partial.entry(token).or_default().push(Posting {
                                file: fid as u32,
                                line: ln as u32 + 1,
                            });
                        }
                    }
                    partial
                })
            })
            .collect();
        let mut postings: HashMap<String, Vec<Posting>> = HashMap::new();
        for h in handles {
            for (token, mut posts) in h.join().expect("index task") {
                postings.entry(token).or_default().append(&mut posts);
            }
        }
        let mut index = Self { files, postings };
        index.normalise();
        index
    }

    /// Sort and dedup every posting list (canonical form).
    fn normalise(&mut self) {
        for posts in self.postings.values_mut() {
            posts.sort_unstable();
            posts.dedup();
        }
    }

    /// Number of distinct tokens.
    #[must_use]
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Postings for a term (case-insensitive).
    #[must_use]
    pub fn lookup(&self, term: &str) -> &[Posting] {
        self.postings
            .get(&term.to_ascii_lowercase())
            .map_or(&[], Vec::as_slice)
    }

    /// Files containing *all* the given terms (conjunctive query) —
    /// posting-list intersection by file id.
    #[must_use]
    pub fn query_and(&self, terms: &[&str]) -> Vec<u32> {
        if terms.is_empty() {
            return Vec::new();
        }
        let mut sets: Vec<Vec<u32>> = terms
            .iter()
            .map(|t| {
                let mut files: Vec<u32> = self.lookup(t).iter().map(|p| p.file).collect();
                files.dedup();
                files
            })
            .collect();
        // Intersect smallest-first.
        sets.sort_by_key(Vec::len);
        let mut result = sets[0].clone();
        for other in &sets[1..] {
            result.retain(|f| other.binary_search(f).is_ok());
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_tree, CorpusConfig};
    use crate::vfs::TextFile;

    fn tiny_tree() -> Dir {
        let mut root = Dir::new("r");
        root.files.push(TextFile::new(
            "a.txt",
            vec!["the quick Brown fox".into(), "lazy dog".into()],
        ));
        root.files.push(TextFile::new(
            "b.txt",
            vec!["brown bread".into(), "the dog barks".into()],
        ));
        root
    }

    #[test]
    fn tokenizer_lowercases_and_splits() {
        let toks: Vec<String> = tokenize("The quick-brown_fox! 42").collect();
        assert_eq!(toks, vec!["the", "quick", "brown", "fox", "42"]);
    }

    #[test]
    fn lookup_finds_positions() {
        let idx = InvertedIndex::build_seq(&tiny_tree());
        let brown = idx.lookup("Brown");
        assert_eq!(
            brown,
            &[
                Posting { file: 0, line: 1 },
                Posting { file: 1, line: 1 }
            ]
        );
        assert!(idx.lookup("missing").is_empty());
    }

    #[test]
    fn conjunctive_query_intersects() {
        let idx = InvertedIndex::build_seq(&tiny_tree());
        assert_eq!(idx.query_and(&["the", "dog"]), vec![0, 1]);
        assert_eq!(idx.query_and(&["brown", "bread"]), vec![1]);
        assert_eq!(idx.query_and(&["fox", "bread"]), Vec::<u32>::new());
        assert!(idx.query_and(&[]).is_empty());
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let rt = TaskRuntime::builder().workers(3).build();
        let (tree, _) = generate_tree(&CorpusConfig::default());
        let seq = InvertedIndex::build_seq(&tree);
        let par = InvertedIndex::build_par(&rt, &tree);
        assert_eq!(seq.files, par.files);
        assert_eq!(seq.vocabulary_size(), par.vocabulary_size());
        for (token, posts) in &seq.postings {
            assert_eq!(par.lookup(token), posts.as_slice(), "token {token}");
        }
        rt.shutdown();
    }

    #[test]
    fn index_agrees_with_direct_search() {
        let rt = TaskRuntime::builder().workers(2).build();
        let cfg = CorpusConfig::default();
        let (tree, _) = generate_tree(&cfg);
        let idx = InvertedIndex::build_par(&rt, &tree);
        // Every posting for "parallel" corresponds to a real line hit.
        let walked = tree.walk();
        for p in idx.lookup("parallel") {
            let (_, file) = &walked[p.file as usize];
            let line = &file.lines[p.line as usize - 1];
            assert!(
                tokenize(line).any(|t| t == "parallel"),
                "posting {p:?} points at {line:?}"
            );
        }
        // And the posting count matches a direct token scan.
        let direct: usize = walked
            .iter()
            .flat_map(|(_, f)| f.lines.iter())
            .map(|l| usize::from(tokenize(l).any(|t| t == "parallel")))
            .sum::<usize>();
        // lookup counts (file,line) pairs once each, same as `direct`
        // counts lines containing the token at least once... except a
        // line with the token twice: dedup makes them equal.
        assert_eq!(idx.lookup("parallel").len(), direct);
        rt.shutdown();
    }

    #[test]
    fn vocabulary_is_plausible() {
        let (tree, _) = generate_tree(&CorpusConfig::default());
        let idx = InvertedIndex::build_seq(&tree);
        // The corpus draws from ~104 words plus the needle's tokens.
        assert!(idx.vocabulary_size() >= 90);
        assert!(idx.vocabulary_size() <= 120);
    }
}
