//! Deterministic text-corpus generation.
//!
//! Replaces the "folder of text files" / "number of PDF files" inputs
//! with seeded synthetic prose. A fixed word list plus a small set of
//! planted *needle* phrases gives the search tests exact expected
//! counts to assert against.

use parc_util::rng::Xoshiro256;

use crate::paged::Document;
use crate::vfs::{Dir, TextFile};

/// The corpus vocabulary (common English filler).
pub const WORDS: &[&str] = &[
    "the", "of", "and", "a", "to", "in", "is", "you", "that", "it", "he", "was", "for", "on",
    "are", "as", "with", "his", "they", "at", "be", "this", "have", "from", "or", "one", "had",
    "by", "word", "but", "not", "what", "all", "were", "we", "when", "your", "can", "said",
    "there", "use", "an", "each", "which", "she", "do", "how", "their", "if", "will", "up",
    "other", "about", "out", "many", "then", "them", "these", "so", "some", "her", "would",
    "make", "like", "him", "into", "time", "has", "look", "two", "more", "write", "go", "see",
    "number", "no", "way", "could", "people", "my", "than", "first", "water", "been", "call",
    "who", "oil", "its", "now", "find", "long", "down", "day", "did", "get", "come", "made",
    "may", "part", "thread", "parallel", "task", "core",
];

/// Configuration for text-corpus generation.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Files per directory.
    pub files_per_dir: usize,
    /// Sub-directories per directory.
    pub dirs_per_level: usize,
    /// Tree depth (0 = flat).
    pub depth: usize,
    /// Lines per file.
    pub lines_per_file: usize,
    /// Words per line.
    pub words_per_line: usize,
    /// The phrase planted at a known rate.
    pub needle: String,
    /// Probability a line carries the needle.
    pub needle_rate: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            files_per_dir: 8,
            dirs_per_level: 3,
            depth: 2,
            lines_per_file: 40,
            words_per_line: 10,
            needle: "concurrency bug".to_string(),
            needle_rate: 0.02,
            seed: 0xD0C5,
        }
    }
}

fn gen_line(rng: &mut Xoshiro256, cfg: &CorpusConfig, planted: &mut usize) -> String {
    let mut words: Vec<&str> = (0..cfg.words_per_line)
        .map(|_| *rng.choose(WORDS))
        .collect();
    let mut line = words.join(" ");
    if rng.gen_bool(cfg.needle_rate) {
        let insert_at = rng.gen_range_usize(0..words.len().max(1));
        words.insert(insert_at, "");
        line = {
            let mut parts: Vec<String> = words.iter().map(|w| (*w).to_string()).collect();
            parts[insert_at] = cfg.needle.clone();
            parts.join(" ")
        };
        *planted += 1;
    }
    line
}

fn gen_dir(
    name: &str,
    depth_left: usize,
    rng: &mut Xoshiro256,
    cfg: &CorpusConfig,
    planted: &mut usize,
) -> Dir {
    let mut dir = Dir::new(name);
    for f in 0..cfg.files_per_dir {
        let lines = (0..cfg.lines_per_file)
            .map(|_| gen_line(rng, cfg, planted))
            .collect();
        dir.files.push(TextFile::new(&format!("file{f}.txt"), lines));
    }
    if depth_left > 0 {
        for d in 0..cfg.dirs_per_level {
            dir.subdirs
                .push(gen_dir(&format!("dir{d}"), depth_left - 1, rng, cfg, planted));
        }
    }
    dir
}

/// Generate a folder tree; returns the tree and the number of planted
/// needle occurrences (= expected literal-search hit count).
#[must_use]
pub fn generate_tree(cfg: &CorpusConfig) -> (Dir, usize) {
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    let mut planted = 0;
    let dir = gen_dir("corpus", cfg.depth, &mut rng, cfg, &mut planted);
    (dir, planted)
}

/// Generate a collection of paged documents (the PDF-folder
/// substitute); returns the documents and the planted needle count.
#[must_use]
pub fn generate_documents(
    count: usize,
    pages_per_doc: usize,
    lines_per_page: usize,
    cfg: &CorpusConfig,
) -> (Vec<Document>, usize) {
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed ^ 0x9E37);
    let mut planted = 0;
    let docs = (0..count)
        .map(|d| {
            let pages = (0..pages_per_doc)
                .map(|_| {
                    (0..lines_per_page)
                        .map(|_| gen_line(&mut rng, cfg, &mut planted))
                        .collect::<Vec<_>>()
                        .join("\n")
                })
                .collect();
            Document {
                title: format!("document-{d:03}.pdf"),
                pages,
            }
        })
        .collect();
    (docs, planted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_shape_matches_config() {
        let cfg = CorpusConfig {
            files_per_dir: 2,
            dirs_per_level: 2,
            depth: 2,
            ..CorpusConfig::default()
        };
        let (tree, _) = generate_tree(&cfg);
        // 1 + 2 + 4 directories, 2 files each.
        assert_eq!(tree.file_count(), 2 * 7);
        assert_eq!(tree.files.len(), 2);
        assert_eq!(tree.subdirs.len(), 2);
        assert_eq!(tree.subdirs[0].subdirs.len(), 2);
        assert!(tree.subdirs[0].subdirs[0].subdirs.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = CorpusConfig::default();
        let (a, pa) = generate_tree(&cfg);
        let (b, pb) = generate_tree(&cfg);
        assert_eq!(pa, pb);
        assert_eq!(a, b);
    }

    #[test]
    fn planted_count_matches_actual_occurrences() {
        let cfg = CorpusConfig {
            needle_rate: 0.1,
            ..CorpusConfig::default()
        };
        let (tree, planted) = generate_tree(&cfg);
        let mut found = 0;
        for (_, file) in tree.walk() {
            for line in &file.lines {
                found += line.matches(&cfg.needle).count();
            }
        }
        assert_eq!(found, planted);
        assert!(planted > 0, "with rate 0.1 some needles must land");
    }

    #[test]
    fn documents_have_requested_shape() {
        let cfg = CorpusConfig::default();
        let (docs, _) = generate_documents(5, 4, 6, &cfg);
        assert_eq!(docs.len(), 5);
        for d in &docs {
            assert_eq!(d.pages.len(), 4);
            assert_eq!(d.pages[0].lines().count(), 6);
        }
    }

    #[test]
    fn document_planted_count_matches() {
        let cfg = CorpusConfig {
            needle_rate: 0.05,
            ..CorpusConfig::default()
        };
        let (docs, planted) = generate_documents(10, 5, 10, &cfg);
        let mut found = 0;
        for d in &docs {
            for p in &d.pages {
                found += p.matches(&cfg.needle).count();
            }
        }
        assert_eq!(found, planted);
    }
}
