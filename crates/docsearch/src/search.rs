//! Parallel folder search with streamed interim results (project 4).

use std::sync::Arc;

use partask::{CancelToken, InterimSender, TaskRuntime};

use crate::regexlite::Regex;
use crate::vfs::{Dir, TextFile};

/// What to search for.
#[derive(Clone, Debug)]
pub enum Query {
    /// Literal substring, optionally case-insensitive.
    Literal {
        /// The needle.
        needle: String,
        /// Fold ASCII case before comparing.
        case_insensitive: bool,
    },
    /// A [`Regex`] pattern.
    Pattern(Regex),
}

impl Query {
    /// Case-sensitive literal query.
    #[must_use]
    pub fn literal(needle: &str) -> Self {
        Query::Literal {
            needle: needle.to_string(),
            case_insensitive: false,
        }
    }

    /// Case-insensitive literal query.
    #[must_use]
    pub fn literal_ci(needle: &str) -> Self {
        Query::Literal {
            needle: needle.to_lowercase(),
            case_insensitive: true,
        }
    }

    /// Regex query.
    #[must_use]
    pub fn regex(regex: Regex) -> Self {
        Query::Pattern(regex)
    }

    /// All match columns within one line.
    fn match_columns(&self, line: &str) -> Vec<usize> {
        match self {
            Query::Literal {
                needle,
                case_insensitive,
            } => {
                let haystack = if *case_insensitive {
                    std::borrow::Cow::Owned(line.to_lowercase())
                } else {
                    std::borrow::Cow::Borrowed(line)
                };
                let mut cols = Vec::new();
                let mut from = 0;
                while let Some(i) = haystack[from..].find(needle.as_str()) {
                    cols.push(from + i);
                    from += i + needle.len().max(1);
                }
                cols
            }
            Query::Pattern(re) => re.find_all(line).into_iter().map(|(s, _)| s).collect(),
        }
    }
}

/// One search hit: the "file and line number pairs" the project brief
/// requires displaying while the search is still in progress.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Match {
    /// Path of the file containing the hit.
    pub path: String,
    /// 1-based line number.
    pub line_no: usize,
    /// 0-based column of the match start.
    pub column: usize,
    /// The full matching line (the display excerpt).
    pub line: String,
}

/// Search one file.
#[must_use]
pub fn search_file(path: &str, file: &TextFile, query: &Query) -> Vec<Match> {
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        for col in query.match_columns(line) {
            out.push(Match {
                path: path.to_string(),
                line_no: i + 1,
                column: col,
                line: line.clone(),
            });
        }
    }
    out
}

/// Result of a folder search.
#[derive(Debug)]
pub struct SearchReport {
    /// All matches, ordered by file path then line.
    pub matches: Vec<Match>,
    /// Number of files visited.
    pub files_searched: usize,
    /// True when the search was cancelled before completion.
    pub cancelled: bool,
}

/// Search every text file under `root` in parallel: one partask task
/// per file. Matches stream through `on_match` as they are found
/// (file-completion order); the returned report lists them in
/// deterministic path order. A cooperative [`CancelToken`] aborts
/// not-yet-searched files (the GUI's "user typed a new query" path).
#[must_use]
pub fn search_folder(
    rt: &TaskRuntime,
    root: &Dir,
    query: &Query,
    on_match: Option<&InterimSender<Match>>,
    cancel: Option<&CancelToken>,
) -> SearchReport {
    // Snapshot the tree into owned (path, file) pairs the tasks can
    // share; a real implementation would share `&Dir`, but tasks are
    // 'static.
    let files: Arc<Vec<(String, TextFile)>> = Arc::new(
        root.walk()
            .into_iter()
            .map(|(p, f)| (p, f.clone()))
            .collect(),
    );
    let query = Arc::new(query.clone());
    let cancel = cancel.cloned().unwrap_or_default();
    let handles: Vec<_> = (0..files.len())
        .map(|i| {
            let files = Arc::clone(&files);
            let query = Arc::clone(&query);
            let tx = on_match.cloned();
            let cancel = cancel.clone();
            rt.spawn(move || {
                if cancel.is_cancelled() {
                    return (Vec::new(), true);
                }
                let (path, file) = &files[i];
                let matches = search_file(path, file, &query);
                if let Some(tx) = &tx {
                    for m in &matches {
                        tx.send(m.clone());
                    }
                }
                (matches, false)
            })
        })
        .collect();
    let mut matches = Vec::new();
    let mut cancelled = false;
    for h in handles {
        let (found, skipped) = h.join().expect("search task");
        cancelled |= skipped;
        matches.extend(found);
    }
    matches.sort_by(|a, b| (&a.path, a.line_no, a.column).cmp(&(&b.path, b.line_no, b.column)));
    SearchReport {
        matches,
        files_searched: files.len(),
        cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_tree, CorpusConfig};

    fn make_file(lines: &[&str]) -> TextFile {
        TextFile::new("f.txt", lines.iter().map(|s| (*s).to_string()).collect())
    }

    #[test]
    fn literal_match_positions() {
        let f = make_file(&["abc abc", "none here", "abc"]);
        let hits = search_file("d/f.txt", &f, &Query::literal("abc"));
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].line_no, 1);
        assert_eq!(hits[0].column, 0);
        assert_eq!(hits[1].column, 4);
        assert_eq!(hits[2].line_no, 3);
        assert_eq!(hits[0].path, "d/f.txt");
    }

    #[test]
    fn case_insensitive_literal() {
        let f = make_file(&["Hello World", "HELLO"]);
        let hits = search_file("p", &f, &Query::literal_ci("hello"));
        assert_eq!(hits.len(), 2);
        let none = search_file("p", &f, &Query::literal("hello"));
        assert!(none.is_empty());
    }

    #[test]
    fn regex_query_matches() {
        let f = make_file(&["error: code 42", "warning: code 7", "error: none"]);
        let re = Regex::new(r"error: code \d+").unwrap();
        let hits = search_file("p", &f, &Query::regex(re));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line_no, 1);
    }

    #[test]
    fn folder_search_finds_exactly_the_planted_needles() {
        let rt = TaskRuntime::builder().workers(2).build();
        let cfg = CorpusConfig {
            needle_rate: 0.05,
            ..CorpusConfig::default()
        };
        let (tree, planted) = generate_tree(&cfg);
        let report = search_folder(&rt, &tree, &Query::literal(&cfg.needle), None, None);
        assert_eq!(report.matches.len(), planted);
        assert_eq!(report.files_searched, tree.file_count());
        assert!(!report.cancelled);
        rt.shutdown();
    }

    #[test]
    fn results_sorted_by_path_then_line() {
        let rt = TaskRuntime::builder().workers(2).build();
        let (tree, _) = generate_tree(&CorpusConfig {
            needle_rate: 0.1,
            ..CorpusConfig::default()
        });
        let cfg = CorpusConfig::default();
        let report = search_folder(&rt, &tree, &Query::literal(&cfg.needle), None, None);
        let keys: Vec<_> = report
            .matches
            .iter()
            .map(|m| (m.path.clone(), m.line_no, m.column))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        rt.shutdown();
    }

    #[test]
    fn interim_stream_carries_every_match() {
        let rt = TaskRuntime::builder().workers(2).build();
        let cfg = CorpusConfig {
            needle_rate: 0.05,
            ..CorpusConfig::default()
        };
        let (tree, planted) = generate_tree(&cfg);
        let (tx, rx) = partask::interim::channel::<Match>();
        let report = search_folder(&rt, &tree, &Query::literal(&cfg.needle), Some(&tx), None);
        let streamed = rx.try_drain();
        assert_eq!(streamed.len(), planted);
        assert_eq!(report.matches.len(), planted);
        rt.shutdown();
    }

    #[test]
    fn pre_cancelled_search_skips_files() {
        let rt = TaskRuntime::builder().workers(1).build();
        let (tree, _) = generate_tree(&CorpusConfig::default());
        let cancel = CancelToken::new();
        cancel.cancel();
        let report = search_folder(
            &rt,
            &tree,
            &Query::literal("anything"),
            None,
            Some(&cancel),
        );
        assert!(report.cancelled);
        assert!(report.matches.is_empty());
        rt.shutdown();
    }

    #[test]
    fn empty_needle_yields_no_matches_safely() {
        let f = make_file(&["abc"]);
        let hits = search_file("p", &f, &Query::literal("x"));
        assert!(hits.is_empty());
    }
}
