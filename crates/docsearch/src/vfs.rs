//! A virtual folder tree of text files (the search corpus substrate).

/// A text file: a name and its lines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TextFile {
    /// File name (no path).
    pub name: String,
    /// File content, line by line.
    pub lines: Vec<String>,
}

impl TextFile {
    /// Construct from a name and content lines.
    #[must_use]
    pub fn new(name: &str, lines: Vec<String>) -> Self {
        Self {
            name: name.to_string(),
            lines,
        }
    }

    /// Total bytes of content (excluding newlines).
    #[must_use]
    pub fn content_bytes(&self) -> usize {
        self.lines.iter().map(String::len).sum()
    }
}

/// A directory containing files and sub-directories.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Dir {
    /// Directory name.
    pub name: String,
    /// Files directly inside.
    pub files: Vec<TextFile>,
    /// Sub-directories.
    pub subdirs: Vec<Dir>,
}

impl Dir {
    /// New empty directory.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            ..Self::default()
        }
    }

    /// Recursively collect `(path, &file)` pairs, depth-first, in a
    /// deterministic order. Paths use `/` separators.
    #[must_use]
    pub fn walk(&self) -> Vec<(String, &TextFile)> {
        let mut out = Vec::new();
        self.walk_into(&self.name, &mut out);
        out
    }

    fn walk_into<'a>(&'a self, prefix: &str, out: &mut Vec<(String, &'a TextFile)>) {
        for f in &self.files {
            out.push((format!("{prefix}/{}", f.name), f));
        }
        for d in &self.subdirs {
            d.walk_into(&format!("{prefix}/{}", d.name), out);
        }
    }

    /// Total number of files in the tree.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.files.len() + self.subdirs.iter().map(Dir::file_count).sum::<usize>()
    }

    /// Total content bytes in the tree.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.files.iter().map(TextFile::content_bytes).sum::<usize>()
            + self.subdirs.iter().map(Dir::total_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dir {
        let mut root = Dir::new("root");
        root.files.push(TextFile::new("a.txt", vec!["hello".into()]));
        let mut sub = Dir::new("sub");
        sub.files.push(TextFile::new("b.txt", vec!["world!".into()]));
        let mut deeper = Dir::new("deep");
        deeper
            .files
            .push(TextFile::new("c.txt", vec!["deep file".into()]));
        sub.subdirs.push(deeper);
        root.subdirs.push(sub);
        root
    }

    #[test]
    fn walk_visits_all_files_with_paths() {
        let root = sample();
        let walked = root.walk();
        let paths: Vec<&str> = walked.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["root/a.txt", "root/sub/b.txt", "root/sub/deep/c.txt"]);
    }

    #[test]
    fn counts_and_sizes() {
        let root = sample();
        assert_eq!(root.file_count(), 3);
        assert_eq!(root.total_bytes(), 5 + 6 + 9);
        assert_eq!(root.files[0].content_bytes(), 5);
    }

    #[test]
    fn empty_dir() {
        let d = Dir::new("empty");
        assert_eq!(d.file_count(), 0);
        assert!(d.walk().is_empty());
    }
}
