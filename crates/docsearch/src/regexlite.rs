//! A small regular-expression engine (Thompson NFA construction,
//! breadth-first simulation — linear time, no backtracking).
//!
//! Supported syntax: literals, `.`, character classes `[a-z0-9]` and
//! negated classes `[^…]`, escapes (`\.` etc. plus `\d` `\w` `\s`),
//! grouping `(…)`, alternation `|`, repetition `*` `+` `?`, and the
//! anchors `^` / `$`. Matching is byte-oriented over ASCII (the
//! generated corpora are ASCII); `is_match` is unanchored unless
//! anchors are present.

use std::fmt;

/// A compiled pattern.
#[derive(Clone, Debug)]
pub struct Regex {
    pattern: String,
    states: Vec<State>,
    start: usize,
}

/// Compilation error with a human-readable description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug)]
enum State {
    /// Consume one byte matching the class, then go to `next`.
    Byte(ByteClass, usize),
    /// Fork to both targets without consuming.
    Split(usize, usize),
    /// Match only at the start of the text.
    AnchorStart(usize),
    /// Match only at the end of the text.
    AnchorEnd(usize),
    /// Accepting state.
    Accept,
}

#[derive(Clone, Debug)]
enum ByteClass {
    Any,
    One(u8),
    Set { negated: bool, ranges: Vec<(u8, u8)> },
}

impl ByteClass {
    fn matches(&self, b: u8) -> bool {
        match self {
            ByteClass::Any => b != b'\n',
            ByteClass::One(c) => b == *c,
            ByteClass::Set { negated, ranges } => {
                let inside = ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&b));
                inside != *negated
            }
        }
    }
}

// --- parser: pattern -> AST ------------------------------------------

#[derive(Debug)]
enum Ast {
    Empty,
    Byte(ByteClass),
    Concat(Box<Ast>, Box<Ast>),
    Alt(Box<Ast>, Box<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Opt(Box<Ast>),
    AnchorStart,
    AnchorEnd,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn parse_alternation(&mut self) -> Result<Ast, ParseError> {
        let mut left = self.parse_concat()?;
        while self.peek() == Some(b'|') {
            self.bump();
            let right = self.parse_concat()?;
            left = Ast::Alt(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_concat(&mut self) -> Result<Ast, ParseError> {
        let mut items = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(items
            .into_iter()
            .fold(Ast::Empty, |acc, item| match acc {
                Ast::Empty => item,
                other => Ast::Concat(Box::new(other), Box::new(item)),
            }))
    }

    fn parse_repeat(&mut self) -> Result<Ast, ParseError> {
        let atom = self.parse_atom()?;
        match self.peek() {
            Some(b'*') => {
                self.bump();
                Ok(Ast::Star(Box::new(atom)))
            }
            Some(b'+') => {
                self.bump();
                Ok(Ast::Plus(Box::new(atom)))
            }
            Some(b'?') => {
                self.bump();
                Ok(Ast::Opt(Box::new(atom)))
            }
            _ => Ok(atom),
        }
    }

    fn parse_atom(&mut self) -> Result<Ast, ParseError> {
        match self.bump() {
            None => Err(ParseError("unexpected end of pattern".into())),
            Some(b'(') => {
                let inner = self.parse_alternation()?;
                if self.bump() != Some(b')') {
                    return Err(ParseError("unclosed group".into()));
                }
                Ok(inner)
            }
            Some(b'[') => self.parse_class(),
            Some(b'.') => Ok(Ast::Byte(ByteClass::Any)),
            Some(b'^') => Ok(Ast::AnchorStart),
            Some(b'$') => Ok(Ast::AnchorEnd),
            Some(b'\\') => {
                let escaped = self
                    .bump()
                    .ok_or_else(|| ParseError("dangling escape".into()))?;
                Ok(Ast::Byte(escape_class(escaped)?))
            }
            Some(b @ (b'*' | b'+' | b'?')) => Err(ParseError(format!(
                "repetition '{}' with nothing to repeat",
                b as char
            ))),
            Some(b')') => Err(ParseError("unmatched ')'".into())),
            Some(b) => Ok(Ast::Byte(ByteClass::One(b))),
        }
    }

    fn parse_class(&mut self) -> Result<Ast, ParseError> {
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        loop {
            let b = self
                .bump()
                .ok_or_else(|| ParseError("unclosed character class".into()))?;
            if b == b']' {
                if ranges.is_empty() {
                    return Err(ParseError("empty character class".into()));
                }
                return Ok(Ast::Byte(ByteClass::Set { negated, ranges }));
            }
            let lo = if b == b'\\' {
                self.bump()
                    .ok_or_else(|| ParseError("dangling escape in class".into()))?
            } else {
                b
            };
            if self.peek() == Some(b'-') && self.bytes.get(self.pos + 1) != Some(&b']') {
                self.bump(); // '-'
                let hi = self
                    .bump()
                    .ok_or_else(|| ParseError("unterminated range".into()))?;
                if hi < lo {
                    return Err(ParseError(format!(
                        "inverted range {}-{}",
                        lo as char, hi as char
                    )));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
    }
}

fn escape_class(b: u8) -> Result<ByteClass, ParseError> {
    Ok(match b {
        b'd' => ByteClass::Set {
            negated: false,
            ranges: vec![(b'0', b'9')],
        },
        b'w' => ByteClass::Set {
            negated: false,
            ranges: vec![(b'a', b'z'), (b'A', b'Z'), (b'0', b'9'), (b'_', b'_')],
        },
        b's' => ByteClass::Set {
            negated: false,
            ranges: vec![(b' ', b' '), (b'\t', b'\t'), (b'\n', b'\n'), (b'\r', b'\r')],
        },
        b'n' => ByteClass::One(b'\n'),
        b't' => ByteClass::One(b'\t'),
        // Any other escaped byte is itself (covers \. \\ \[ …).
        other => ByteClass::One(other),
    })
}

// --- compiler: AST -> NFA states --------------------------------------

struct Compiler {
    states: Vec<State>,
}

impl Compiler {
    /// Compile `ast`; on success every dangling edge points at `next`.
    fn compile(&mut self, ast: &Ast, next: usize) -> usize {
        match ast {
            Ast::Empty => next,
            Ast::Byte(class) => self.push(State::Byte(class.clone(), next)),
            Ast::Concat(a, b) => {
                let b_start = self.compile(b, next);
                self.compile(a, b_start)
            }
            Ast::Alt(a, b) => {
                let a_start = self.compile(a, next);
                let b_start = self.compile(b, next);
                self.push(State::Split(a_start, b_start))
            }
            Ast::Star(inner) => {
                let split = self.reserve();
                let inner_start = self.compile(inner, split);
                self.states[split] = State::Split(inner_start, next);
                split
            }
            Ast::Plus(inner) => {
                let split = self.reserve();
                let inner_start = self.compile(inner, split);
                self.states[split] = State::Split(inner_start, next);
                inner_start
            }
            Ast::Opt(inner) => {
                let inner_start = self.compile(inner, next);
                self.push(State::Split(inner_start, next))
            }
            Ast::AnchorStart => self.push(State::AnchorStart(next)),
            Ast::AnchorEnd => self.push(State::AnchorEnd(next)),
        }
    }

    fn push(&mut self, s: State) -> usize {
        self.states.push(s);
        self.states.len() - 1
    }

    fn reserve(&mut self) -> usize {
        self.push(State::Split(0, 0))
    }
}

impl Regex {
    /// Compile a pattern.
    pub fn new(pattern: &str) -> Result<Self, ParseError> {
        let mut parser = Parser {
            bytes: pattern.as_bytes(),
            pos: 0,
        };
        let ast = parser.parse_alternation()?;
        if parser.pos != parser.bytes.len() {
            return Err(ParseError("trailing characters (unmatched ')')".into()));
        }
        let mut compiler = Compiler { states: Vec::new() };
        let accept = compiler.push(State::Accept);
        let start = compiler.compile(&ast, accept);
        Ok(Self {
            pattern: pattern.to_string(),
            states: compiler.states,
            start,
        })
    }

    /// The source pattern.
    #[must_use]
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Does the pattern match anywhere in `text`?
    #[must_use]
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// Leftmost-longest match: byte offset of the first position from
    /// which the pattern matches, with the length of the longest
    /// completion at that position (POSIX-style).
    #[must_use]
    pub fn find(&self, text: &str) -> Option<(usize, usize)> {
        let bytes = text.as_bytes();
        for start_pos in 0..=bytes.len() {
            if let Some(end) = self.match_at(bytes, start_pos) {
                return Some((start_pos, end - start_pos));
            }
        }
        None
    }

    /// All non-overlapping matches, leftmost-longest.
    #[must_use]
    pub fn find_all(&self, text: &str) -> Vec<(usize, usize)> {
        let bytes = text.as_bytes();
        let mut out = Vec::new();
        let mut pos = 0;
        while pos <= bytes.len() {
            match self.match_at_from(bytes, pos) {
                Some((start, end)) => {
                    out.push((start, end - start));
                    pos = if end > start { end } else { end + 1 };
                }
                None => break,
            }
        }
        out
    }

    /// First match starting at or after `from`.
    fn match_at_from(&self, bytes: &[u8], from: usize) -> Option<(usize, usize)> {
        (from..=bytes.len()).find_map(|s| self.match_at(bytes, s).map(|e| (s, e)))
    }

    /// Longest match beginning exactly at `start_pos`; returns the
    /// end offset.
    fn match_at(&self, bytes: &[u8], start_pos: usize) -> Option<usize> {
        let mut current: Vec<usize> = Vec::new();
        let mut on_list = vec![false; self.states.len()];
        self.add_state(self.start, start_pos, bytes, &mut current, &mut on_list);
        let mut pos = start_pos;
        let mut last_accept = None;
        loop {
            if current.iter().any(|&s| matches!(self.states[s], State::Accept)) {
                last_accept = Some(pos);
            }
            if pos >= bytes.len() || current.is_empty() {
                return last_accept;
            }
            let b = bytes[pos];
            let mut next: Vec<usize> = Vec::new();
            let mut next_on = vec![false; self.states.len()];
            for &s in &current {
                if let State::Byte(class, to) = &self.states[s] {
                    if class.matches(b) {
                        self.add_state(*to, pos + 1, bytes, &mut next, &mut next_on);
                    }
                }
            }
            current = next;
            on_list = next_on;
            let _ = &on_list;
            pos += 1;
        }
    }

    /// ε-closure insertion, resolving splits and anchors eagerly.
    fn add_state(
        &self,
        s: usize,
        pos: usize,
        bytes: &[u8],
        list: &mut Vec<usize>,
        on_list: &mut [bool],
    ) {
        if on_list[s] {
            return;
        }
        on_list[s] = true;
        match &self.states[s] {
            State::Split(a, b) => {
                self.add_state(*a, pos, bytes, list, on_list);
                self.add_state(*b, pos, bytes, list, on_list);
            }
            State::AnchorStart(next) => {
                if pos == 0 {
                    self.add_state(*next, pos, bytes, list, on_list);
                }
            }
            State::AnchorEnd(next) => {
                if pos == bytes.len() {
                    self.add_state(*next, pos, bytes, list, on_list);
                }
            }
            State::Byte(..) | State::Accept => list.push(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).expect("valid pattern")
    }

    #[test]
    fn literal_match() {
        assert!(re("abc").is_match("xxabcxx"));
        assert!(!re("abc").is_match("ab c"));
        assert_eq!(re("abc").find("xxabc"), Some((2, 3)));
    }

    #[test]
    fn dot_matches_any_but_newline() {
        assert!(re("a.c").is_match("abc"));
        assert!(re("a.c").is_match("a-c"));
        assert!(!re("a.c").is_match("a\nc"));
    }

    #[test]
    fn star_plus_opt() {
        assert!(re("ab*c").is_match("ac"));
        assert!(re("ab*c").is_match("abbbc"));
        assert!(!re("ab+c").is_match("ac"));
        assert!(re("ab+c").is_match("abc"));
        assert!(re("ab?c").is_match("ac"));
        assert!(re("ab?c").is_match("abc"));
        assert!(!re("ab?c").is_match("abbc"));
    }

    #[test]
    fn classes_and_ranges() {
        assert!(re("[abc]+").is_match("cab"));
        assert!(re("[a-z0-9]+").is_match("hello42"));
        assert!(!re("^[a-z]+$").is_match("Hello"));
        assert!(re("[^0-9]").is_match("a"));
        assert!(!re("^[^0-9]+$").is_match("a1b"));
        assert!(re("[a-c-]").is_match("-"), "trailing dash is literal");
    }

    #[test]
    fn escapes() {
        assert!(re(r"\d+").is_match("abc123"));
        assert!(!re(r"^\d+$").is_match("12a"));
        assert!(re(r"\w+").is_match("under_score9"));
        assert!(re(r"\s").is_match("a b"));
        assert!(re(r"a\.b").is_match("a.b"));
        assert!(!re(r"a\.b").is_match("axb"));
        assert!(re(r"\\").is_match("back\\slash"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(re("cat|dog").is_match("hotdog"));
        assert!(re("(ab)+").is_match("abab"));
        assert!(re("gr(a|e)y").is_match("grey"));
        assert!(re("gr(a|e)y").is_match("gray"));
        assert!(!re("gr(a|e)y").is_match("groy"));
        assert!(re("a(b|c)*d").is_match("abcbcd"));
    }

    #[test]
    fn anchors() {
        assert!(re("^abc").is_match("abcdef"));
        assert!(!re("^abc").is_match("xabc"));
        assert!(re("def$").is_match("abcdef"));
        assert!(!re("def$").is_match("defx"));
        assert!(re("^only$").is_match("only"));
        assert!(!re("^only$").is_match("only one"));
    }

    #[test]
    fn find_all_non_overlapping() {
        assert_eq!(re("ab").find_all("abxabxab"), vec![(0, 2), (3, 2), (6, 2)]);
        assert_eq!(re("a+").find_all("aa b aaa").len(), 2);
    }

    #[test]
    fn empty_match_progression_terminates() {
        // Pattern that can match empty: must not loop forever.
        let matches = re("a*").find_all("bb");
        assert!(!matches.is_empty());
    }

    #[test]
    fn leftmost_longest_semantics() {
        // NFA simulation reports the longest completion at the
        // leftmost start (POSIX-style).
        assert_eq!(re("ab*").find("abbb"), Some((0, 4)));
        assert_eq!(re("a|ab").find("ab"), Some((0, 2)));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("(ab").is_err());
        assert!(Regex::new("ab)").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a[]b").is_err());
        assert!(Regex::new("[z-a]").is_err());
        assert!(Regex::new("a\\").is_err());
    }

    #[test]
    fn pathological_pattern_is_linear() {
        // (a+)+b against aaaa…a! is exponential for backtrackers; the
        // NFA simulation must finish instantly.
        let r = re("(a+)+b");
        let text = format!("{}!", "a".repeat(2000));
        let start = std::time::Instant::now();
        assert!(!r.is_match(&text));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "simulation should be linear"
        );
    }

    #[test]
    fn pattern_accessor() {
        assert_eq!(re("a|b").pattern(), "a|b");
    }
}
