//! # docsearch — parallel text and document search
//!
//! Two SoftEng 751 projects live here:
//!
//! * **Project 4 — search for a string in text files of a folder**:
//!   "the user would specify a search string (or even a regular
//!   expression), which is then searched in the text files of a folder
//!   and its sub-folders … in parallel without blocking the user
//!   interface … encountered strings were also displayed as file and
//!   line number pairs while the search was still in progress."
//!   → [`vfs`] (virtual folder tree), [`regexlite`] (a from-scratch
//!   Thompson-NFA regex subset — no backtracking blow-up), and
//!   [`search`] (parallel folder search with streamed interim hits).
//!
//! * **Project 7 — PDF searching**: "searches a number of PDF files …
//!   investigating various granularity and parameters to the
//!   parallelisation process (for example, searching per page, per
//!   file, number of threads, etc)."
//!   → [`paged`] (paged documents and the granularity sweep).
//!
//! Substitution (see DESIGN.md): corpora are generated
//! deterministically from an embedded word list rather than read from
//! disk; the search code paths (per-file/per-page tasks, streaming,
//! cancellation) are the real thing.

pub mod corpus;
pub mod index;
pub mod paged;
pub mod regexlite;
pub mod search;
pub mod vfs;

pub use index::InvertedIndex;
pub use paged::{search_documents, Document, Granularity, PagedSearchReport};
pub use regexlite::Regex;
pub use search::{search_folder, Match, Query, SearchReport};
pub use vfs::{Dir, TextFile};
