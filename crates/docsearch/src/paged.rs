//! Paged-document search with configurable granularity (project 7).
//!
//! The "PDF" of the project brief is, for search purposes, a sequence
//! of text pages. The research question the students investigated is
//! *granularity*: is the unit of parallel work a whole document, a
//! single page, or a chunk of pages? Too coarse starves workers at the
//! tail; too fine drowns the runtime in per-task overhead. The
//! benchmark in experiment E7 sweeps exactly that axis.

use std::sync::Arc;

use partask::{InterimSender, TaskRuntime};

use crate::search::Query;

/// A paged document (the PDF stand-in).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Document {
    /// Document title / file name.
    pub title: String,
    /// Page texts.
    pub pages: Vec<String>,
}

impl Document {
    /// Number of pages.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

/// The unit of parallel work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Granularity {
    /// One task per document.
    PerDocument,
    /// One task per page.
    PerPage,
    /// One task per chunk of `n` pages (within a document).
    PerChunk(usize),
}

impl Granularity {
    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Granularity::PerDocument => "per-document".into(),
            Granularity::PerPage => "per-page".into(),
            Granularity::PerChunk(n) => format!("per-chunk({n})"),
        }
    }
}

/// One page-level hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageHit {
    /// Index of the document.
    pub doc: usize,
    /// 0-based page number.
    pub page: usize,
    /// Number of matches on that page.
    pub count: usize,
}

/// Result of a document-collection search.
#[derive(Debug)]
pub struct PagedSearchReport {
    /// Hits ordered by (doc, page).
    pub hits: Vec<PageHit>,
    /// Total match count.
    pub total_matches: usize,
    /// Number of parallel tasks the granularity produced.
    pub tasks_spawned: usize,
}

fn count_in_page(page: &str, query: &Query) -> usize {
    page.lines()
        .map(|line| match query {
            Query::Literal {
                needle,
                case_insensitive,
            } => {
                if *case_insensitive {
                    line.to_lowercase().matches(needle.as_str()).count()
                } else {
                    line.matches(needle.as_str()).count()
                }
            }
            Query::Pattern(re) => re.find_all(line).len(),
        })
        .sum()
}

/// Search all documents for `query` at the given granularity,
/// optionally streaming page hits as they are found.
#[must_use]
pub fn search_documents(
    rt: &TaskRuntime,
    docs: &Arc<Vec<Document>>,
    query: &Query,
    granularity: Granularity,
    on_hit: Option<&InterimSender<PageHit>>,
) -> PagedSearchReport {
    // Work units: (doc index, page range).
    let mut units: Vec<(usize, usize, usize)> = Vec::new();
    for (d, doc) in docs.iter().enumerate() {
        let pages = doc.page_count();
        match granularity {
            Granularity::PerDocument => units.push((d, 0, pages)),
            Granularity::PerPage => units.extend((0..pages).map(|p| (d, p, p + 1))),
            Granularity::PerChunk(n) => {
                let n = n.max(1);
                let mut p = 0;
                while p < pages {
                    units.push((d, p, (p + n).min(pages)));
                    p += n;
                }
            }
        }
    }
    let query = Arc::new(query.clone());
    let tasks_spawned = units.len();
    let units = Arc::new(units);
    let handles: Vec<_> = (0..tasks_spawned)
        .map(|u| {
            let docs = Arc::clone(docs);
            let units = Arc::clone(&units);
            let query = Arc::clone(&query);
            let tx = on_hit.cloned();
            rt.spawn(move || {
                let (d, lo, hi) = units[u];
                let mut hits = Vec::new();
                for p in lo..hi {
                    let count = count_in_page(&docs[d].pages[p], &query);
                    if count > 0 {
                        let hit = PageHit {
                            doc: d,
                            page: p,
                            count,
                        };
                        if let Some(tx) = &tx {
                            tx.send(hit.clone());
                        }
                        hits.push(hit);
                    }
                }
                hits
            })
        })
        .collect();
    let mut hits: Vec<PageHit> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("search task"))
        .collect();
    hits.sort_by_key(|h| (h.doc, h.page));
    let total_matches = hits.iter().map(|h| h.count).sum();
    PagedSearchReport {
        hits,
        total_matches,
        tasks_spawned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_documents, CorpusConfig};

    fn docs_with_known_hits() -> Arc<Vec<Document>> {
        Arc::new(vec![
            Document {
                title: "a".into(),
                pages: vec![
                    "needle here\nnothing".into(),
                    "no hits".into(),
                    "needle needle".into(),
                ],
            },
            Document {
                title: "b".into(),
                pages: vec!["clean page".into(), "one needle".into()],
            },
        ])
    }

    #[test]
    fn all_granularities_agree() {
        let rt = TaskRuntime::builder().workers(2).build();
        let docs = docs_with_known_hits();
        let query = Query::literal("needle");
        let mut reference: Option<Vec<PageHit>> = None;
        for g in [
            Granularity::PerDocument,
            Granularity::PerPage,
            Granularity::PerChunk(2),
        ] {
            let report = search_documents(&rt, &docs, &query, g, None);
            assert_eq!(report.total_matches, 4, "{g:?}");
            match &reference {
                None => reference = Some(report.hits),
                Some(r) => assert_eq!(r, &report.hits, "{g:?}"),
            }
        }
        rt.shutdown();
    }

    #[test]
    fn task_counts_reflect_granularity() {
        let rt = TaskRuntime::builder().workers(2).build();
        let docs = docs_with_known_hits(); // 2 docs, 3+2 pages
        let query = Query::literal("x");
        assert_eq!(
            search_documents(&rt, &docs, &query, Granularity::PerDocument, None).tasks_spawned,
            2
        );
        assert_eq!(
            search_documents(&rt, &docs, &query, Granularity::PerPage, None).tasks_spawned,
            5
        );
        assert_eq!(
            search_documents(&rt, &docs, &query, Granularity::PerChunk(2), None).tasks_spawned,
            3
        );
        rt.shutdown();
    }

    #[test]
    fn generated_corpus_counts_match_planted() {
        let rt = TaskRuntime::builder().workers(2).build();
        let cfg = CorpusConfig {
            needle_rate: 0.04,
            ..CorpusConfig::default()
        };
        let (docs, planted) = generate_documents(12, 6, 8, &cfg);
        let docs = Arc::new(docs);
        let report = search_documents(
            &rt,
            &docs,
            &Query::literal(&cfg.needle),
            Granularity::PerPage,
            None,
        );
        assert_eq!(report.total_matches, planted);
        rt.shutdown();
    }

    #[test]
    fn interim_hits_stream_completely() {
        let rt = TaskRuntime::builder().workers(2).build();
        let docs = docs_with_known_hits();
        let (tx, rx) = partask::interim::channel::<PageHit>();
        let report = search_documents(
            &rt,
            &docs,
            &Query::literal("needle"),
            Granularity::PerPage,
            Some(&tx),
        );
        let mut streamed = rx.try_drain();
        streamed.sort_by_key(|h| (h.doc, h.page));
        assert_eq!(streamed, report.hits);
        rt.shutdown();
    }

    #[test]
    fn regex_queries_work_on_pages() {
        let rt = TaskRuntime::builder().workers(1).build();
        let docs = Arc::new(vec![Document {
            title: "t".into(),
            pages: vec!["code 12\ncode x".into()],
        }]);
        let re = crate::regexlite::Regex::new(r"code \d+").unwrap();
        let report =
            search_documents(&rt, &docs, &Query::regex(re), Granularity::PerDocument, None);
        assert_eq!(report.total_matches, 1);
        rt.shutdown();
    }

    #[test]
    fn chunk_of_zero_clamps() {
        let rt = TaskRuntime::builder().workers(1).build();
        let docs = docs_with_known_hits();
        let report = search_documents(
            &rt,
            &docs,
            &Query::literal("needle"),
            Granularity::PerChunk(0),
            None,
        );
        assert_eq!(report.total_matches, 4);
        rt.shutdown();
    }

    #[test]
    fn labels() {
        assert_eq!(Granularity::PerDocument.label(), "per-document");
        assert_eq!(Granularity::PerChunk(4).label(), "per-chunk(4)");
    }
}
