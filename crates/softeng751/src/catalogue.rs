//! The ten SoftEng 751 projects (Section IV-C) as runnable scenarios.
//!
//! Each driver exercises its subsystem end to end at a laptop-friendly
//! scale, self-checks its results, and returns a [`ProjectReport`]
//! with headline metrics. The example binaries and the experiment
//! index in DESIGN.md both route through here.

use std::sync::Arc;

use guievent::EventLoop;
use parc_util::Stopwatch;
use partask::TaskRuntime;
use pyjama::{Schedule, Team};

/// The ten project topics of Section IV-C, in the paper's order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProjectId {
    /// 1: Thumbnails of images in a folder.
    Thumbnails,
    /// 2: Parallel quicksort.
    ParallelQuicksort,
    /// 3: Parallelisation of simple computational kernels.
    ComputationalKernels,
    /// 4: Search for a string in text files of a folder.
    TextSearch,
    /// 5: Reductions in Pyjama.
    Reductions,
    /// 6: Task-aware libraries for Parallel Task.
    TaskAwareLibraries,
    /// 7: PDF searching.
    PdfSearch,
    /// 8: Understanding and coping with the memory model.
    MemoryModel,
    /// 9: Parallel use of collections.
    ParallelCollections,
    /// 10: Fast web access through concurrent connections.
    ConcurrentWebAccess,
}

impl ProjectId {
    /// All ten projects, paper order.
    #[must_use]
    pub fn all() -> [ProjectId; 10] {
        [
            ProjectId::Thumbnails,
            ProjectId::ParallelQuicksort,
            ProjectId::ComputationalKernels,
            ProjectId::TextSearch,
            ProjectId::Reductions,
            ProjectId::TaskAwareLibraries,
            ProjectId::PdfSearch,
            ProjectId::MemoryModel,
            ProjectId::ParallelCollections,
            ProjectId::ConcurrentWebAccess,
        ]
    }

    /// The paper's project title.
    #[must_use]
    pub fn title(self) -> &'static str {
        match self {
            ProjectId::Thumbnails => "Thumbnails of images in a folder",
            ProjectId::ParallelQuicksort => "Parallel quicksort",
            ProjectId::ComputationalKernels => "Parallelisation of simple computational kernels",
            ProjectId::TextSearch => "Search for a string in text files of a folder",
            ProjectId::Reductions => "Reductions in Pyjama",
            ProjectId::TaskAwareLibraries => "Task-aware libraries for Parallel Task",
            ProjectId::PdfSearch => "PDF searching",
            ProjectId::MemoryModel => "Understanding and coping with the memory model",
            ProjectId::ParallelCollections => "Parallel use of collections",
            ProjectId::ConcurrentWebAccess => "Fast web access through concurrent connections",
        }
    }

    /// The experiment id in EXPERIMENTS.md.
    #[must_use]
    pub fn experiment_id(self) -> &'static str {
        match self {
            ProjectId::Thumbnails => "E1",
            ProjectId::ParallelQuicksort => "E2",
            ProjectId::ComputationalKernels => "E3",
            ProjectId::TextSearch => "E4",
            ProjectId::Reductions => "E5",
            ProjectId::TaskAwareLibraries => "E6",
            ProjectId::PdfSearch => "E7",
            ProjectId::MemoryModel => "E8",
            ProjectId::ParallelCollections => "E9",
            ProjectId::ConcurrentWebAccess => "E10",
        }
    }
}

/// The shared engines a project needs: a task runtime (Parallel Task
/// analogue), a team (Pyjama analogue) and an event loop (the GUI).
pub struct Engines {
    /// Parallel Task runtime.
    pub rt: TaskRuntime,
    /// Pyjama team.
    pub team: Team,
    /// The GUI event loop.
    pub gui: EventLoop,
}

impl Engines {
    /// Small engines for tests and quick runs (2 workers each).
    #[must_use]
    pub fn small() -> Self {
        Self::with_workers(2)
    }

    /// Engines with `n` workers per runtime.
    #[must_use]
    pub fn with_workers(n: usize) -> Self {
        Self {
            rt: TaskRuntime::builder().workers(n).build(),
            team: Team::new(n),
            gui: EventLoop::spawn(),
        }
    }

    /// Shut everything down cleanly.
    pub fn shutdown(self) {
        self.rt.shutdown();
        self.gui.shutdown();
    }
}

/// Outcome of one project run.
#[derive(Clone, Debug)]
pub struct ProjectReport {
    /// Which project ran.
    pub id: ProjectId,
    /// Project title.
    pub title: &'static str,
    /// Did every self-check pass?
    pub ok: bool,
    /// Human-readable findings, one line each.
    pub details: Vec<String>,
    /// Headline metrics (name, value).
    pub metrics: Vec<(String, f64)>,
    /// Wall time of the whole scenario in milliseconds.
    pub elapsed_ms: f64,
}

impl ProjectReport {
    /// Render as a text block.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "[{}] {} — {}\n",
            self.id.experiment_id(),
            self.title,
            if self.ok { "OK" } else { "FAILED" }
        );
        for d in &self.details {
            out.push_str(&format!("  - {d}\n"));
        }
        for (name, value) in &self.metrics {
            out.push_str(&format!("  * {name}: {value:.3}\n"));
        }
        out.push_str(&format!("  ({:.1} ms)\n", self.elapsed_ms));
        out
    }
}

/// Run one project scenario.
#[must_use]
pub fn run_project(id: ProjectId, engines: &Engines) -> ProjectReport {
    let sw = Stopwatch::start();
    let (ok, details, metrics) = match id {
        ProjectId::Thumbnails => project_thumbnails(engines),
        ProjectId::ParallelQuicksort => project_quicksort(engines),
        ProjectId::ComputationalKernels => project_kernels(engines),
        ProjectId::TextSearch => project_text_search(engines),
        ProjectId::Reductions => project_reductions(engines),
        ProjectId::TaskAwareLibraries => project_task_aware(engines),
        ProjectId::PdfSearch => project_pdf_search(engines),
        ProjectId::MemoryModel => project_memory_model(engines),
        ProjectId::ParallelCollections => project_collections(engines),
        ProjectId::ConcurrentWebAccess => project_web(engines),
    };
    ProjectReport {
        id,
        title: id.title(),
        ok,
        details,
        metrics,
        elapsed_ms: sw.elapsed_ms(),
    }
}

type Outcome = (bool, Vec<String>, Vec<(String, f64)>);

fn project_thumbnails(engines: &Engines) -> Outcome {
    use imaging::{gen, render_gallery, GalleryConfig, Strategy};
    let images = Arc::new(gen::generate_folder(16, 32, 96, 0xA11));
    let mut details = Vec::new();
    let mut metrics = Vec::new();
    let mut hashes: Option<Vec<u64>> = None;
    let mut ok = true;
    // GUI responsiveness while the gallery renders off the EDT.
    let probe = guievent::Probe::start(engines.gui.handle(), std::time::Duration::from_millis(1));
    for strategy in [
        Strategy::Sequential,
        Strategy::TaskPerImage,
        Strategy::MultiTask(4),
        Strategy::PyjamaDynamic(2),
    ] {
        let cfg = GalleryConfig {
            thumb_w: 24,
            thumb_h: 24,
            strategy,
            ..GalleryConfig::default()
        };
        let sw = Stopwatch::start();
        let report = render_gallery(&images, &cfg, &engines.rt, &engines.team, None);
        let ms = sw.elapsed_ms();
        metrics.push((format!("render_ms[{}]", report.strategy), ms));
        let h: Vec<u64> = report
            .thumbnails
            .iter()
            .map(imaging::Image::content_hash)
            .collect();
        match &hashes {
            None => hashes = Some(h),
            Some(r) => {
                if r != &h {
                    ok = false;
                    details.push(format!("strategy {} produced different pixels!", report.strategy));
                }
            }
        }
    }
    let resp = probe.finish();
    metrics.push(("gui_median_latency_ms".into(), resp.summary().median()));
    details.push(format!(
        "all strategies bit-identical across {} images; GUI stayed responsive (worst {:.2} ms)",
        images.len(),
        resp.worst_ms()
    ));
    (ok, details, metrics)
}

fn project_quicksort(engines: &Engines) -> Outcome {
    use parsort::{data, quicksort_partask, quicksort_pyjama, quicksort_seq, quicksort_threads};
    let input = data::random(60_000, 0x50F7);
    let mut expected = input.clone();
    expected.sort_unstable();
    let mut details = Vec::new();
    let mut metrics = Vec::new();
    let mut ok = true;
    type SortVariant<'a> = (&'a str, Box<dyn Fn() -> Vec<u64> + 'a>);
    let variants: Vec<SortVariant> = vec![
        ("sequential", {
            let input = input.clone();
            Box::new(move || {
                let mut v = input.clone();
                quicksort_seq(&mut v);
                v
            })
        }),
        ("partask", {
            let input = input.clone();
            let rt = &engines.rt;
            Box::new(move || {
                let mut v = input.clone();
                quicksort_partask(rt, &mut v);
                v
            })
        }),
        ("pyjama", {
            let input = input.clone();
            let team = &engines.team;
            Box::new(move || {
                let mut v = input.clone();
                quicksort_pyjama(team, &mut v);
                v
            })
        }),
        ("threads", {
            let input = input.clone();
            Box::new(move || {
                let mut v = input.clone();
                quicksort_threads(&mut v, 3);
                v
            })
        }),
    ];
    for (name, run) in variants {
        let sw = Stopwatch::start();
        let sorted = run();
        metrics.push((format!("sort_ms[{name}]"), sw.elapsed_ms()));
        if sorted != expected {
            ok = false;
            details.push(format!("{name} produced an incorrect ordering!"));
        }
    }
    details.push("all four quicksort variants agree with std sort".into());
    (ok, details, metrics)
}

fn project_kernels(engines: &Engines) -> Outcome {
    use kernels::{fft, graph, linalg, montecarlo};
    let team = &engines.team;
    let mut details = Vec::new();
    let mut metrics = Vec::new();
    let mut ok = true;

    // FFT.
    let signal = fft::test_signal(1024, 3);
    let mut seq = signal.clone();
    fft::fft_seq(&mut seq);
    let mut par = signal;
    fft::fft_par(team, &mut par);
    let fft_err = seq
        .iter()
        .zip(&par)
        .map(|(a, b)| a.sub(*b).abs())
        .fold(0.0f64, f64::max);
    ok &= fft_err < 1e-9;
    metrics.push(("fft_max_err".into(), fft_err));

    // PageRank.
    let g = graph::CsrGraph::random(400, 1600, 4);
    let pr_seq = graph::pagerank_seq(&g, 0.85, 20);
    let pr_par = graph::pagerank_par(team, &g, 0.85, 20);
    let pr_err = pr_seq
        .iter()
        .zip(&pr_par)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    ok &= pr_err < 1e-10;
    metrics.push(("pagerank_max_err".into(), pr_err));

    // Matmul.
    let a = linalg::Matrix::random(48, 48, 5);
    let b = linalg::Matrix::random(48, 48, 6);
    let mm_err = linalg::matmul_par(team, &a, &b).max_diff(&linalg::matmul_seq(&a, &b));
    ok &= mm_err < 1e-12;
    metrics.push(("matmul_max_err".into(), mm_err));

    // π.
    let pi = montecarlo::pi_quadrature_par(team, 100_000, Schedule::Static);
    let pi_err = (pi - std::f64::consts::PI).abs();
    ok &= pi_err < 1e-8;
    metrics.push(("pi_quadrature_err".into(), pi_err));

    details.push("FFT, PageRank, matmul and π kernels: parallel == sequential".into());
    (ok, details, metrics)
}

fn project_text_search(engines: &Engines) -> Outcome {
    use docsearch::corpus::{generate_tree, CorpusConfig};
    use docsearch::{search_folder, Query};
    let cfg = CorpusConfig {
        needle_rate: 0.03,
        ..CorpusConfig::default()
    };
    let (tree, planted) = generate_tree(&cfg);
    let (tx, rx) = partask::interim_channel();
    let report = search_folder(&engines.rt, &tree, &Query::literal(&cfg.needle), Some(&tx), None);
    let streamed = rx.try_drain().len();
    let ok = report.matches.len() == planted && streamed == planted;
    let details = vec![format!(
        "found {} planted needles across {} files; {} hits streamed live",
        report.matches.len(),
        report.files_searched,
        streamed
    )];
    let metrics = vec![
        ("matches".into(), report.matches.len() as f64),
        ("files".into(), report.files_searched as f64),
    ];
    (ok, details, metrics)
}

fn project_reductions(engines: &Engines) -> Outcome {
    use pyjama::{MapMerge, SetUnion, SumRed, VecConcat};
    let team = &engines.team;
    let n = 20_000usize;
    let mut ok = true;
    let mut metrics = Vec::new();

    let sum = team.par_reduce(0..n, Schedule::Static, &SumRed, |i| i as u64);
    ok &= sum == (n as u64 - 1) * n as u64 / 2;

    let concat: Vec<u32> =
        team.par_reduce(0..1000, Schedule::Static, &VecConcat::new(), |i| vec![i as u32]);
    ok &= concat == (0..1000).collect::<Vec<_>>();

    let set: std::collections::HashSet<u64> =
        team.par_reduce(0..n, Schedule::Dynamic(64), &SetUnion::new(), |i| {
            let mut s = std::collections::HashSet::new();
            s.insert((i % 97) as u64);
            s
        });
    ok &= set.len() == 97;

    let red = MapMerge::new(|a: u64, b: u64| a + b);
    let counts: std::collections::HashMap<u64, u64> =
        team.par_reduce(0..n, Schedule::Guided(16), &red, |i| {
            let mut m = std::collections::HashMap::new();
            m.insert((i % 10) as u64, 1u64);
            m
        });
    ok &= counts.values().sum::<u64>() == n as u64;

    metrics.push(("scalar_sum".into(), sum as f64));
    metrics.push(("set_cardinality".into(), set.len() as f64));
    let details = vec![
        "scalar sum, vec-concat, set-union and map-merge reductions all verified".into(),
    ];
    (ok, details, metrics)
}

fn project_task_aware(engines: &Engines) -> Outcome {
    use taskcol::TaskCell;
    // The saturated-pool scenario on a dedicated single-worker pool.
    let rt1 = TaskRuntime::builder().workers(1).build();
    let h = rt1.handle();
    let cell = Arc::new(TaskCell::new());
    let consumer = {
        let cell = Arc::clone(&cell);
        let h = h.clone();
        rt1.spawn(move || {
            let producer_cell = Arc::clone(&cell);
            let _producer = h.spawn(move || producer_cell.set(2014u32));
            cell.get_wait(&h)
        })
    };
    let got = consumer.join();
    rt1.shutdown();
    let ok = got == Ok(2014);
    let _ = engines;
    let details = vec![
        "task-aware blocking get on a 1-worker pool helped the producer run (no deadlock)".into(),
    ];
    (ok, details, vec![])
}

fn project_pdf_search(engines: &Engines) -> Outcome {
    use docsearch::corpus::{generate_documents, CorpusConfig};
    use docsearch::{search_documents, Granularity, Query};
    let cfg = CorpusConfig {
        needle_rate: 0.02,
        ..CorpusConfig::default()
    };
    let (docs, planted) = generate_documents(20, 8, 10, &cfg);
    let docs = Arc::new(docs);
    let query = Query::literal(&cfg.needle);
    let mut ok = true;
    let mut metrics = Vec::new();
    for g in [
        Granularity::PerDocument,
        Granularity::PerPage,
        Granularity::PerChunk(4),
    ] {
        let report = search_documents(&engines.rt, &docs, &query, g, None);
        ok &= report.total_matches == planted;
        metrics.push((format!("tasks[{}]", g.label()), report.tasks_spawned as f64));
    }
    let details = vec![format!(
        "three granularities found the same {planted} matches; task counts differ as expected"
    )];
    (ok, details, metrics)
}

fn project_memory_model(engines: &Engines) -> Outcome {
    use memmodel::demos;
    let _ = engines;
    let racy = demos::lost_update(4, 20_000, true);
    let fixed = demos::lost_update_fixed(4, 20_000, demos::FixStrategy::AtomicRmw);
    let mp_fixed = demos::message_passing(100, true);
    let sb_seqcst = demos::store_buffer(200, std::sync::atomic::Ordering::SeqCst);
    let lazy_fixed = demos::lazy_init(30, 4, true);
    let lazy_racy = demos::lazy_init(30, 4, false);
    let ok = racy.race_observed()
        && fixed.anomalies == 0
        && mp_fixed.anomalies == 0
        && sb_seqcst.anomalies == 0
        && lazy_fixed.anomalies == 0;
    let details = vec![
        format!(
            "racy counter lost {} of {} increments; atomic fix lost none",
            racy.anomalies, racy.expected
        ),
        format!(
            "racy lazy-init constructed {} extra times; OnceLock never did",
            lazy_racy.anomalies
        ),
        "SeqCst store-buffer litmus: zero both-zero outcomes, as the model demands".into(),
    ];
    let metrics = vec![
        ("lost_updates".into(), racy.anomalies as f64),
        ("lazy_double_constructions".into(), lazy_racy.anomalies as f64),
    ];
    (ok, details, metrics)
}

fn project_collections(engines: &Engines) -> Outcome {
    use taskcol::workload::{run_map_workload, MapWorkload};
    use taskcol::{MutexMap, RwLockMap, ShardedMap};
    let _ = engines;
    let cfg = MapWorkload {
        threads: 4,
        ops_per_thread: 5_000,
        ..MapWorkload::default()
    };
    let mut metrics = Vec::new();
    let mutex = Arc::new(MutexMap::new());
    let rw = Arc::new(RwLockMap::new());
    let sharded = Arc::new(ShardedMap::new(16));
    metrics.push((
        "ops_per_sec[mutex]".into(),
        run_map_workload(&mutex, &cfg).ops_per_sec(),
    ));
    metrics.push((
        "ops_per_sec[rwlock]".into(),
        run_map_workload(&rw, &cfg).ops_per_sec(),
    ));
    metrics.push((
        "ops_per_sec[sharded]".into(),
        run_map_workload(&sharded, &cfg).ops_per_sec(),
    ));
    let ok = metrics.iter().all(|(_, v)| *v > 0.0);
    let details = vec![
        "read-heavy map workload completed under mutex, rwlock and sharded strategies".into(),
    ];
    (ok, details, metrics)
}

fn project_web(engines: &Engines) -> Outcome {
    use websim::{fetch_all, ServerConfig, SimServer};
    let _ = engines;
    // A dedicated wide pool: connections sleep, they don't compute.
    let rt = TaskRuntime::builder().workers(16).build();
    let server = Arc::new(SimServer::new(ServerConfig {
        pages: 80,
        time_scale: 5e-6,
        ..ServerConfig::default()
    }));
    let serial = fetch_all(&rt, &server, 1);
    let pooled = fetch_all(&rt, &server, 16);
    let speedup = serial.elapsed.as_secs_f64() / pooled.elapsed.as_secs_f64().max(1e-9);
    let mut ok = speedup > 2.0 && server.requests_served() == 160;
    let mut details = vec![format!(
        "16 concurrent connections downloaded {} pages {:.1}x faster than 1 connection",
        serial.pages, speedup
    )];
    let mut metrics = vec![("connection_speedup_16v1".into(), speedup)];

    // Variant: the fault-tolerant crawler against a flaky server.
    let chaos = fault_tolerant_crawl(&rt, 0xC4A0_17E5, 8);
    ok &= chaos.fully_succeeded() && chaos.retries > 0;
    details.push(format!(
        "fault-tolerant crawler recovered all {} pages from a flaky server \
         ({} retries over {} attempts; {} transient, {} timeouts, {} contained panics)",
        chaos.succeeded,
        chaos.retries,
        chaos.attempts_total,
        chaos.transient_errors,
        chaos.timeouts,
        chaos.panics,
    ));
    metrics.push(("crawler_retries".into(), chaos.retries as f64));
    metrics.push(("crawler_failed_pages".into(), chaos.failed_pages.len() as f64));
    rt.shutdown();
    (ok, details, metrics)
}

/// The E10 *fault-tolerant crawler* variant: download a page set from
/// a server that injects deterministic transient errors, timeouts and
/// panics (seeded by `seed`), retrying each page under an exponential
/// backoff policy. The returned [`websim::FetchOutcome`] is
/// reproducible — identical counts for identical seeds, whatever the
/// thread interleaving.
#[must_use]
pub fn fault_tolerant_crawl(
    rt: &TaskRuntime,
    seed: u64,
    connections: usize,
) -> websim::FetchOutcome {
    use faultsim::{FaultInjector, FaultPlan, RetryPolicy};
    use std::time::Duration;
    use websim::{try_fetch_all, ServerConfig, SimServer};
    let plan = FaultPlan::reliable(seed)
        .with_error_rate(0.15)
        .with_timeout_rate(0.05)
        .with_panic_rate(0.02)
        .with_latency_spikes(0.05, 40.0)
        .fail_key_n_times(7, 3);
    let server = Arc::new(SimServer::with_faults(
        ServerConfig {
            pages: 80,
            time_scale: 5e-6,
            ..ServerConfig::default()
        },
        FaultInjector::new(plan),
    ));
    let policy = RetryPolicy::exponential(
        Duration::from_millis(2),
        2.0,
        Duration::from_millis(20),
    )
    .with_jitter(0.2)
    .with_max_attempts(6);
    try_fetch_all(rt, &server, connections, &policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_projects_listed_in_order() {
        let all = ProjectId::all();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].experiment_id(), "E1");
        assert_eq!(all[9].experiment_id(), "E10");
        let titles: std::collections::HashSet<&str> = all.iter().map(|p| p.title()).collect();
        assert_eq!(titles.len(), 10, "titles must be distinct");
    }

    #[test]
    fn every_project_scenario_passes() {
        let engines = Engines::small();
        for id in ProjectId::all() {
            let report = run_project(id, &engines);
            assert!(report.ok, "project {:?} failed:\n{}", id, report.render());
            assert!(!report.render().is_empty());
        }
        engines.shutdown();
    }
}
