//! Convenience prelude: the types a course workbook would import.
//!
//! ```
//! use softeng751::prelude::*;
//!
//! let rt = TaskRuntime::builder().workers(2).build();
//! let team = Team::new(2);
//! let t = rt.spawn({
//!     let team = team.clone(); // teams are cheaply shareable
//!     move || team.par_sum(0..10, Schedule::Static, |i| i as u64)
//! });
//! assert_eq!(t.join().unwrap(), 45);
//! rt.shutdown();
//! ```

pub use faultsim::{Breaker, FaultInjector, FaultPlan, RetryPolicy};
pub use guievent::{EventLoop, GuiHandle, Probe};
pub use parc_inspect::{diff_schedules, CriticalReport, TaskGraph, TimeTravel, TraceStore};
pub use parc_trace::{Collector, TraceHandle};
pub use parc_util::{Stopwatch, Summary, Table};
pub use partask::{
    interim_channel, BatchHandle, CancelToken, InterimReceiver, InterimSender, MultiHandle,
    RuntimeHandle, SchedulerKind, TaskError, TaskHandle, TaskRuntime, TaskWatcher,
};
pub use pyjama::{
    BitAndRed, BitOrRed, BitXorRed, Ctx, MapMerge, MaxRed, MinRed, ProdRed, Reduction, Schedule,
    SetUnion, SumRed, Team, TeamError, TopK, VecConcat,
};
