//! Chaos-soak cells: supervised course workloads under fault storms.
//!
//! One **cell** = one [`FaultStorm`] shape × one [`RestartPolicy`].
//! Inside the cell a [`Supervisor`] runs three children drawn from the
//! project catalogue — the resilient crawler (E10), parallel quicksort
//! (E2) and the imaging filter pipeline (E1/E3) — while each child
//! walks the storm's phases doing one unit of work per phase. Children
//! additionally fail on a *scripted, seeded schedule* (failures at
//! their first `n` incarnations), so restart budgets, backoff and
//! escalation are all exercised deterministically.
//!
//! Determinism contract (pinned by `tests/supervise.rs`):
//!
//! * [`SoakCellReport::fingerprint`] is bit-identical across reruns
//!   with the same seed **and across worker-pool sizes** — it contains
//!   only schedule-independent facts: the scripted failure counts, the
//!   per-phase crawl accounting (static page partitioning makes it a
//!   pure function of the seeds), per-child final outcomes, and — for
//!   one-for-one cells, where no cross-child races exist — the full
//!   canonical supervision event log.
//! * All-for-one cells *do* race (which of two near-simultaneous
//!   failures triggers the collective restart is timing-dependent), so
//!   their fingerprints deliberately omit event details; correctness
//!   there is enforced by [`SoakCellReport::violations`]'s conservation
//!   identities, which hold on every schedule.
//!
//! The storm matrix, soak example (`examples/chaos_soak.rs`) and the
//! E-SOAK record in EXPERIMENTS.md all route through
//! [`run_soak_cell`].

use std::sync::Arc;
use std::time::Duration;

use faultsim::{FaultInjector, FaultStorm, RetryPolicy};
use parc_supervise::{ChildError, RestartPolicy, SupervisionReport, Supervisor};
use parc_util::rng::SplitMix64;
use parking_lot::Mutex;
use partask::TaskRuntime;
use pyjama::{Team, TeamError};
use websim::{ResilientConfig, ResilientCrawler, ResilientReport, ServerConfig, SimServer};

/// Restarts each child may use before escalation (`max_attempts - 1`).
pub const SOAK_RESTART_BUDGET: u32 = 2;

/// Pages in each phase's simulated page set.
const SOAK_PAGES: usize = 40;

/// Scripted failure count for `child` in the `storm` cell seeded
/// `seed`: the child fails its first `n` incarnations, then does real
/// work. The storm name is folded into the draw so different cells of
/// the same matrix exercise different schedules. Under one-for-one the
/// range `0..=budget+1` includes schedules that *escalate*; under
/// all-for-one escalation would cancel the whole cell at a racy point,
/// so schedules stay within budget there and escalation is exercised
/// by the one-for-one cells and unit tests.
#[must_use]
pub fn scripted_failures(seed: u64, storm: &str, child: u64, policy: RestartPolicy) -> u32 {
    let h = storm.bytes().fold(seed, |h, b| SplitMix64::mix(h ^ u64::from(b)));
    let r = SplitMix64::mix(h ^ (child + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let modulus = match policy {
        RestartPolicy::OneForOne => u64::from(SOAK_RESTART_BUDGET) + 2,
        RestartPolicy::AllForOne => u64::from(SOAK_RESTART_BUDGET) + 1,
    };
    u32::try_from(r % modulus).expect("modulus is tiny")
}

/// Everything one soak cell produced.
#[derive(Clone, Debug)]
pub struct SoakCellReport {
    /// Storm shape name.
    pub storm_name: &'static str,
    /// Supervision policy of the cell.
    pub policy: RestartPolicy,
    /// Cell seed (drives storm plans, page sets, scripted failures).
    pub seed: u64,
    /// Worker-pool size used (excluded from the fingerprint).
    pub workers: usize,
    /// Phases the storm had.
    pub phases: usize,
    /// Scripted failure counts per child (crawler, quicksort, pipeline).
    pub scripted: [u32; 3],
    /// The supervision run.
    pub supervision: SupervisionReport,
    /// Per-phase crawl accounting from the resilient crawler's final
    /// complete pass over the storm.
    pub crawl: Vec<ResilientReport>,
    /// Did the runtime drain to quiescence within its budget?
    pub drained: bool,
    /// Jobs still live when the drain budget expired (0 when drained).
    pub leftover: usize,
    /// Tasks spawned on the cell's runtime over its whole life.
    pub spawned: u64,
    /// Task bodies executed (== `spawned` at quiescence).
    pub executed: u64,
}

impl SoakCellReport {
    /// Expected number of restarts/budget charges for child `i` under
    /// one-for-one (where nothing interferes with the schedule).
    fn expected_charges(&self, i: usize) -> u32 {
        self.scripted[i].min(SOAK_RESTART_BUDGET)
    }

    /// Conservation and accounting violations; empty means the cell is
    /// sound. Checks hold on *every* schedule, including the racy
    /// all-for-one interleavings.
    #[must_use]
    pub fn violations(&self) -> Vec<String> {
        let mut bad = self.supervision.conservation_violations();
        let mut check = |ok: bool, msg: String| {
            if !ok {
                bad.push(msg);
            }
        };
        // Every spawned child accounted for, with the outcome its
        // scripted schedule demands.
        for (i, c) in self.supervision.children.iter().enumerate() {
            let should_escalate = self.scripted[i] > SOAK_RESTART_BUDGET;
            check(
                c.escalated == should_escalate,
                format!(
                    "{}: escalated={} but scripted {} failures against budget {}",
                    c.name, c.escalated, self.scripted[i], SOAK_RESTART_BUDGET
                ),
            );
            if should_escalate {
                check(
                    c.final_outcome().is_failure(),
                    format!("{}: escalated child must end in failure", c.name),
                );
            } else {
                check(
                    c.final_outcome() == parc_supervise::ChildOutcome::Completed,
                    format!("{}: expected completion, got {}", c.name, c.final_outcome().name()),
                );
            }
            if self.policy == RestartPolicy::OneForOne {
                check(
                    c.restarts == self.expected_charges(i),
                    format!(
                        "{}: one-for-one restarts {} != scripted {}",
                        c.name,
                        c.restarts,
                        self.expected_charges(i)
                    ),
                );
                check(
                    c.budget_used == self.expected_charges(i),
                    format!(
                        "{}: one-for-one budget_used {} != scripted {}",
                        c.name,
                        c.budget_used,
                        self.expected_charges(i)
                    ),
                );
            }
        }
        // The crawler's final pass covered the whole storm — unless
        // its scripted schedule escalated it, in which case no pass
        // ever completed and the slot must still be empty. Either way,
        // every recorded phase accounts each page exactly once.
        if self.scripted[0] > SOAK_RESTART_BUDGET {
            check(
                self.crawl.is_empty(),
                format!("escalated crawler still recorded {} phases", self.crawl.len()),
            );
        } else {
            check(
                self.crawl.len() == self.phases,
                format!("crawl covered {} of {} phases", self.crawl.len(), self.phases),
            );
        }
        for r in &self.crawl {
            check(
                r.fresh + r.stale + r.unavailable == r.pages.len(),
                format!(
                    "phase {}: {} fresh + {} stale + {} lost != {} pages",
                    r.epoch,
                    r.fresh,
                    r.stale,
                    r.unavailable,
                    r.pages.len()
                ),
            );
        }
        // Post-storm quiescence: no leaked tasks, no leaked threads.
        check(self.drained, format!("runtime failed to drain ({} leftover)", self.leftover));
        check(
            self.spawned == self.executed,
            format!("task conservation: spawned {} != executed {}", self.spawned, self.executed),
        );
        bad
    }

    /// Did every invariant hold?
    #[must_use]
    pub fn invariants_ok(&self) -> bool {
        self.violations().is_empty()
    }

    /// The deterministic facts of this cell as one canonical string —
    /// equal across same-seed reruns and across worker-pool sizes.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut s = format!(
            "cell {} {} seed {:#x}\nscripted {:?}\n",
            self.storm_name,
            self.policy.name(),
            self.seed,
            self.scripted
        );
        for r in &self.crawl {
            s.push_str(&format!(
                "phase {}: fresh {} stale {} shed {} denied {} lost {} attempts {} \
                 coverage {:.4} staleness {:.4}\n",
                r.epoch,
                r.fresh,
                r.stale,
                r.shed,
                r.breaker_denied,
                r.unavailable,
                r.attempts_total,
                r.coverage(),
                r.staleness(),
            ));
        }
        for c in &self.supervision.children {
            s.push_str(&format!("child {}: final {}", c.name, c.final_outcome().name()));
            if self.policy == RestartPolicy::OneForOne {
                s.push_str(&format!(
                    " incarnations {} restarts {} budget_used {} escalated {}",
                    c.incarnations, c.restarts, c.budget_used, c.escalated
                ));
            }
            s.push('\n');
        }
        if self.policy == RestartPolicy::OneForOne {
            s.push_str("events:\n");
            s.push_str(&self.supervision.event_log());
        }
        s
    }

    /// Mean crawl coverage across phases, in `[0, 1]`.
    #[must_use]
    pub fn mean_coverage(&self) -> f64 {
        if self.crawl.is_empty() {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let n = self.crawl.len() as f64;
        self.crawl.iter().map(ResilientReport::coverage).sum::<f64>() / n
    }

    /// Worst (lowest) per-phase coverage; 0 when no pass completed.
    #[must_use]
    pub fn worst_coverage(&self) -> f64 {
        if self.crawl.is_empty() {
            return 0.0;
        }
        self.crawl.iter().map(ResilientReport::coverage).fold(1.0, f64::min)
    }
}

/// Scripted-failure gate shared by all three child bodies.
fn scripted_gate(ctx: &parc_supervise::ChildCtx, scripted: u32) -> Result<(), ChildError> {
    if ctx.incarnation <= scripted {
        return Err(ChildError::Failed(format!(
            "soak: scripted failure {} of {}",
            ctx.incarnation, scripted
        )));
    }
    Ok(())
}

/// Run one cell: `storm` under `policy`, seeded `seed`, on pools of
/// `workers` threads. The cell owns its runtime and team and drains
/// them to quiescence before reporting.
#[must_use]
pub fn run_soak_cell(
    storm: &FaultStorm,
    policy: RestartPolicy,
    seed: u64,
    workers: usize,
) -> SoakCellReport {
    let rt = Arc::new(TaskRuntime::builder().workers(workers).build());
    let team = Arc::new(Team::new(workers));
    let phases = storm.phases.clone();
    let scripted = [
        scripted_failures(seed, storm.name, 0, policy),
        scripted_failures(seed, storm.name, 1, policy),
        scripted_failures(seed, storm.name, 2, policy),
    ];

    // Baselines for the pipeline child, computed before supervision:
    // the filter chain is deterministic, so each phase must reproduce
    // these hashes exactly.
    let pipeline_images = Arc::new(imaging::gen::generate_folder(phases.len(), 24, 32, seed));
    let pipeline_filters: Arc<[imaging::Filter2D]> = Arc::from(
        [
            imaging::Filter2D::Grayscale,
            imaging::Filter2D::Brighten(12),
            imaging::Filter2D::BoxBlur(1),
        ]
        .as_slice(),
    );
    let pipeline_expected: Arc<Vec<u64>> = Arc::new(
        pipeline_images
            .iter()
            .map(|img| imaging::apply_pipeline(&team, img, &pipeline_filters).content_hash())
            .collect(),
    );

    let crawl_slot: Arc<Mutex<Vec<ResilientReport>>> = Arc::new(Mutex::new(Vec::new()));
    let sup_name = format!("soak-{}-{}", storm.name, policy.name());
    let builder = Supervisor::builder(&sup_name)
        .policy(policy)
        .restart_policy(
            RetryPolicy::fixed(Duration::from_millis(1))
                .with_max_attempts(SOAK_RESTART_BUDGET + 1),
        )
        .backoff_seed(seed)
        .backoff_time_scale(0.05)
        .child("crawler", {
            let rt = Arc::clone(&rt);
            let phases = phases.clone();
            let slot = Arc::clone(&crawl_slot);
            let scripted = scripted[0];
            move |ctx| {
                scripted_gate(ctx, scripted)?;
                // A fresh crawler per incarnation: partial passes
                // interrupted by all-for-one cancellation are
                // discarded, so the recorded reports are always one
                // *complete* walk of the storm — a pure function of
                // the seeds.
                let mut crawler = ResilientCrawler::new(ResilientConfig {
                    connections: 4,
                    max_in_flight: 6,
                    retry: RetryPolicy::fixed(Duration::from_millis(2)).with_max_attempts(3),
                    breaker_threshold: 3,
                    breaker_cooldown: 4,
                    probe_successes: 2,
                });
                let mut reports = Vec::new();
                for phase in &phases {
                    if ctx.token.is_cancelled() {
                        return Err(ChildError::Cancelled);
                    }
                    let server = Arc::new(SimServer::with_faults(
                        ServerConfig {
                            pages: SOAK_PAGES,
                            time_scale: 2e-6,
                            seed,
                            ..ServerConfig::default()
                        },
                        FaultInjector::new(phase.plan.clone()),
                    ));
                    reports.push(crawler.crawl(
                        &rt,
                        &server,
                        phase.latency_factor,
                        phase.shed_budget_ms,
                    ));
                }
                *slot.lock() = reports;
                Ok(())
            }
        })
        .child("quicksort", {
            let rt = Arc::clone(&rt);
            let n_phases = phases.len();
            let scripted = scripted[1];
            move |ctx| {
                scripted_gate(ctx, scripted)?;
                for i in 0..n_phases {
                    if ctx.token.is_cancelled() {
                        return Err(ChildError::Cancelled);
                    }
                    let mut v = parsort::data::random(6_000, SplitMix64::mix(seed ^ i as u64));
                    let mut expected = v.clone();
                    expected.sort_unstable();
                    parsort::quicksort_partask(&rt, &mut v);
                    if v != expected {
                        return Err(ChildError::Failed(format!(
                            "quicksort verification failed in phase {i}"
                        )));
                    }
                }
                Ok(())
            }
        })
        .child("pipeline", {
            let team = Arc::clone(&team);
            let images = Arc::clone(&pipeline_images);
            let filters = Arc::clone(&pipeline_filters);
            let expected = Arc::clone(&pipeline_expected);
            let scripted = scripted[2];
            move |ctx| {
                scripted_gate(ctx, scripted)?;
                for (i, img) in images.iter().enumerate() {
                    if ctx.token.is_cancelled() {
                        return Err(ChildError::Cancelled);
                    }
                    let out = imaging::apply_pipeline(&team, img, &filters);
                    if out.content_hash() != expected[i] {
                        return Err(ChildError::Failed(format!(
                            "pipeline hash mismatch in phase {i}"
                        )));
                    }
                    // A cancellable pyjama region as the phase's
                    // cooperative cancellation point: members meet at
                    // the barrier, which observes the child token.
                    match team.try_parallel_cancellable(&ctx.token, |tctx| {
                        tctx.barrier();
                    }) {
                        Ok(()) => {}
                        Err(TeamError::Cancelled) => return Err(ChildError::Cancelled),
                        Err(other) => {
                            return Err(ChildError::Failed(format!(
                                "pipeline region failed: {other}"
                            )))
                        }
                    }
                }
                Ok(())
            }
        });
    let supervision = builder.run();

    drop((pipeline_images, pipeline_filters, pipeline_expected, team));
    let crawl = std::mem::take(&mut *crawl_slot.lock());
    let Ok(rt) = Arc::try_unwrap(rt) else {
        unreachable!("all supervised children joined; runtime uniquely owned")
    };
    let drain = rt.shutdown_graceful(Duration::from_secs(5));

    SoakCellReport {
        storm_name: storm.name,
        policy,
        seed,
        workers,
        phases: phases.len(),
        scripted,
        supervision,
        crawl,
        drained: drain.drained,
        leftover: drain.leftover,
        spawned: drain.stats.spawned,
        executed: drain.stats.executed,
    }
}

/// The full soak matrix: every storm shape × every restart policy.
#[must_use]
pub fn run_soak_matrix(seed: u64, workers: usize) -> Vec<SoakCellReport> {
    let mut cells = Vec::new();
    for storm in FaultStorm::all(seed) {
        for policy in [RestartPolicy::OneForOne, RestartPolicy::AllForOne] {
            cells.push(run_soak_cell(&storm, policy, seed, workers));
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cell_is_sound_and_deterministic() {
        faultsim::silence_injected_panics();
        let storm = FaultStorm::burst(0x50AC);
        let a = run_soak_cell(&storm, RestartPolicy::OneForOne, 0x50AC, 2);
        assert!(a.invariants_ok(), "violations: {:?}", a.violations());
        let b = run_soak_cell(&storm, RestartPolicy::OneForOne, 0x50AC, 4);
        assert!(b.invariants_ok(), "violations: {:?}", b.violations());
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "fingerprint must not depend on worker count"
        );
    }

    #[test]
    fn all_for_one_cell_is_sound() {
        faultsim::silence_injected_panics();
        let storm = FaultStorm::flapping(0xF1A9);
        let cell = run_soak_cell(&storm, RestartPolicy::AllForOne, 0xF1A9, 3);
        assert!(cell.invariants_ok(), "violations: {:?}", cell.violations());
        assert!(!cell.crawl.is_empty());
        assert!(cell.mean_coverage() > 0.0);
    }

    #[test]
    fn scripted_schedules_cover_escalation_only_under_one_for_one() {
        let mut saw_escalating = false;
        for seed in 0..64u64 {
            for storm in ["burst", "brownout", "flapping"] {
                for child in 0..3u64 {
                    let one = scripted_failures(seed, storm, child, RestartPolicy::OneForOne);
                    let all = scripted_failures(seed, storm, child, RestartPolicy::AllForOne);
                    assert!(one <= SOAK_RESTART_BUDGET + 1);
                    assert!(all <= SOAK_RESTART_BUDGET, "all-for-one must never escalate");
                    saw_escalating |= one > SOAK_RESTART_BUDGET;
                }
            }
        }
        assert!(saw_escalating, "some one-for-one schedule must escalate");
    }
}
