//! # softeng751 — the umbrella crate
//!
//! One roof over the whole reproduction of Giacaman & Sinnen's
//! research-infused parallel-programming course (IPDPSW 2014):
//!
//! * the PARC tool analogues — [`partask`] (Parallel Task) and
//!   [`pyjama`] (OpenMP-style directives), over the [`guievent`]
//!   event-dispatch substrate;
//! * the kernel and application substrates the ten student projects
//!   need — [`kernels`], [`imaging`], [`docsearch`], [`websim`],
//!   [`taskcol`], [`memmodel`], [`parsort`];
//! * the course model itself — [`course`];
//! * and, in [`catalogue`], the **ten projects of Section IV-C** as
//!   runnable scenario drivers: each produces a structured
//!   [`catalogue::ProjectReport`] exercising its subsystem end to end.
//!
//! ```
//! use softeng751::catalogue::{self, ProjectId};
//!
//! let engines = catalogue::Engines::small();
//! let report = catalogue::run_project(ProjectId::ParallelQuicksort, &engines);
//! assert!(report.ok);
//! ```

pub mod catalogue;
pub mod prelude;
pub mod soak;

pub use catalogue::{run_project, Engines, ProjectId, ProjectReport};
pub use soak::{run_soak_cell, run_soak_matrix, SoakCellReport};

// Re-export the subsystem crates under one roof.
pub use course;
pub use parc_supervise;
pub use docsearch;
pub use faultsim;
pub use guievent;
pub use imaging;
pub use kernels;
pub use memmodel;
pub use parc_inspect;
pub use parc_trace;
pub use parc_util;
pub use parsort;
pub use partask;
pub use pyjama;
pub use taskcol;
pub use websim;
