//! End-to-end tests of parallel regions and worksharing constructs.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pyjama::{
    MapMerge, MaxRed, MinRed, Reduction, Schedule, SetUnion, SumRed, Team, TopK, VecConcat,
};

#[test]
fn region_runs_on_every_thread() {
    for n in 1..=4 {
        let team = Team::new(n);
        let seen = Mutex::new(HashSet::new());
        team.parallel(|ctx| {
            assert_eq!(ctx.num_threads(), n);
            seen.lock().insert(ctx.thread_num());
        });
        assert_eq!(seen.into_inner(), (0..n).collect::<HashSet<_>>());
    }
}

#[test]
fn regions_are_reusable() {
    let team = Team::new(3);
    let counter = AtomicUsize::new(0);
    for _ in 0..20 {
        team.parallel(|_ctx| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert_eq!(counter.load(Ordering::Relaxed), 60);
}

#[test]
fn caller_is_thread_zero() {
    let team = Team::new(2);
    let caller = std::thread::current().id();
    let zero_thread = Mutex::new(None);
    team.parallel(|ctx| {
        if ctx.thread_num() == 0 {
            *zero_thread.lock() = Some(std::thread::current().id());
        }
    });
    assert_eq!(zero_thread.into_inner(), Some(caller));
}

#[test]
fn captures_by_reference_work() {
    let team = Team::new(4);
    let data: Vec<u64> = (0..1000).collect();
    let total = AtomicUsize::new(0);
    team.parallel(|ctx| {
        // `data` and `total` are borrowed, not moved — the OpenMP
        // shared-variable model.
        ctx.pfor(0..data.len(), Schedule::Static, |i| {
            total.fetch_add(data[i] as usize, Ordering::Relaxed);
        });
    });
    assert_eq!(total.load(Ordering::Relaxed), 499_500);
}

#[test]
fn pfor_covers_all_iterations_once_for_every_schedule() {
    for schedule in [
        Schedule::Static,
        Schedule::StaticChunk(7),
        Schedule::Dynamic(5),
        Schedule::Guided(3),
    ] {
        let team = Team::new(3);
        let hits: Vec<AtomicUsize> = (0..200).map(|_| AtomicUsize::new(0)).collect();
        team.parallel(|ctx| {
            ctx.pfor(0..hits.len(), schedule, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "iteration {i} under {schedule:?}"
            );
        }
    }
}

#[test]
fn multiple_pfors_in_one_region() {
    let team = Team::new(2);
    let a: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
    let b: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
    team.parallel(|ctx| {
        ctx.pfor(0..50, Schedule::Dynamic(4), |i| {
            a[i].fetch_add(1, Ordering::Relaxed);
        });
        // Second loop reads the first loop's results: the implicit
        // barrier between them makes this safe.
        ctx.pfor(0..50, Schedule::Dynamic(4), |i| {
            b[i].fetch_add(a[i].load(Ordering::Relaxed), Ordering::Relaxed);
        });
    });
    assert!(b.iter().all(|x| x.load(Ordering::Relaxed) == 1));
}

#[test]
fn barrier_synchronises_phases() {
    let team = Team::new(4);
    let phase1 = AtomicUsize::new(0);
    let failures = AtomicUsize::new(0);
    team.parallel(|ctx| {
        phase1.fetch_add(1, Ordering::SeqCst);
        ctx.barrier();
        // After the barrier every thread must see all 4 increments.
        if phase1.load(Ordering::SeqCst) != 4 {
            failures.fetch_add(1, Ordering::SeqCst);
        }
    });
    assert_eq!(failures.load(Ordering::SeqCst), 0);
}

#[test]
fn master_runs_only_on_thread_zero() {
    let team = Team::new(4);
    let count = AtomicUsize::new(0);
    let tid = Mutex::new(None);
    team.parallel(|ctx| {
        ctx.master(|| {
            count.fetch_add(1, Ordering::Relaxed);
            *tid.lock() = Some(ctx.thread_num());
        });
    });
    assert_eq!(count.load(Ordering::Relaxed), 1);
    assert_eq!(tid.into_inner(), Some(0));
}

#[test]
fn single_runs_exactly_once_per_construct() {
    let team = Team::new(4);
    let first = AtomicUsize::new(0);
    let second = AtomicUsize::new(0);
    team.parallel(|ctx| {
        ctx.single(|| {
            first.fetch_add(1, Ordering::Relaxed);
        });
        ctx.single(|| {
            second.fetch_add(1, Ordering::Relaxed);
        });
    });
    assert_eq!(first.load(Ordering::Relaxed), 1);
    assert_eq!(second.load(Ordering::Relaxed), 1);
}

#[test]
fn single_implies_barrier() {
    let team = Team::new(4);
    let value = AtomicUsize::new(0);
    let wrong = AtomicUsize::new(0);
    team.parallel(|ctx| {
        ctx.single(|| {
            value.store(42, Ordering::SeqCst);
        });
        // Every thread must observe the single's side effect.
        if value.load(Ordering::SeqCst) != 42 {
            wrong.fetch_add(1, Ordering::SeqCst);
        }
    });
    assert_eq!(wrong.load(Ordering::SeqCst), 0);
}

#[test]
fn critical_sections_are_exclusive() {
    let team = Team::new(4);
    // Non-atomic counter protected only by the critical section: if
    // exclusion failed, updates would be lost.
    struct Wrap(std::cell::UnsafeCell<u64>);
    unsafe impl Sync for Wrap {}
    impl Wrap {
        /// SAFETY: caller must guarantee mutual exclusion.
        unsafe fn add_one(&self) {
            *self.0.get() += 1;
        }
        fn read(&mut self) -> u64 {
            *self.0.get_mut()
        }
    }
    let mut wrapped = Wrap(std::cell::UnsafeCell::new(0));
    let shared = &wrapped;
    team.parallel(move |ctx| {
        for _ in 0..1000 {
            ctx.critical("counter", || {
                // SAFETY: mutual exclusion provided by `critical`.
                unsafe {
                    shared.add_one();
                }
            });
        }
    });
    assert_eq!(wrapped.read(), 4000);
}

#[test]
fn differently_named_criticals_do_not_exclude() {
    // Just a smoke test: two names, no deadlock, correct counts.
    let team = Team::new(2);
    let a = AtomicUsize::new(0);
    let b = AtomicUsize::new(0);
    team.parallel(|ctx| {
        for _ in 0..100 {
            ctx.critical("a", || {
                a.fetch_add(1, Ordering::Relaxed);
            });
            ctx.critical("b", || {
                b.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(a.load(Ordering::Relaxed), 200);
    assert_eq!(b.load(Ordering::Relaxed), 200);
}

#[test]
fn sections_each_run_once() {
    let team = Team::new(3);
    let hits: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
    team.parallel(|ctx| {
        let s0 = || {
            hits[0].fetch_add(1, Ordering::Relaxed);
        };
        let s1 = || {
            hits[1].fetch_add(1, Ordering::Relaxed);
        };
        let s2 = || {
            hits[2].fetch_add(1, Ordering::Relaxed);
        };
        let s3 = || {
            hits[3].fetch_add(1, Ordering::Relaxed);
        };
        let s4 = || {
            hits[4].fetch_add(1, Ordering::Relaxed);
        };
        ctx.sections(&[&s0, &s1, &s2, &s3, &s4]);
    });
    for h in &hits {
        assert_eq!(h.load(Ordering::Relaxed), 1);
    }
}

#[test]
fn scalar_reductions_match_sequential() {
    let team = Team::new(4);
    let data: Vec<u64> = (1..=1000).collect();
    let sum = team.par_reduce(0..data.len(), Schedule::Dynamic(32), &SumRed, |i| data[i]);
    assert_eq!(sum, 500_500);
    let min = team.par_reduce(0..data.len(), Schedule::Static, &MinRed, |i| data[i] as i64);
    assert_eq!(min, 1);
    let max = team.par_reduce(0..data.len(), Schedule::Guided(8), &MaxRed, |i| {
        data[i] as i64
    });
    assert_eq!(max, 1000);
}

#[test]
fn reduce_returns_same_value_on_all_threads() {
    let team = Team::new(4);
    let results = Mutex::new(Vec::new());
    team.parallel(|ctx| {
        let local = ctx.pfor_reduce(0..100, Schedule::Static, &SumRed, |i| i as u64);
        results.lock().push(local);
    });
    let results = results.into_inner();
    assert_eq!(results.len(), 4);
    assert!(results.iter().all(|&r| r == 4950));
}

#[test]
fn vec_concat_reduction_static_order_is_sequential() {
    let team = Team::new(3);
    let out: Vec<u32> = team.par_reduce(0..30, Schedule::Static, &VecConcat::new(), |i| {
        vec![i as u32]
    });
    assert_eq!(out, (0..30).collect::<Vec<_>>());
}

#[test]
fn set_union_reduction() {
    let team = Team::new(4);
    let set: HashSet<u32> = team.par_reduce(0..100, Schedule::Dynamic(7), &SetUnion::new(), |i| {
        let mut s = HashSet::new();
        s.insert((i % 10) as u32);
        s
    });
    assert_eq!(set, (0..10).collect());
}

#[test]
fn map_merge_word_count_style() {
    let team = Team::new(3);
    let words = ["a", "b", "a", "c", "b", "a"];
    let red = MapMerge::new(|x: u32, y: u32| x + y);
    let counts: HashMap<&str, u32> = team.par_reduce(0..600, Schedule::Dynamic(16), &red, |i| {
        let mut m = HashMap::new();
        m.insert(words[i % words.len()], 1);
        m
    });
    assert_eq!(counts["a"], 300);
    assert_eq!(counts["b"], 200);
    assert_eq!(counts["c"], 100);
}

#[test]
fn top_k_reduction() {
    let team = Team::new(2);
    let top = team.par_reduce(0..1000, Schedule::Dynamic(50), &TopK::new(3), |i| {
        vec![(i * 7919) % 1000]
    });
    let mut expected: Vec<usize> = (0..1000).map(|i| (i * 7919) % 1000).collect();
    expected.sort_unstable_by(|a, b| b.cmp(a));
    expected.truncate(3);
    assert_eq!(top, expected);
}

#[test]
fn nested_parallel_serialises() {
    let team = Team::new(3);
    let inner_sizes = Mutex::new(Vec::new());
    team.parallel(|_outer| {
        team.parallel(|inner| {
            inner_sizes.lock().push(inner.num_threads());
        });
    });
    let sizes = inner_sizes.into_inner();
    // Each of the 3 outer threads ran the inner region serially.
    assert_eq!(sizes.len(), 3);
    assert!(sizes.iter().all(|&s| s == 1));
}

#[test]
fn team_of_one_works() {
    let team = Team::new(1);
    let sum = team.par_sum(0..100, Schedule::Dynamic(8), |i| i as u64);
    assert_eq!(sum, 4950);
}

#[test]
fn teams_shareable_across_threads() {
    let team = Team::new(2);
    let team2 = team.clone();
    let j = std::thread::spawn(move || team2.par_sum(0..10, Schedule::Static, |i| i as u64));
    let a = team.par_sum(0..10, Schedule::Static, |i| i as u64);
    let b = j.join().unwrap();
    assert_eq!(a, 45);
    assert_eq!(b, 45);
}

#[test]
fn skewed_workload_dynamic_balances_better_than_static() {
    // Behavioural check, not timing: count iterations executed per
    // thread under both schedules for a skewed loop. Dynamic spreads
    // late heavy chunks; static pins them to the last thread. We only
    // assert the *assignment* property that makes dynamic win.
    let team = Team::new(4);
    let per_thread_static: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
    team.parallel(|ctx| {
        ctx.pfor(0..100, Schedule::Static, |i| {
            // Work proportional to i lands on the last thread.
            per_thread_static[ctx.thread_num()].fetch_add(i, Ordering::Relaxed);
        });
    });
    let static_max = per_thread_static
        .iter()
        .map(|a| a.load(Ordering::Relaxed))
        .max()
        .unwrap();
    let total: usize = (0..100).sum();
    // Under static, the top thread holds the top quartile of indices:
    // (75..100).sum() = 2187 of 4950 ≈ 44%.
    assert!(static_max * 100 / total >= 40);
}

#[test]
fn arc_shared_state_usable_in_regions() {
    let team = Team::new(2);
    let shared = Arc::new(AtomicUsize::new(0));
    let shared2 = Arc::clone(&shared);
    team.parallel(move |ctx| {
        ctx.pfor(0..10, Schedule::Static, |_| {
            shared2.fetch_add(1, Ordering::Relaxed);
        });
    });
    assert_eq!(shared.load(Ordering::Relaxed), 10);
}

#[test]
fn reduction_trait_object_usable() {
    // Reductions are usable behind references (dyn-compatible enough
    // for generic code paths that take &R).
    let team = Team::new(2);
    fn run<R: Reduction<u64> + Sync>(team: &Team, red: &R) -> u64 {
        team.par_reduce(1..6, Schedule::Static, red, |i| i as u64)
    }
    assert_eq!(run(&team, &SumRed), 15);
    assert_eq!(run(&team, &pyjama::ProdRed), 120);
}

#[test]
fn parallel_with_subteam_runs_fewer_threads() {
    let team = Team::new(4);
    let seen = Mutex::new(HashSet::new());
    team.parallel_with(2, |ctx| {
        assert_eq!(ctx.num_threads(), 2);
        seen.lock().insert(ctx.thread_num());
    });
    assert_eq!(seen.into_inner(), HashSet::from([0, 1]));
    // Full regions still work afterwards.
    let count = AtomicUsize::new(0);
    team.parallel(|_| {
        count.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(count.load(Ordering::Relaxed), 4);
}

#[test]
fn parallel_with_clamps_oversized_request() {
    let team = Team::new(2);
    let count = AtomicUsize::new(0);
    team.parallel_with(99, |ctx| {
        assert_eq!(ctx.num_threads(), 2);
        count.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(count.load(Ordering::Relaxed), 2);
}

#[test]
fn subteam_reductions_and_loops_work() {
    let team = Team::new(4);
    let total = AtomicUsize::new(0);
    team.parallel_with(3, |ctx| {
        ctx.pfor(0..100, Schedule::Dynamic(8), |i| {
            total.fetch_add(i, Ordering::Relaxed);
        });
    });
    assert_eq!(total.load(Ordering::Relaxed), 4950);
}

#[test]
fn ordered_regions_execute_in_iteration_order() {
    let team = Team::new(4);
    let log = Mutex::new(Vec::new());
    team.parallel(|ctx| {
        ctx.pfor_ordered(0..50, Schedule::Static, |i, gate| {
            // Unordered part: arbitrary interleaving.
            std::hint::black_box(i * i);
            gate.run(i, || {
                log.lock().push(i);
            });
        });
    });
    assert_eq!(log.into_inner(), (0..50).collect::<Vec<_>>());
}

#[test]
fn ordered_with_dynamic_schedule() {
    let team = Team::new(3);
    let log = Mutex::new(Vec::new());
    team.parallel(|ctx| {
        ctx.pfor_ordered(5..35, Schedule::Dynamic(4), |i, gate| {
            gate.run(i, || log.lock().push(i));
        });
    });
    assert_eq!(log.into_inner(), (5..35).collect::<Vec<_>>());
}

#[test]
fn ordered_gate_returns_value() {
    let team = Team::new(2);
    let total = AtomicUsize::new(0);
    team.parallel(|ctx| {
        ctx.pfor_ordered(0..10, Schedule::Static, |i, gate| {
            let doubled = gate.run(i, || i * 2);
            total.fetch_add(doubled, Ordering::Relaxed);
        });
    });
    assert_eq!(total.load(Ordering::Relaxed), 90);
}
