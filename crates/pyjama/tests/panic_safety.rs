//! Regression tests for panic-safe teams (barrier poisoning).
//!
//! The failure mode these guard against: a team member panics before
//! reaching a barrier, and every sibling waits forever for an arrival
//! that cannot happen. With poisoning, the siblings unblock, the
//! region reports `TeamError::MemberPanicked`, and the team survives
//! for subsequent regions.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use pyjama::{Schedule, SumRed, Team, TeamError};

/// Run `f` on a fresh thread and require it to finish within
/// `timeout` — turns a would-be deadlock into a test failure.
fn within<T: Send + 'static>(timeout: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let join = thread::spawn(move || {
        let _ = tx.send(f());
    });
    let out = rx
        .recv_timeout(timeout)
        .expect("operation deadlocked: did not finish within the timeout");
    join.join().expect("driver thread panicked");
    out
}

#[test]
fn panicking_member_unblocks_barrier_waiters() {
    let err = within(Duration::from_secs(10), || {
        let team = Team::new(4);
        team.try_parallel(|ctx| {
            if ctx.thread_num() == 2 {
                panic!("member 2 exploded");
            }
            // Without poisoning, the three survivors would block here
            // forever waiting for member 2.
            ctx.barrier();
        })
    });
    assert_eq!(
        err,
        Err(TeamError::MemberPanicked {
            member: 2,
            payload: "member 2 exploded".to_string(),
        })
    );
}

#[test]
fn team_survives_a_poisoned_region() {
    within(Duration::from_secs(10), || {
        let team = Team::new(3);
        let err = team.try_parallel(|ctx| {
            if ctx.thread_num() == 1 {
                panic!("transient");
            }
            ctx.barrier();
        });
        assert!(matches!(err, Err(TeamError::MemberPanicked { member: 1, .. })));
        // The worker that panicked is still alive and the next region
        // runs on the full team.
        let hits = AtomicUsize::new(0);
        team.parallel(|_ctx| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        let sum = team.par_sum(0..100, Schedule::Static, |i| i as u64);
        assert_eq!(sum, 4950);
    });
}

#[test]
fn reduction_region_with_panicking_member_errors_cleanly() {
    within(Duration::from_secs(10), || {
        let team = Team::new(4);
        let err = team.try_parallel(|ctx| {
            let _ = ctx.pfor_reduce(0..1000, Schedule::Static, &SumRed, |i| {
                assert!(i != 500, "poisoned element");
                i as u64
            });
        });
        // The panicking member's partial is dropped (never combined);
        // the survivors unblock at the reduction barrier and the
        // region reports the root cause instead of deadlocking or
        // double-panicking on the missing partial.
        assert!(matches!(err, Err(TeamError::MemberPanicked { .. })));
    });
}

#[test]
fn ordered_gate_unblocks_when_predecessor_panics() {
    within(Duration::from_secs(10), || {
        let team = Team::new(3);
        let err = team.try_parallel(|ctx| {
            ctx.pfor_ordered(0..30, Schedule::Static, |i, gate| {
                assert!(i != 0, "iteration 0 dies before its turn completes");
                gate.run(i, || {});
            });
        });
        // Successors spin on iteration 0's turn; the poison check in
        // the gate's spin loop converts that into a clean unwind.
        assert!(matches!(err, Err(TeamError::MemberPanicked { .. })));
    });
}

#[test]
fn thread_zero_panic_is_reported_not_propagated() {
    let err = within(Duration::from_secs(10), || {
        let team = Team::new(2);
        team.try_parallel(|ctx| {
            if ctx.thread_num() == 0 {
                panic!("caller-side failure");
            }
            ctx.barrier();
        })
    });
    assert_eq!(
        err,
        Err(TeamError::MemberPanicked {
            member: 0,
            payload: "caller-side failure".to_string(),
        })
    );
}

#[test]
fn first_panic_is_the_reported_root_cause() {
    within(Duration::from_secs(10), || {
        let team = Team::new(4);
        let err = team.try_parallel(|ctx| {
            if ctx.thread_num() == 3 {
                panic!("root cause");
            }
            // Everyone else reaches the barrier and unwinds via the
            // poison cascade — none of those unwinds may overwrite the
            // recorded root cause.
            ctx.barrier();
        });
        assert_eq!(
            err,
            Err(TeamError::MemberPanicked {
                member: 3,
                payload: "root cause".to_string(),
            })
        );
    });
}

#[test]
#[should_panic(expected = "team member")]
fn parallel_propagates_member_panic() {
    let team = Team::new(2);
    team.parallel(|ctx| {
        if ctx.thread_num() == 1 {
            panic!("worker failure");
        }
        ctx.barrier();
    });
}

#[test]
fn single_threaded_team_reports_its_own_panic() {
    let team = Team::new(1);
    let err = team.try_parallel(|_ctx| {
        panic!("solo failure");
    });
    assert_eq!(
        err,
        Err(TeamError::MemberPanicked {
            member: 0,
            payload: "solo failure".to_string(),
        })
    );
    // And the team still works afterwards.
    assert_eq!(team.par_sum(0..10, Schedule::Static, |i| i as u64), 45);
}

#[test]
fn nested_serial_region_reports_panic_without_poisoning_outer() {
    within(Duration::from_secs(10), || {
        let team = Team::new(2);
        let nested_errs = AtomicUsize::new(0);
        let outer = team.try_parallel(|ctx| {
            // Nested regions serialise; a panic inside one is contained
            // by the nested try_parallel and the outer region proceeds.
            let nested = ctx.thread_num(); // silence unused ctx warning paths
            let team2 = Team::new(1);
            let err = team2.try_parallel(|_| panic!("inner failure {nested}"));
            if err.is_err() {
                nested_errs.fetch_add(1, Ordering::Relaxed);
            }
            ctx.barrier();
        });
        assert_eq!(outer, Ok(()));
        assert_eq!(nested_errs.load(Ordering::Relaxed), 2);
    });
}
