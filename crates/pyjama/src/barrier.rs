//! A reusable sense-reversing barrier.
//!
//! Built from a mutex and condvar (the classic central barrier from
//! the parallel-programming curriculum the course teaches in weeks
//! 1–5). One barrier instance lives in each region's shared state and
//! is reused by every `barrier()` call and implicit construct barrier
//! in that region.

use parking_lot::{Condvar, Mutex};

struct State {
    arrived: usize,
    generation: u64,
}

/// Reusable barrier for a fixed number of participants.
pub struct Barrier {
    n: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl Barrier {
    /// Barrier for `n` participants (`n ≥ 1`).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        Self {
            n,
            state: Mutex::new(State {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of participants.
    #[must_use]
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Block until all `n` participants have called `wait` for this
    /// generation. Returns `true` on exactly one participant (the
    /// last to arrive), like `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        if self.n == 1 {
            return true;
        }
        let mut st = self.state.lock();
        let gen = st.generation;
        st.arrived += 1;
        if st.arrived == self.n {
            st.arrived = 0;
            st.generation += 1;
            drop(st);
            self.cv.notify_all();
            true
        } else {
            while st.generation == gen {
                self.cv.wait(&mut st);
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn single_participant_never_blocks() {
        let b = Barrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn all_threads_reach_each_phase_together() {
        let n = 4;
        let b = Arc::new(Barrier::new(n));
        let phase = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..n {
            let b = Arc::clone(&b);
            let phase = Arc::clone(&phase);
            joins.push(thread::spawn(move || {
                for expected in 0..50 {
                    // Everyone must observe the phase value of the
                    // current round before anyone advances it.
                    assert_eq!(phase.load(Ordering::SeqCst), expected);
                    if b.wait() {
                        phase.fetch_add(1, Ordering::SeqCst);
                    }
                    b.wait();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(phase.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        let n = 3;
        let b = Arc::new(Barrier::new(n));
        let leaders = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..n {
            let b = Arc::clone(&b);
            let leaders = Arc::clone(&leaders);
            joins.push(thread::spawn(move || {
                for _ in 0..100 {
                    if b.wait() {
                        leaders.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::Relaxed), 100);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = Barrier::new(0);
    }
}
