//! A reusable sense-reversing barrier.
//!
//! Built from a mutex and condvar (the classic central barrier from
//! the parallel-programming curriculum the course teaches in weeks
//! 1–5). One barrier instance lives in each region's shared state and
//! is reused by every `barrier()` call and implicit construct barrier
//! in that region.

use parking_lot::{Condvar, Mutex};

/// Error returned by [`Barrier::try_wait`] once the barrier has been
/// [poisoned](Barrier::poison): some participant cannot arrive (it
/// panicked), so waiting for it would deadlock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierPoisoned;

struct State {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

/// Reusable barrier for a fixed number of participants.
pub struct Barrier {
    n: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl Barrier {
    /// Barrier for `n` participants (`n ≥ 1`).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        Self {
            n,
            state: Mutex::new(State {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of participants.
    #[must_use]
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Block until all `n` participants have called `wait` for this
    /// generation. Returns `true` on exactly one participant (the
    /// last to arrive), like `std::sync::Barrier`'s leader flag.
    ///
    /// Panics if the barrier has been [poisoned](Barrier::poison);
    /// callers that need to observe poisoning gracefully should use
    /// [`Barrier::try_wait`].
    pub fn wait(&self) -> bool {
        self.try_wait()
            .expect("barrier poisoned: a participant panicked and cannot arrive")
    }

    /// Like [`Barrier::wait`], but returns `Err(BarrierPoisoned)`
    /// instead of blocking forever (or panicking) when the barrier is
    /// — or becomes, while this thread waits — poisoned.
    pub fn try_wait(&self) -> Result<bool, BarrierPoisoned> {
        let mut st = self.state.lock();
        if st.poisoned {
            return Err(BarrierPoisoned);
        }
        if self.n == 1 {
            return Ok(true);
        }
        let gen = st.generation;
        st.arrived += 1;
        if st.arrived == self.n {
            st.arrived = 0;
            st.generation += 1;
            drop(st);
            self.cv.notify_all();
            Ok(true)
        } else {
            while st.generation == gen && !st.poisoned {
                self.cv.wait(&mut st);
            }
            if st.generation == gen {
                // Woken by poisoning, not by the last arrival.
                Err(BarrierPoisoned)
            } else {
                Ok(false)
            }
        }
    }

    /// Permanently poison the barrier: every current and future
    /// waiter observes `Err(BarrierPoisoned)` from
    /// [`Barrier::try_wait`]. Called when a participant panics and
    /// will therefore never arrive.
    pub fn poison(&self) {
        self.state.lock().poisoned = true;
        self.cv.notify_all();
    }

    /// Whether the barrier has been poisoned.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.state.lock().poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn single_participant_never_blocks() {
        let b = Barrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn all_threads_reach_each_phase_together() {
        let n = 4;
        let b = Arc::new(Barrier::new(n));
        let phase = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..n {
            let b = Arc::clone(&b);
            let phase = Arc::clone(&phase);
            joins.push(thread::spawn(move || {
                for expected in 0..50 {
                    // Everyone must observe the phase value of the
                    // current round before anyone advances it.
                    assert_eq!(phase.load(Ordering::SeqCst), expected);
                    if b.wait() {
                        phase.fetch_add(1, Ordering::SeqCst);
                    }
                    b.wait();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(phase.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        let n = 3;
        let b = Arc::new(Barrier::new(n));
        let leaders = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..n {
            let b = Arc::clone(&b);
            let leaders = Arc::clone(&leaders);
            joins.push(thread::spawn(move || {
                for _ in 0..100 {
                    if b.wait() {
                        leaders.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::Relaxed), 100);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = Barrier::new(0);
    }

    #[test]
    fn poison_wakes_current_waiters() {
        let b = Arc::new(Barrier::new(3));
        let mut joins = Vec::new();
        for _ in 0..2 {
            let b = Arc::clone(&b);
            joins.push(thread::spawn(move || b.try_wait()));
        }
        // Give both waiters time to block, then poison instead of
        // arriving as the third participant.
        thread::sleep(std::time::Duration::from_millis(20));
        b.poison();
        for j in joins {
            assert_eq!(j.join().unwrap(), Err(BarrierPoisoned));
        }
    }

    #[test]
    fn poisoned_barrier_rejects_future_waiters() {
        let b = Barrier::new(2);
        b.poison();
        assert!(b.is_poisoned());
        assert_eq!(b.try_wait(), Err(BarrierPoisoned));
        // Even the degenerate single-participant barrier reports it.
        let solo = Barrier::new(1);
        assert_eq!(solo.try_wait(), Ok(true));
        solo.poison();
        assert_eq!(solo.try_wait(), Err(BarrierPoisoned));
    }

    #[test]
    #[should_panic(expected = "barrier poisoned")]
    fn wait_panics_after_poison() {
        let b = Barrier::new(2);
        b.poison();
        let _ = b.wait();
    }
}
