//! Reductions — scalar and *object-oriented*.
//!
//! OpenMP specifies "a number of reductions that may be applied on a
//! limited set of data types" (scalars with `+`, `*`, `min`, `&`, …).
//! SoftEng 751 **project 5** asked students to design the richer
//! reduction space an object-oriented language invites — "for example
//! merging collections". This module reproduces both halves:
//!
//! * scalar reductions matching OpenMP's built-in operator list
//!   ([`SumRed`], [`ProdRed`], [`MinRed`], [`MaxRed`], [`BitAndRed`],
//!   [`BitOrRed`], [`BitXorRed`], [`AndRed`], [`OrRed`]);
//! * object-oriented reductions over collections ([`VecConcat`],
//!   [`SetUnion`], [`MapMerge`], [`TopK`]) and a fully custom
//!   [`FnReduction`].
//!
//! A [`Reduction`] must be **associative** with a left/right identity;
//! combining order across threads is unspecified, so non-commutative
//! reductions are only deterministic per-thread-count when the
//! schedule is deterministic too (pyjama combines partials in thread
//! order, which keeps `VecConcat` under `Schedule::Static` fully
//! deterministic — the property tests pin this down).

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::marker::PhantomData;

/// An associative combine with identity, used by
/// [`crate::Ctx::pfor_reduce`].
pub trait Reduction<T> {
    /// The identity element (`0` for `+`, empty vec for concat, …).
    fn identity(&self) -> T;
    /// Combine two partial results. Must be associative, with
    /// [`Reduction::identity`] as identity.
    fn combine(&self, a: T, b: T) -> T;
    /// Fold one mapped item into an accumulator. Defaults to
    /// `combine`; collections override it to avoid quadratic rebuilds.
    fn fold(&self, acc: T, item: T) -> T {
        self.combine(acc, item)
    }
}

// ---------------------------------------------------------------------
// Scalar reductions (the OpenMP built-in set)
// ---------------------------------------------------------------------

/// `reduction(+)` — addition.
#[derive(Clone, Copy, Debug, Default)]
pub struct SumRed;

/// `reduction(*)` — multiplication.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProdRed;

/// `reduction(min)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinRed;

/// `reduction(max)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxRed;

/// `reduction(&)` — bitwise and.
#[derive(Clone, Copy, Debug, Default)]
pub struct BitAndRed;

/// `reduction(|)` — bitwise or.
#[derive(Clone, Copy, Debug, Default)]
pub struct BitOrRed;

/// `reduction(^)` — bitwise xor.
#[derive(Clone, Copy, Debug, Default)]
pub struct BitXorRed;

/// `reduction(&&)` — logical and.
#[derive(Clone, Copy, Debug, Default)]
pub struct AndRed;

/// `reduction(||)` — logical or.
#[derive(Clone, Copy, Debug, Default)]
pub struct OrRed;

macro_rules! impl_arith_reductions {
    ($($ty:ty),*) => {$(
        impl Reduction<$ty> for SumRed {
            fn identity(&self) -> $ty { 0 as $ty }
            fn combine(&self, a: $ty, b: $ty) -> $ty { a + b }
        }
        impl Reduction<$ty> for ProdRed {
            fn identity(&self) -> $ty { 1 as $ty }
            fn combine(&self, a: $ty, b: $ty) -> $ty { a * b }
        }
    )*};
}

impl_arith_reductions!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_int_minmax {
    ($($ty:ty),*) => {$(
        impl Reduction<$ty> for MinRed {
            fn identity(&self) -> $ty { <$ty>::MAX }
            fn combine(&self, a: $ty, b: $ty) -> $ty { a.min(b) }
        }
        impl Reduction<$ty> for MaxRed {
            fn identity(&self) -> $ty { <$ty>::MIN }
            fn combine(&self, a: $ty, b: $ty) -> $ty { a.max(b) }
        }
    )*};
}

impl_int_minmax!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Reduction<f64> for MinRed {
    fn identity(&self) -> f64 {
        f64::INFINITY
    }
    fn combine(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }
}

impl Reduction<f64> for MaxRed {
    fn identity(&self) -> f64 {
        f64::NEG_INFINITY
    }
    fn combine(&self, a: f64, b: f64) -> f64 {
        a.max(b)
    }
}

impl Reduction<f32> for MinRed {
    fn identity(&self) -> f32 {
        f32::INFINITY
    }
    fn combine(&self, a: f32, b: f32) -> f32 {
        a.min(b)
    }
}

impl Reduction<f32> for MaxRed {
    fn identity(&self) -> f32 {
        f32::NEG_INFINITY
    }
    fn combine(&self, a: f32, b: f32) -> f32 {
        a.max(b)
    }
}

macro_rules! impl_bitwise {
    ($($ty:ty),*) => {$(
        impl Reduction<$ty> for BitAndRed {
            fn identity(&self) -> $ty { !0 }
            fn combine(&self, a: $ty, b: $ty) -> $ty { a & b }
        }
        impl Reduction<$ty> for BitOrRed {
            fn identity(&self) -> $ty { 0 }
            fn combine(&self, a: $ty, b: $ty) -> $ty { a | b }
        }
        impl Reduction<$ty> for BitXorRed {
            fn identity(&self) -> $ty { 0 }
            fn combine(&self, a: $ty, b: $ty) -> $ty { a ^ b }
        }
    )*};
}

impl_bitwise!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Reduction<bool> for AndRed {
    fn identity(&self) -> bool {
        true
    }
    fn combine(&self, a: bool, b: bool) -> bool {
        a && b
    }
}

impl Reduction<bool> for OrRed {
    fn identity(&self) -> bool {
        false
    }
    fn combine(&self, a: bool, b: bool) -> bool {
        a || b
    }
}

// ---------------------------------------------------------------------
// Object-oriented reductions (project 5)
// ---------------------------------------------------------------------

/// Concatenate `Vec`s. With `Schedule::Static` the combined order is
/// the sequential order (partials are combined in thread order and
/// static blocks are contiguous).
#[derive(Clone, Copy, Debug, Default)]
pub struct VecConcat<T>(PhantomData<T>);

impl<T> VecConcat<T> {
    /// New concat reduction.
    #[must_use]
    pub fn new() -> Self {
        VecConcat(PhantomData)
    }
}

impl<T> Reduction<Vec<T>> for VecConcat<T> {
    fn identity(&self) -> Vec<T> {
        Vec::new()
    }
    fn combine(&self, mut a: Vec<T>, mut b: Vec<T>) -> Vec<T> {
        if a.is_empty() {
            return b;
        }
        a.append(&mut b);
        a
    }
}

/// Union of `HashSet`s.
#[derive(Clone, Copy, Debug, Default)]
pub struct SetUnion<T>(PhantomData<T>);

impl<T> SetUnion<T> {
    /// New set-union reduction.
    #[must_use]
    pub fn new() -> Self {
        SetUnion(PhantomData)
    }
}

impl<T: Eq + Hash> Reduction<HashSet<T>> for SetUnion<T> {
    fn identity(&self) -> HashSet<T> {
        HashSet::new()
    }
    fn combine(&self, mut a: HashSet<T>, b: HashSet<T>) -> HashSet<T> {
        if a.len() < b.len() {
            return self.combine(b, a);
        }
        a.extend(b);
        a
    }
}

/// Merge `HashMap`s, combining values for duplicate keys with a
/// user-supplied associative function (e.g. `+` for word counts).
#[derive(Clone, Debug)]
pub struct MapMerge<K, V, F> {
    merge: F,
    _marker: PhantomData<(K, V)>,
}

impl<K, V, F> MapMerge<K, V, F>
where
    F: Fn(V, V) -> V,
{
    /// New map-merge reduction with the given value combiner.
    pub fn new(merge: F) -> Self {
        Self {
            merge,
            _marker: PhantomData,
        }
    }
}

impl<K: Eq + Hash, V, F: Fn(V, V) -> V> Reduction<HashMap<K, V>> for MapMerge<K, V, F> {
    fn identity(&self) -> HashMap<K, V> {
        HashMap::new()
    }
    fn combine(&self, mut a: HashMap<K, V>, b: HashMap<K, V>) -> HashMap<K, V> {
        for (k, v) in b {
            match a.remove(&k) {
                Some(existing) => {
                    a.insert(k, (self.merge)(existing, v));
                }
                None => {
                    a.insert(k, v);
                }
            }
        }
        a
    }
}

/// Keep the `k` largest elements (sorted descending). The partial
/// results are `Vec<T>` of length ≤ `k`, so combining stays cheap
/// regardless of input size.
#[derive(Clone, Copy, Debug)]
pub struct TopK {
    k: usize,
}

impl TopK {
    /// Keep the `k` largest items.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k needs k >= 1");
        Self { k }
    }
}

impl<T: Ord> Reduction<Vec<T>> for TopK {
    fn identity(&self) -> Vec<T> {
        Vec::new()
    }
    fn combine(&self, mut a: Vec<T>, b: Vec<T>) -> Vec<T> {
        a.extend(b);
        a.sort_unstable_by(|x, y| y.cmp(x));
        a.truncate(self.k);
        a
    }
}

/// A reduction defined by two closures — the fully custom escape
/// hatch project 5 motivates.
#[derive(Clone, Debug)]
pub struct FnReduction<T, I, C> {
    identity: I,
    combine: C,
    _marker: PhantomData<T>,
}

impl<T, I, C> FnReduction<T, I, C>
where
    I: Fn() -> T,
    C: Fn(T, T) -> T,
{
    /// Build a reduction from an identity constructor and an
    /// associative combine.
    pub fn new(identity: I, combine: C) -> Self {
        Self {
            identity,
            combine,
            _marker: PhantomData,
        }
    }
}

impl<T, I: Fn() -> T, C: Fn(T, T) -> T> Reduction<T> for FnReduction<T, I, C> {
    fn identity(&self) -> T {
        (self.identity)()
    }
    fn combine(&self, a: T, b: T) -> T {
        (self.combine)(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reduce_all<T, R: Reduction<T>>(red: &R, items: Vec<T>) -> T {
        items
            .into_iter()
            .fold(red.identity(), |acc, x| red.fold(acc, x))
    }

    #[test]
    fn sum_and_prod_scalars() {
        assert_eq!(reduce_all(&SumRed, vec![1u64, 2, 3, 4]), 10);
        assert_eq!(reduce_all(&ProdRed, vec![1u64, 2, 3, 4]), 24);
        assert!((reduce_all(&SumRed, vec![0.5f64, 0.25]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn min_max_identities() {
        assert_eq!(reduce_all(&MinRed, Vec::<i64>::new()), i64::MAX);
        assert_eq!(reduce_all(&MaxRed, Vec::<i64>::new()), i64::MIN);
        assert_eq!(reduce_all(&MinRed, vec![3i64, -2, 7]), -2);
        assert_eq!(reduce_all(&MaxRed, vec![3i64, -2, 7]), 7);
        assert_eq!(reduce_all(&MinRed, vec![2.5f64, 1.5]), 1.5);
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(reduce_all(&BitAndRed, vec![0b1110u8, 0b0111]), 0b0110);
        assert_eq!(reduce_all(&BitOrRed, vec![0b1000u8, 0b0001]), 0b1001);
        assert_eq!(reduce_all(&BitXorRed, vec![0b1100u8, 0b1010]), 0b0110);
    }

    #[test]
    fn logical_ops() {
        assert!(reduce_all(&AndRed, vec![true, true]));
        assert!(!reduce_all(&AndRed, vec![true, false]));
        assert!(reduce_all(&OrRed, vec![false, true]));
        assert!(!reduce_all(&OrRed, Vec::new()));
    }

    #[test]
    fn vec_concat_preserves_order() {
        let red = VecConcat::new();
        let combined = red.combine(vec![1, 2], red.combine(vec![3], vec![4, 5]));
        assert_eq!(combined, vec![1, 2, 3, 4, 5]);
        assert!(Reduction::<Vec<i32>>::identity(&red).is_empty());
    }

    #[test]
    fn set_union_dedups() {
        let red = SetUnion::new();
        let a: HashSet<_> = [1, 2, 3].into_iter().collect();
        let b: HashSet<_> = [3, 4].into_iter().collect();
        let u = red.combine(a, b);
        assert_eq!(u.len(), 4);
    }

    #[test]
    fn map_merge_combines_values() {
        let red = MapMerge::new(|a: u32, b: u32| a + b);
        let a: HashMap<_, _> = [("x", 1u32), ("y", 2)].into_iter().collect();
        let b: HashMap<_, _> = [("y", 10u32), ("z", 3)].into_iter().collect();
        let m = red.combine(a, b);
        assert_eq!(m["x"], 1);
        assert_eq!(m["y"], 12);
        assert_eq!(m["z"], 3);
    }

    #[test]
    fn top_k_keeps_largest_sorted() {
        let red = TopK::new(3);
        let out = red.combine(vec![5, 1, 9], vec![7, 2, 8, 100]);
        assert_eq!(out, vec![100, 9, 8]);
    }

    #[test]
    fn top_k_associativity_on_sample() {
        let red = TopK::new(2);
        let (a, b, c) = (vec![5, 3], vec![9], vec![1, 7]);
        let left = red.combine(red.combine(a.clone(), b.clone()), c.clone());
        let right = red.combine(a, red.combine(b, c));
        assert_eq!(left, right);
    }

    #[test]
    fn fn_reduction_custom() {
        // String concat with separator handling as a custom reduction.
        let red = FnReduction::new(String::new, |a: String, b: String| {
            if a.is_empty() {
                b
            } else if b.is_empty() {
                a
            } else {
                format!("{a},{b}")
            }
        });
        let joined = reduce_all(&red, vec!["a".to_string(), "b".to_string(), "c".to_string()]);
        assert_eq!(joined, "a,b,c");
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn top_k_zero_rejected() {
        let _ = TopK::new(0);
    }
}
