//! # pyjama — OpenMP-style structured parallelism
//!
//! This crate is the Rust analogue of **Pyjama** (Vikas, Giacaman &
//! Sinnen, *Multiprocessing with GUI-awareness using OpenMP-like
//! directives in Java*, Parallel Computing 2013): the PARC lab tool
//! that transplants the OpenMP programming model into an
//! object-oriented language, and the substrate for SoftEng 751
//! projects 3 (computational kernels) and 5 (object-oriented
//! reductions).
//!
//! Where Pyjama's compiler rewrites `//#omp parallel` comments, this
//! crate expresses the same constructs as closures over a persistent
//! [`Team`] of threads:
//!
//! | OpenMP / Pyjama | pyjama-rs |
//! |---|---|
//! | `parallel` region | [`Team::parallel`] |
//! | `for` + `schedule(...)` | [`Ctx::pfor`], [`Schedule`] |
//! | `reduction(op:var)` | [`Ctx::pfor_reduce`], [`Reduction`] |
//! | `barrier` | [`Ctx::barrier`] |
//! | `critical [name]` | [`Ctx::critical`] |
//! | `single` / `master` | [`Ctx::single`], [`Ctx::master`] |
//! | `sections` | [`Ctx::sections`] |
//! | `//#omp gui` (Pyjama's EDT-aware region) | [`gui::gui_async`] |
//!
//! The *object-oriented reduction* extension — the point of project 5:
//! OpenMP reduces only scalars with built-in operators, while an OO
//! language wants to reduce collections (concatenation, set union, map
//! merge, top-k) — lives in [`reduction`].
//!
//! The calling thread participates as thread 0 of the team, exactly
//! like OpenMP's master thread. Nested `parallel` calls serialise (the
//! OpenMP default when nesting is disabled).
//!
//! ```
//! use pyjama::{Team, Schedule};
//!
//! let team = Team::new(2);
//! let data: Vec<u64> = (0..1000).collect();
//! let sum = team.par_sum(0..data.len(), Schedule::Static, |i| data[i]);
//! assert_eq!(sum, 499_500);
//! ```

pub mod barrier;
pub mod gui;
pub mod reduction;
pub mod region;
pub mod schedule;
pub mod team;

pub use reduction::{
    BitAndRed, BitOrRed, BitXorRed, MapMerge, MaxRed, MinRed, ProdRed, Reduction, SetUnion,
    SumRed, TopK, VecConcat,
};
pub use schedule::Schedule;
pub use team::{Ctx, Team, TeamError};
