//! Per-region shared state.
//!
//! Each `parallel` region gets a fresh [`RegionState`] holding the
//! region barrier and an anonymous *construct table*. Worksharing
//! constructs (`pfor`, `single`, `sections`, reductions) encountered
//! inside the region are numbered in program order — every team thread
//! executes the same region body, so thread-local construct counters
//! stay in lockstep, exactly the assumption OpenMP makes — and the
//! first thread to reach construct `k` materialises its shared state
//! in the table.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parc_supervise::CancelToken;
use parking_lot::Mutex;

use crate::barrier::Barrier;

/// Shared state for one execution of a parallel region.
pub(crate) struct RegionState {
    pub(crate) barrier: Barrier,
    constructs: Mutex<HashMap<usize, Arc<dyn Any + Send + Sync>>>,
    /// `single` construct ids already claimed by a thread.
    singles_claimed: Mutex<HashMap<usize, ()>>,
    /// First team member whose region body panicked: `(tid, payload)`.
    /// Recording a panic also poisons the region barrier so siblings
    /// unblock instead of waiting forever for the dead member.
    panic_info: Mutex<Option<(usize, String)>>,
    /// Cancellation token observed by this region's barriers, when the
    /// region was launched through `try_parallel_cancellable`.
    cancel: Option<CancelToken>,
    /// Set once a member has observed the token at a barrier (and
    /// poisoned the barrier so the whole team abandons the region).
    cancelled: AtomicBool,
}

impl RegionState {
    pub(crate) fn new(n_threads: usize) -> Arc<Self> {
        Self::with_cancel(n_threads, None)
    }

    pub(crate) fn with_cancel(n_threads: usize, cancel: Option<CancelToken>) -> Arc<Self> {
        Arc::new(Self {
            barrier: Barrier::new(n_threads),
            constructs: Mutex::new(HashMap::new()),
            singles_claimed: Mutex::new(HashMap::new()),
            panic_info: Mutex::new(None),
            cancel,
            cancelled: AtomicBool::new(false),
        })
    }

    /// The region's cancellation token, if it runs cancellably.
    pub(crate) fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Observe the token (barrier entry points call this): when
    /// cancellation has been requested, record it and poison the
    /// barrier so every member unblocks and abandons the region.
    /// Returns true when the region is (now) cancelled.
    pub(crate) fn check_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            self.cancelled.store(true, Ordering::Release);
            self.barrier.poison();
            return true;
        }
        false
    }

    /// Did a member observe cancellation during this region?
    pub(crate) fn was_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Record that team member `member` panicked with `payload` and
    /// poison the region barrier. Only the first panic is kept (it is
    /// the root cause; later ones are usually cascade failures).
    pub(crate) fn record_panic(&self, member: usize, payload: String) {
        {
            let mut info = self.panic_info.lock();
            if info.is_none() {
                *info = Some((member, payload));
            }
        }
        self.barrier.poison();
    }

    /// Take the recorded panic, if any (called once, by the region
    /// launcher, after all members have finished).
    pub(crate) fn take_panic(&self) -> Option<(usize, String)> {
        self.panic_info.lock().take()
    }

    /// Whether a member panic has poisoned this region.
    pub(crate) fn is_poisoned(&self) -> bool {
        self.barrier.is_poisoned()
    }

    /// Get or create the shared state for construct `id`.
    pub(crate) fn construct<T: Any + Send + Sync>(
        &self,
        id: usize,
        init: impl FnOnce() -> T,
    ) -> Arc<T> {
        let mut table = self.constructs.lock();
        let entry = table
            .entry(id)
            .or_insert_with(|| Arc::new(init()) as Arc<dyn Any + Send + Sync>);
        Arc::clone(entry)
            .downcast::<T>()
            .expect("construct id reused with a different state type")
    }

    /// True when the calling thread is the first to claim `single`
    /// construct `id`.
    pub(crate) fn claim_single(&self, id: usize) -> bool {
        self.singles_claimed.lock().insert(id, ()).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn construct_state_shared_between_callers() {
        let region = RegionState::new(2);
        let a = region.construct(0, || AtomicUsize::new(7));
        let b = region.construct(0, || AtomicUsize::new(999));
        // Second caller gets the first caller's instance.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.load(std::sync::atomic::Ordering::Relaxed), 7);
    }

    #[test]
    fn distinct_constructs_have_distinct_state() {
        let region = RegionState::new(2);
        let a = region.construct(0, || AtomicUsize::new(1));
        let b = region.construct(1, || AtomicUsize::new(2));
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn single_claim_granted_once() {
        let region = RegionState::new(4);
        assert!(region.claim_single(3));
        assert!(!region.claim_single(3));
        assert!(region.claim_single(4));
    }

    #[test]
    fn first_panic_wins_and_poisons_barrier() {
        let region = RegionState::new(2);
        assert!(!region.is_poisoned());
        region.record_panic(1, "boom".to_string());
        region.record_panic(0, "cascade".to_string());
        assert!(region.is_poisoned());
        assert_eq!(region.take_panic(), Some((1, "boom".to_string())));
        assert_eq!(region.take_panic(), None);
    }

    #[test]
    #[should_panic(expected = "construct id reused")]
    fn construct_type_mismatch_panics() {
        let region = RegionState::new(1);
        let _ = region.construct(0, || AtomicUsize::new(0));
        let _ = region.construct(0, || Mutex::new(0u8));
    }
}
