//! GUI-aware asynchronous regions — Pyjama's `//#omp gui` / `freeguithread`
//! analogue.
//!
//! Pyjama's headline extension over OpenMP is awareness of the event
//! dispatch thread: a region can be executed *asynchronously* off the
//! EDT, with a completion handler marshalled back onto it. That is
//! what distinguishes **concurrency** (user-perceived responsiveness)
//! from **parallelism** (wall-clock speedup) in the paper's framing —
//! this module provides the concurrency half on top of the [`Team`]
//! parallelism half.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use guievent::GuiHandle;

use crate::team::Team;

/// Handle to an asynchronous GUI region.
pub struct GuiRegion {
    done: Arc<AtomicBool>,
    joiner: Option<thread::JoinHandle<()>>,
}

impl GuiRegion {
    /// Has the background region (and its EDT completion handler
    /// submission) finished?
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Block the *calling* thread (never the EDT!) until the region
    /// completes.
    pub fn wait(mut self) {
        if let Some(j) = self.joiner.take() {
            let _ = j.join();
        }
    }
}

impl Drop for GuiRegion {
    fn drop(&mut self) {
        if let Some(j) = self.joiner.take() {
            let _ = j.join();
        }
    }
}

/// Run `work` (which may use the team for parallel regions) on a
/// background thread; when it finishes, run `on_done(result)` on the
/// GUI event-dispatch thread. Returns immediately — the EDT is never
/// blocked, which is the whole point.
pub fn gui_async<T: Send + 'static>(
    team: &Team,
    gui: &GuiHandle,
    work: impl FnOnce(&Team) -> T + Send + 'static,
    on_done: impl FnOnce(T) + Send + 'static,
) -> GuiRegion {
    let team = team.clone();
    let gui = gui.clone();
    let done = Arc::new(AtomicBool::new(false));
    let done2 = Arc::clone(&done);
    let joiner = thread::Builder::new()
        .name("pyjama-gui-region".to_string())
        .spawn(move || {
            let result = work(&team);
            let done3 = done2;
            gui.invoke_later(move || {
                on_done(result);
            });
            done3.store(true, Ordering::Release);
        })
        .expect("failed to spawn gui region thread");
    GuiRegion {
        done,
        joiner: Some(joiner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use guievent::EventLoop;
    use parking_lot::Mutex;

    #[test]
    fn result_arrives_on_dispatch_thread() {
        let gui = EventLoop::spawn();
        let team = Team::new(2);
        let result = Arc::new(Mutex::new(None));
        let r2 = Arc::clone(&result);
        let probe = gui.handle();
        let region = gui_async(
            &team,
            &gui.handle(),
            |team| team.par_sum(0..100, Schedule::Static, |i| i as u64),
            move |sum| {
                assert!(probe.is_dispatch_thread());
                *r2.lock() = Some(sum);
            },
        );
        region.wait();
        gui.handle().drain();
        assert_eq!(*result.lock(), Some(4950));
        gui.shutdown();
    }

    #[test]
    fn edt_stays_responsive_during_region() {
        let gui = EventLoop::spawn();
        let team = Team::new(2);
        let probe = guievent::Probe::start(gui.handle(), std::time::Duration::from_millis(1));
        let region = gui_async(
            &team,
            &gui.handle(),
            |team| {
                // ~20 ms of parallel busy work.
                let mut total = 0u64;
                for _ in 0..4 {
                    total += team.par_sum(0..200_000, Schedule::Static, |i| i as u64);
                }
                total
            },
            |_| {},
        );
        region.wait();
        let report = probe.finish();
        // The work never ran on the EDT, so dispatch latency must stay
        // low (generous bound for a loaded single-core CI box).
        assert!(
            report.summary().median() < 20.0,
            "median dispatch latency {} ms too high",
            report.summary().median()
        );
        gui.shutdown();
    }

    #[test]
    fn is_done_flips_after_completion() {
        let gui = EventLoop::spawn();
        let team = Team::new(1);
        let region = gui_async(&team, &gui.handle(), |_| 1, |_| {});
        region.wait();
        gui.shutdown();
    }
}
