//! The persistent thread team and parallel-region execution.

use std::any::Any;
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use parc_supervise::CancelToken;
use parc_trace::{MarkKind, MetricHistogram, SchedTag, SpanKind, TraceHandle};
use parking_lot::{Condvar, Mutex};

use crate::reduction::Reduction;
use crate::region::RegionState;
use crate::schedule::{ChunkStream, LoopShared, Schedule};

/// The trace tag for a worksharing schedule.
fn sched_tag(schedule: Schedule) -> SchedTag {
    match schedule {
        Schedule::Static => SchedTag::Static,
        Schedule::StaticChunk(_) => SchedTag::StaticChunk,
        Schedule::Dynamic(_) => SchedTag::Dynamic,
        Schedule::Guided(_) => SchedTag::Guided,
    }
}

/// Why a parallel region failed. Returned by [`Team::try_parallel`];
/// the analogue of Parallel Task's `asyncCatch` handler observing an
/// exception that escaped a task body — here the "task" is one team
/// member's execution of the region closure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeamError {
    /// A team member's region body panicked. The panic poisoned the
    /// region barrier, so every sibling blocked on a barrier (explicit
    /// or implied by a worksharing construct) unblocked and abandoned
    /// the region instead of deadlocking.
    MemberPanicked {
        /// Thread index (`omp_get_thread_num`) of the first panicker.
        member: usize,
        /// Stringified panic payload of that member.
        payload: String,
    },
    /// The region's [`CancelToken`] (see
    /// [`Team::try_parallel_cancellable`]) was cancelled: the team
    /// observed it at a barrier, abandoned the region there, and the
    /// team itself survives for subsequent regions.
    Cancelled,
}

impl std::fmt::Display for TeamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MemberPanicked { member, payload } => {
                write!(f, "team member {member} panicked: {payload}")
            }
            Self::Cancelled => write!(f, "parallel region was cancelled"),
        }
    }
}

impl std::error::Error for TeamError {}

/// Marker payload used when a *sibling* of a panicked member unwinds
/// out of a poisoned barrier. Wrappers recognise it and do not record
/// it as a fresh panic — the root cause is already in `RegionState`.
struct PoisonUnwind;

/// Unwind the current thread out of a poisoned region. The payload is
/// recognised (and swallowed) by the per-member `catch_unwind` wrapper.
/// `resume_unwind` (rather than `panic_any`) keeps the panic hook out
/// of it: this is control flow, not a fresh failure, and the hook
/// would otherwise print a bogus backtrace per cascading member.
fn poison_unwind() -> ! {
    std::panic::resume_unwind(Box::new(PoisonUnwind));
}

fn payload_to_string(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Route one member's unwind into the region's panic record, unless it
/// is the poison-cascade marker (already recorded by the root cause).
fn note_region_panic(region: &RegionState, member: usize, payload: Box<dyn Any + Send>) {
    if payload.downcast_ref::<PoisonUnwind>().is_some() {
        return;
    }
    region.record_panic(member, payload_to_string(&*payload));
}

thread_local! {
    /// Set while the current thread executes a parallel region; makes
    /// nested `parallel` calls serialise (the OpenMP non-nested
    /// default).
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
}

/// The closure pointer shipped to workers. Lifetime is erased; safety
/// rests on `parallel` not returning until every worker has finished
/// with it (enforced by the completion latch).
struct JobMsg {
    f: *const (dyn Fn(&Ctx) + Sync),
    region: Arc<RegionState>,
    latch: Arc<Latch>,
    /// Threads with tid >= active skip this region.
    active: usize,
}

// SAFETY: the pointee is `Sync` (shared-callable from any thread) and
// outlives all uses — `Team::parallel` blocks on the latch until every
// worker has dropped its copy of the pointer.
unsafe impl Send for JobMsg {}

impl Clone for JobMsg {
    fn clone(&self) -> Self {
        Self {
            f: self.f,
            region: Arc::clone(&self.region),
            latch: Arc::clone(&self.latch),
            active: self.active,
        }
    }
}

/// Count-down latch: `parallel` waits for the helpers of one region.
struct Latch {
    remaining: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(Self {
            remaining: Mutex::new(n),
            cv: Condvar::new(),
        })
    }

    fn count_down(&self) {
        let mut rem = self.remaining.lock();
        *rem -= 1;
        if *rem == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut rem = self.remaining.lock();
        while *rem > 0 {
            self.cv.wait(&mut rem);
        }
    }
}

struct DispatchSlot {
    generation: u64,
    msg: Option<JobMsg>,
    stop: bool,
}

struct TeamInner {
    n: usize,
    slot: Mutex<DispatchSlot>,
    slot_cv: Condvar,
    /// Serialises region launches from different threads.
    region_lock: Mutex<()>,
    criticals: Mutex<std::collections::HashMap<String, Arc<Mutex<()>>>>,
    joiners: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Where region/barrier/chunk events are recorded (disabled by
    /// default).
    trace: TraceHandle,
    /// The team's trace track.
    pid: u32,
    /// Per-member barrier wait times, registered with the collector's
    /// metrics registry when tracing is attached.
    barrier_hist: Option<Arc<MetricHistogram>>,
}

/// A persistent team of threads executing parallel regions; the
/// OpenMP/Pyjama thread-team analogue. The creating (or calling)
/// thread participates as thread 0. Cloning is cheap and shares the
/// team.
#[derive(Clone)]
pub struct Team {
    inner: Arc<TeamInner>,
}

impl Team {
    /// Create a team of `n` threads total (`n - 1` helpers are
    /// spawned; the caller of [`Team::parallel`] acts as thread 0).
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_trace(n, &TraceHandle::default())
    }

    /// [`Team::new`], recording region, barrier and chunk-dispatch
    /// events through `trace` on a track named `pyjama`. Per-member
    /// barrier wait times are also registered as the
    /// `pyjama.barrier_wait_ms` histogram.
    #[must_use]
    pub fn with_trace(n: usize, trace: &TraceHandle) -> Self {
        assert!(n >= 1, "a team needs at least one thread");
        let pid = trace.register_track("pyjama");
        let barrier_hist = trace
            .metrics()
            .map(|reg| reg.histogram("pyjama.barrier_wait_ms", 0.0, 50.0, 20));
        let inner = Arc::new(TeamInner {
            n,
            slot: Mutex::new(DispatchSlot {
                generation: 0,
                msg: None,
                stop: false,
            }),
            slot_cv: Condvar::new(),
            region_lock: Mutex::new(()),
            criticals: Mutex::new(std::collections::HashMap::new()),
            joiners: Mutex::new(Vec::new()),
            trace: trace.clone(),
            pid,
            barrier_hist,
        });
        let mut joiners = Vec::with_capacity(n.saturating_sub(1));
        for tid in 1..n {
            let worker_inner = Arc::clone(&inner);
            joiners.push(
                thread::Builder::new()
                    .name(format!("pyjama-{tid}"))
                    .spawn(move || worker_loop(&worker_inner, tid))
                    .expect("failed to spawn team thread"),
            );
        }
        *inner.joiners.lock() = joiners;
        Self { inner }
    }

    /// Team size (including the calling thread).
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.inner.n
    }

    /// Execute a parallel region on a sub-team of `n` threads
    /// (OpenMP's `num_threads(n)` clause). `n` is clamped to the team
    /// size; threads beyond the sub-team sit the region out.
    ///
    /// Panics if a member's region body panicked (see
    /// [`Team::try_parallel_with`] for the non-panicking form).
    pub fn parallel_with<F: Fn(&Ctx) + Sync>(&self, n: usize, f: F) {
        if let Err(e) = self.try_parallel_with(n, f) {
            panic!("pyjama {e}");
        }
    }

    /// Execute a parallel region: `f` runs once on every team thread,
    /// each receiving its own [`Ctx`]. Blocks until all threads have
    /// finished the region. Nested calls (from inside a region)
    /// serialise onto the calling thread with a team of one.
    ///
    /// Panics if a member's region body panicked (see
    /// [`Team::try_parallel`] for the non-panicking form).
    pub fn parallel<F: Fn(&Ctx) + Sync>(&self, f: F) {
        if let Err(e) = self.try_parallel(f) {
            panic!("pyjama {e}");
        }
    }

    /// Like [`Team::parallel`], but a panicking member yields
    /// `Err(TeamError::MemberPanicked)` instead of propagating the
    /// panic. The region **never deadlocks on a dead member**: the
    /// panic poisons the region barrier, siblings blocked on any
    /// barrier unwind and abandon the region, and the team itself
    /// survives for subsequent regions.
    pub fn try_parallel<F: Fn(&Ctx) + Sync>(&self, f: F) -> Result<(), TeamError> {
        self.try_parallel_impl(self.inner.n, None, f)
    }

    /// [`Team::parallel_with`] with [`Team::try_parallel`]'s error
    /// handling.
    pub fn try_parallel_with<F: Fn(&Ctx) + Sync>(&self, n: usize, f: F) -> Result<(), TeamError> {
        self.try_parallel_impl(n.clamp(1, self.inner.n), None, f)
    }

    /// [`Team::try_parallel`] under a [`CancelToken`]: every barrier
    /// (explicit or implied by a worksharing construct) observes the
    /// token, and once it flips the whole team abandons the region at
    /// that barrier — via the same poisoning machinery that contains
    /// member panics — yielding `Err(TeamError::Cancelled)`. Bodies
    /// can also poll [`Ctx::is_cancelled`] to skip work early.
    ///
    /// The region runs under a *child* of `token`, so cancelling the
    /// caller's token cancels the region without being affected by it.
    /// A member panic still takes precedence over cancellation in the
    /// returned error (it is the root cause worth reporting).
    pub fn try_parallel_cancellable<F: Fn(&Ctx) + Sync>(
        &self,
        token: &CancelToken,
        f: F,
    ) -> Result<(), TeamError> {
        self.try_parallel_impl(self.inner.n, Some(token.child()), f)
    }

    fn try_parallel_impl<F: Fn(&Ctx) + Sync>(
        &self,
        active: usize,
        cancel: Option<CancelToken>,
        f: F,
    ) -> Result<(), TeamError> {
        if IN_REGION.with(Cell::get) {
            // Nested region: serial execution, own single-thread state.
            let region = RegionState::new(1);
            let unwound = catch_unwind(AssertUnwindSafe(|| {
                let ctx = Ctx {
                    team: &self.inner,
                    region: &region,
                    tid: 0,
                    n_threads: 1,
                    construct_counter: AtomicUsize::new(0),
                };
                f(&ctx);
            }));
            return match unwound {
                Ok(()) => Ok(()),
                // A poison cascade from the *outer* region must keep
                // unwinding to the outer member wrapper.
                Err(p) if p.downcast_ref::<PoisonUnwind>().is_some() => {
                    std::panic::resume_unwind(p)
                }
                Err(p) => Err(TeamError::MemberPanicked {
                    member: 0,
                    payload: payload_to_string(&*p),
                }),
            };
        }
        // A token already cancelled at launch: skip the region wholesale
        // rather than starting work that would be abandoned at the
        // first barrier.
        if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Err(TeamError::Cancelled);
        }
        let _region_guard = self.inner.region_lock.lock();
        let region = RegionState::with_cancel(active, cancel);
        let latch = Latch::new(active - 1);
        let f_ref: &(dyn Fn(&Ctx) + Sync) = &f;
        // SAFETY: see `JobMsg` — we block on `latch` before returning,
        // so the erased borrow cannot dangle.
        let f_static: *const (dyn Fn(&Ctx) + Sync) =
            unsafe { std::mem::transmute::<_, &'static (dyn Fn(&Ctx) + Sync)>(f_ref) };
        if self.inner.n > 1 {
            let mut slot = self.inner.slot.lock();
            slot.generation += 1;
            slot.msg = Some(JobMsg {
                f: f_static,
                region: Arc::clone(&region),
                latch: Arc::clone(&latch),
                active,
            });
            drop(slot);
            self.inner.slot_cv.notify_all();
        }
        // The caller is thread 0. Its body is caught exactly like a
        // worker's so a thread-0 panic also poisons (rather than
        // unwinding past) the region — we still must wait on the
        // latch, or the erased closure pointer would dangle.
        IN_REGION.with(|c| c.set(true));
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            // The guard's Drop emits the span end even when the body
            // unwinds, keeping begin/end pairs balanced.
            let _span = self.inner.trace.span(self.inner.pid, SpanKind::Region { member: 0 });
            let ctx = Ctx {
                team: &self.inner,
                region: &region,
                tid: 0,
                n_threads: active,
                construct_counter: AtomicUsize::new(0),
            };
            f(&ctx);
        }));
        IN_REGION.with(|c| c.set(false));
        if let Err(payload) = unwound {
            note_region_panic(&region, 0, payload);
        }
        latch.wait();
        match region.take_panic() {
            Some((member, payload)) => Err(TeamError::MemberPanicked { member, payload }),
            None if region.was_cancelled() => Err(TeamError::Cancelled),
            None => Ok(()),
        }
    }

    /// Convenience: `parallel` + `pfor` in one call (the
    /// `parallel for` combined construct).
    pub fn for_each<F: Fn(usize) + Sync>(&self, range: Range<usize>, schedule: Schedule, body: F) {
        self.parallel(|ctx| {
            ctx.pfor(range.clone(), schedule, &body);
        });
    }

    /// Convenience: combined `parallel for reduction`.
    pub fn par_reduce<T, R, M>(&self, range: Range<usize>, schedule: Schedule, red: &R, map: M) -> T
    where
        T: Send + Clone + 'static,
        R: Reduction<T> + Sync,
        M: Fn(usize) -> T + Sync,
    {
        let result: Mutex<Option<T>> = Mutex::new(None);
        self.parallel(|ctx| {
            let local = ctx.pfor_reduce(range.clone(), schedule, red, &map);
            if ctx.thread_num() == 0 {
                *result.lock() = Some(local);
            }
        });
        result.into_inner().expect("thread 0 stored the reduction")
    }

    /// Convenience: parallel sum (the most common reduction).
    pub fn par_sum<M>(&self, range: Range<usize>, schedule: Schedule, map: M) -> u64
    where
        M: Fn(usize) -> u64 + Sync,
    {
        self.par_reduce(range, schedule, &crate::reduction::SumRed, map)
    }
}

impl Drop for TeamInner {
    fn drop(&mut self) {
        {
            let mut slot = self.slot.lock();
            slot.stop = true;
        }
        self.slot_cv.notify_all();
        for j in std::mem::take(&mut *self.joiners.lock()) {
            let _ = j.join();
        }
    }
}

fn worker_loop(inner: &Arc<TeamInner>, tid: usize) {
    let mut last_gen = 0u64;
    loop {
        let msg = {
            let mut slot = inner.slot.lock();
            loop {
                if slot.stop {
                    return;
                }
                if slot.generation != last_gen {
                    last_gen = slot.generation;
                    break slot.msg.clone().expect("message published");
                }
                inner.slot_cv.wait(&mut slot);
            }
        };
        if tid >= msg.active {
            // Sitting this region out (num_threads clause).
            continue;
        }
        IN_REGION.with(|c| c.set(true));
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            let _span = inner.trace.span(inner.pid, SpanKind::Region { member: tid as u32 });
            let ctx = Ctx {
                team: inner,
                region: &msg.region,
                tid,
                n_threads: msg.active,
                construct_counter: AtomicUsize::new(0),
            };
            // SAFETY: pointer valid until we count the latch down.
            let f = unsafe { &*msg.f };
            f(&ctx);
        }));
        IN_REGION.with(|c| c.set(false));
        if let Err(payload) = unwound {
            // A member panic must not kill the team thread: record it
            // (poisoning the region so siblings unblock) and keep the
            // worker alive for future regions. The latch is counted
            // down on every path so the launcher never deadlocks.
            note_region_panic(&msg.region, tid, payload);
        }
        msg.latch.count_down();
    }
}

/// Per-thread view of an executing parallel region; the receiver for
/// every OpenMP-style construct.
pub struct Ctx<'r> {
    team: &'r TeamInner,
    region: &'r Arc<RegionState>,
    tid: usize,
    n_threads: usize,
    construct_counter: AtomicUsize,
}

impl<'r> Ctx<'r> {
    /// This thread's index within the team (`omp_get_thread_num`).
    #[must_use]
    pub fn thread_num(&self) -> usize {
        self.tid
    }

    /// Team size for this region (`omp_get_num_threads`).
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.n_threads
    }

    /// In a cancellable region (see
    /// [`Team::try_parallel_cancellable`]): has cancellation been
    /// requested? Bodies can poll this to skip remaining work between
    /// barriers; always `false` in a plain region.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.region.was_cancelled()
            || self
                .region
                .cancel_token()
                .is_some_and(parc_supervise::CancelToken::is_cancelled)
    }

    fn next_construct(&self) -> usize {
        // Per-thread counter (each thread has its own `Ctx`), atomic
        // only so that `Ctx` is `Sync` and can be referenced from
        // worksharing bodies.
        self.construct_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Record one dealt chunk of a worksharing construct.
    fn mark_chunk(&self, construct: usize, chunk: &Range<usize>, schedule: SchedTag) {
        self.team.trace.mark(
            self.team.pid,
            MarkKind::ChunkDispatch {
                construct: construct as u32,
                lo: chunk.start as u64,
                len: chunk.len() as u64,
                schedule,
            },
        );
    }

    /// Block until every team thread reaches this barrier.
    ///
    /// If a sibling's region body panics, the barrier is poisoned and
    /// this call *unwinds* (instead of blocking forever on a member
    /// that will never arrive); the unwind is absorbed by the team's
    /// per-member wrapper and surfaces as
    /// [`TeamError::MemberPanicked`] from [`Team::try_parallel`].
    pub fn barrier(&self) {
        let trace = &self.team.trace;
        // Cancellation checkpoint: in a cancellable region, a flipped
        // token is observed here — the first observer poisons the
        // barrier so the whole team unblocks and abandons the region.
        if self.region.check_cancelled() {
            if trace.enabled() {
                trace.mark(self.team.pid, MarkKind::BarrierPoison { member: self.tid as u32 });
            }
            poison_unwind();
        }
        if !trace.enabled() {
            if self.region.barrier.try_wait().is_err() {
                poison_unwind();
            }
            return;
        }
        let member = self.tid as u32;
        let start = std::time::Instant::now();
        let arrived = {
            let _span = trace.span(self.team.pid, SpanKind::BarrierWait { member });
            self.region.barrier.try_wait()
        };
        let waited = start.elapsed();
        if arrived.is_err() {
            trace.mark(self.team.pid, MarkKind::BarrierPoison { member });
            poison_unwind();
        }
        trace.mark(
            self.team.pid,
            MarkKind::BarrierRelease {
                member,
                waited_ns: u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX),
            },
        );
        if let Some(hist) = &self.team.barrier_hist {
            hist.record(waited.as_secs_f64() * 1e3);
        }
    }

    /// Run `f` only on thread 0. No implied barrier (OpenMP `master`).
    pub fn master(&self, f: impl FnOnce()) {
        if self.tid == 0 {
            f();
        }
    }

    /// Run `f` on exactly one (the first-arriving) thread, then
    /// barrier (OpenMP `single`).
    pub fn single(&self, f: impl FnOnce()) {
        self.single_nowait(f);
        self.barrier();
    }

    /// `single` without the trailing barrier (`single nowait`).
    pub fn single_nowait(&self, f: impl FnOnce()) {
        let id = self.next_construct();
        if self.region.claim_single(id) {
            f();
        }
    }

    /// Named critical section (OpenMP `critical(name)`). Sections with
    /// the same name are mutually exclusive *across regions* on the
    /// same team. Not reentrant.
    pub fn critical<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let lock = {
            let mut map = self.team.criticals.lock();
            Arc::clone(
                map.entry(name.to_string())
                    .or_insert_with(|| Arc::new(Mutex::new(()))),
            )
        };
        let _guard = lock.lock();
        f()
    }

    /// Worksharing loop with an implicit trailing barrier (OpenMP
    /// `for`). Every iteration in `range` is executed exactly once by
    /// some team thread, per `schedule`.
    pub fn pfor(&self, range: Range<usize>, schedule: Schedule, body: impl Fn(usize) + Sync) {
        self.pfor_nowait(range, schedule, body);
        self.barrier();
    }

    /// Worksharing loop without the trailing barrier (`for nowait`).
    pub fn pfor_nowait(
        &self,
        range: Range<usize>,
        schedule: Schedule,
        body: impl Fn(usize) + Sync,
    ) {
        let id = self.next_construct();
        let shared = if schedule.needs_shared_counter() {
            Some(self.region.construct(id, LoopShared::default))
        } else {
            None
        };
        let mut stream = ChunkStream::new(
            schedule,
            self.tid,
            self.n_threads,
            &range,
            shared.as_deref(),
        );
        while let Some(chunk) = stream.next_chunk() {
            self.mark_chunk(id, &chunk, sched_tag(schedule));
            for i in chunk {
                body(i);
            }
        }
    }

    /// Worksharing loop with reduction (OpenMP `for reduction(op)`).
    /// Every thread receives the combined value. `T: Clone` because
    /// the combined result is distributed to the whole team, matching
    /// the shared reduction variable after an OpenMP region.
    pub fn pfor_reduce<T, R, M>(&self, range: Range<usize>, schedule: Schedule, red: &R, map: M) -> T
    where
        T: Send + Clone + 'static,
        R: Reduction<T>,
        M: Fn(usize) -> T,
    {
        let id = self.next_construct();
        let shared = if schedule.needs_shared_counter() {
            Some(self.region.construct(id, LoopShared::default))
        } else {
            None
        };
        // Slot table for partials + the combined result.
        let slots = self.region.construct(self.next_construct(), || {
            ReduceSlots::<T>::new(self.n_threads)
        });
        let mut acc = red.identity();
        let mut stream = ChunkStream::new(
            schedule,
            self.tid,
            self.n_threads,
            &range,
            shared.as_deref(),
        );
        while let Some(chunk) = stream.next_chunk() {
            self.mark_chunk(id, &chunk, sched_tag(schedule));
            for i in chunk {
                acc = red.fold(acc, map(i));
            }
        }
        *slots.partials[self.tid].lock() = Some(acc);
        self.barrier();
        if self.tid == 0 {
            let mut combined = red.identity();
            for slot in &slots.partials {
                // A panicked member never stores its partial; skipping
                // it keeps the combine well-defined (the region still
                // reports the failure via barrier poisoning — this
                // combine only runs when all members arrived, but stays
                // defensive so a poisoned region can never turn a
                // missing partial into a second panic).
                if let Some(part) = slot.lock().take() {
                    combined = red.combine(combined, part);
                }
            }
            *slots.combined.lock() = Some(combined);
        }
        self.barrier();
        let out = slots
            .combined
            .lock()
            .clone()
            .expect("thread 0 combined the partials");
        // Final barrier so the slots cannot be torn down while a
        // straggler still reads `combined`.
        self.barrier();
        out
    }

    /// Worksharing loop with an **ordered** region (OpenMP
    /// `for ordered`): `body` receives the iteration index and an
    /// [`OrderedGate`]; whatever it runs through
    /// [`OrderedGate::run`] executes in strict iteration order across
    /// the team, while the rest of the body runs in parallel.
    ///
    /// As in OpenMP, each iteration must pass through the gate exactly
    /// once (skipping an iteration would stall its successors), and
    /// schedules must assign each thread's iterations in increasing
    /// order — all schedules in this crate do.
    pub fn pfor_ordered(
        &self,
        range: Range<usize>,
        schedule: Schedule,
        body: impl Fn(usize, &OrderedGate) + Sync,
    ) {
        let id = self.next_construct();
        let shared = if schedule.needs_shared_counter() {
            Some(self.region.construct(id, LoopShared::default))
        } else {
            None
        };
        let gate_state = self
            .region
            .construct(self.next_construct(), || OrderedState {
                next: AtomicUsize::new(range.start),
            });
        let gate = OrderedGate {
            state: gate_state,
            region: Arc::clone(self.region),
        };
        let mut stream = ChunkStream::new(
            schedule,
            self.tid,
            self.n_threads,
            &range,
            shared.as_deref(),
        );
        while let Some(chunk) = stream.next_chunk() {
            self.mark_chunk(id, &chunk, sched_tag(schedule));
            for i in chunk {
                body(i, &gate);
            }
        }
        self.barrier();
    }

    /// Execute each closure in `sections` exactly once, distributed
    /// on demand across the team, then barrier (OpenMP `sections`).
    pub fn sections(&self, sections: &[&(dyn Fn() + Sync)]) {
        let id = self.next_construct();
        let shared = self.region.construct(id, LoopShared::default);
        loop {
            let k = shared.take_index();
            if k >= sections.len() {
                break;
            }
            self.mark_chunk(id, &(k..k + 1), SchedTag::Sections);
            sections[k]();
        }
        self.barrier();
    }
}

struct OrderedState {
    next: AtomicUsize,
}

/// Sequencing gate for [`Ctx::pfor_ordered`].
pub struct OrderedGate {
    state: Arc<OrderedState>,
    region: Arc<RegionState>,
}

impl OrderedGate {
    /// Run `f` for iteration `i`, after every earlier iteration's
    /// ordered region has completed and before any later one starts.
    ///
    /// If a sibling panics while holding an earlier turn, its turn
    /// never completes; the spin loop observes the poisoned region and
    /// unwinds instead of spinning forever.
    pub fn run<T>(&self, i: usize, f: impl FnOnce() -> T) -> T {
        while self.state.next.load(Ordering::Acquire) != i {
            if self.region.is_poisoned() {
                poison_unwind();
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        let out = f();
        self.state.next.store(i + 1, Ordering::Release);
        out
    }
}

struct ReduceSlots<T> {
    partials: Vec<Mutex<Option<T>>>,
    combined: Mutex<Option<T>>,
}

impl<T> ReduceSlots<T> {
    fn new(n: usize) -> Self {
        Self {
            partials: (0..n).map(|_| Mutex::new(None)).collect(),
            combined: Mutex::new(None),
        }
    }
}

/// Marker: a region is currently executing on this thread. Used by the
/// GUI module to assert against misuse.
#[allow(dead_code)]
pub(crate) fn in_region() -> bool {
    IN_REGION.with(Cell::get)
}
