//! Worksharing-loop schedules: `schedule(static|dynamic|guided)`.
//!
//! A schedule decides which loop iterations each team thread executes.
//! The chunk streams produced here are exercised directly by unit
//! tests (coverage/disjointness invariants) and indirectly by every
//! `pfor` in the workspace. Experiment A2 benchmarks them against each
//! other on uniform and skewed loops.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Iteration-assignment policy for [`crate::Ctx::pfor`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// One contiguous block per thread (OpenMP `schedule(static)`),
    /// minimal overhead, best for uniform iterations.
    Static,
    /// Fixed-size chunks dealt round-robin (`schedule(static, c)`).
    StaticChunk(usize),
    /// Threads grab fixed-size chunks from a shared counter on demand
    /// (`schedule(dynamic, c)`); balances skewed loops at the price of
    /// one atomic RMW per chunk.
    Dynamic(usize),
    /// Exponentially decreasing chunks with a floor
    /// (`schedule(guided, min)`); a compromise between the two.
    Guided(usize),
}

impl Schedule {
    /// Does this schedule need a shared chunk counter?
    #[must_use]
    pub(crate) fn needs_shared_counter(self) -> bool {
        matches!(self, Schedule::Dynamic(_) | Schedule::Guided(_))
    }
}

/// Shared per-loop-construct state (the "next iteration" counter for
/// dynamic/guided schedules).
#[derive(Debug, Default)]
pub(crate) struct LoopShared {
    next: AtomicUsize,
}

impl LoopShared {
    /// Claim the next index from the shared counter; used by the
    /// `sections` construct.
    pub(crate) fn take_index(&self) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

/// Per-thread chunk stream for one worksharing loop.
pub(crate) struct ChunkStream<'a> {
    schedule: Schedule,
    thread: usize,
    n_threads: usize,
    len: usize,
    base: usize,
    shared: Option<&'a LoopShared>,
    /// Static-schedule cursor.
    cursor: usize,
}

impl<'a> ChunkStream<'a> {
    pub(crate) fn new(
        schedule: Schedule,
        thread: usize,
        n_threads: usize,
        range: &Range<usize>,
        shared: Option<&'a LoopShared>,
    ) -> Self {
        debug_assert!(thread < n_threads);
        if schedule.needs_shared_counter() {
            debug_assert!(shared.is_some(), "dynamic/guided need shared state");
        }
        Self {
            schedule,
            thread,
            n_threads,
            len: range.end.saturating_sub(range.start),
            base: range.start,
            shared,
            cursor: 0,
        }
    }

    /// Next chunk of *absolute* loop indices, or `None` when the
    /// thread's share is exhausted.
    pub(crate) fn next_chunk(&mut self) -> Option<Range<usize>> {
        let rel = match self.schedule {
            Schedule::Static => {
                if self.cursor > 0 {
                    return None;
                }
                self.cursor = 1;
                let lo = self.len * self.thread / self.n_threads;
                let hi = self.len * (self.thread + 1) / self.n_threads;
                if lo >= hi {
                    return None;
                }
                lo..hi
            }
            Schedule::StaticChunk(c) => {
                let c = c.max(1);
                // The cursor counts this thread's chunks; global chunk
                // index = thread + cursor * n_threads.
                let chunk_idx = self.thread + self.cursor * self.n_threads;
                self.cursor += 1;
                let lo = chunk_idx * c;
                if lo >= self.len {
                    return None;
                }
                lo..(lo + c).min(self.len)
            }
            Schedule::Dynamic(c) => {
                let c = c.max(1);
                let shared = self.shared.expect("dynamic schedule shared state");
                // Exhaustion check before the RMW: an exhausted stream
                // may be polled again (e.g. by a work-stealing wrapper
                // re-probing for leftovers), and each poll must be
                // side-effect-free — an unconditional `fetch_add` here
                // marches the shared cursor towards overflow and skews
                // any diagnostics reading it.
                if shared.next.load(Ordering::Relaxed) >= self.len {
                    return None;
                }
                let lo = shared.next.fetch_add(c, Ordering::Relaxed);
                if lo >= self.len {
                    return None;
                }
                lo..(lo + c).min(self.len)
            }
            Schedule::Guided(min) => {
                let min = min.max(1);
                let shared = self.shared.expect("guided schedule shared state");
                loop {
                    let cur = shared.next.load(Ordering::Relaxed);
                    if cur >= self.len {
                        return None;
                    }
                    let remaining = self.len - cur;
                    let chunk = (remaining / (2 * self.n_threads)).max(min).min(remaining);
                    if shared
                        .next
                        .compare_exchange_weak(
                            cur,
                            cur + chunk,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                    {
                        break cur..cur + chunk;
                    }
                }
            }
        };
        Some(self.base + rel.start..self.base + rel.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collect the iterations each thread would execute and check the
    /// fundamental worksharing invariant: together the threads cover
    /// every iteration exactly once.
    fn coverage(schedule: Schedule, n_threads: usize, range: Range<usize>) -> Vec<Vec<usize>> {
        let shared = LoopShared::default();
        let mut per_thread: Vec<Vec<usize>> = vec![Vec::new(); n_threads];
        // Simulate interleaving: round-robin one chunk per thread.
        let mut streams: Vec<ChunkStream> = (0..n_threads)
            .map(|t| ChunkStream::new(schedule, t, n_threads, &range, Some(&shared)))
            .collect();
        let mut live = vec![true; n_threads];
        while live.iter().any(|&l| l) {
            for t in 0..n_threads {
                if !live[t] {
                    continue;
                }
                match streams[t].next_chunk() {
                    Some(chunk) => per_thread[t].extend(chunk),
                    None => live[t] = false,
                }
            }
        }
        per_thread
    }

    fn assert_exact_cover(per_thread: &[Vec<usize>], range: Range<usize>) {
        let mut all: Vec<usize> = per_thread.iter().flatten().copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = range.collect();
        assert_eq!(all, expected, "iterations must be covered exactly once");
    }

    #[test]
    fn static_covers_exactly() {
        for n in 1..=5 {
            let pt = coverage(Schedule::Static, n, 0..103);
            assert_exact_cover(&pt, 0..103);
        }
    }

    #[test]
    fn static_blocks_are_contiguous_and_balanced() {
        let pt = coverage(Schedule::Static, 4, 0..100);
        for chunk in &pt {
            assert!(chunk.windows(2).all(|w| w[1] == w[0] + 1));
            assert_eq!(chunk.len(), 25);
        }
    }

    #[test]
    fn static_chunk_round_robin() {
        let pt = coverage(Schedule::StaticChunk(10), 2, 0..40);
        assert_eq!(pt[0], (0..10).chain(20..30).collect::<Vec<_>>());
        assert_eq!(pt[1], (10..20).chain(30..40).collect::<Vec<_>>());
    }

    #[test]
    fn static_chunk_covers_with_ragged_tail() {
        let pt = coverage(Schedule::StaticChunk(7), 3, 0..100);
        assert_exact_cover(&pt, 0..100);
    }

    #[test]
    fn dynamic_covers_exactly() {
        for c in [1, 3, 16, 1000] {
            let pt = coverage(Schedule::Dynamic(c), 3, 0..97);
            assert_exact_cover(&pt, 0..97);
        }
    }

    #[test]
    fn guided_covers_exactly_and_chunks_shrink() {
        let shared = LoopShared::default();
        let range = 0..1000;
        let mut stream = ChunkStream::new(Schedule::Guided(4), 0, 4, &range, Some(&shared));
        let mut sizes = Vec::new();
        let mut covered = Vec::new();
        while let Some(chunk) = stream.next_chunk() {
            sizes.push(chunk.len());
            covered.extend(chunk);
        }
        assert_eq!(covered, (0..1000).collect::<Vec<_>>());
        // First chunk is remaining/(2n) = 125; strictly larger than the
        // floor-sized final chunks.
        assert_eq!(sizes[0], 125);
        assert!(sizes.windows(2).all(|w| w[1] <= w[0]));
        assert!(*sizes.last().unwrap() >= 1);
    }

    #[test]
    fn guided_multi_thread_coverage() {
        let pt = coverage(Schedule::Guided(2), 4, 5..505);
        assert_exact_cover(&pt, 5..505);
    }

    #[test]
    fn empty_range_yields_nothing() {
        for s in [
            Schedule::Static,
            Schedule::StaticChunk(4),
            Schedule::Dynamic(4),
            Schedule::Guided(4),
        ] {
            let pt = coverage(s, 3, 10..10);
            assert!(pt.iter().all(Vec::is_empty));
        }
    }

    #[test]
    fn nonzero_base_offsets_indices() {
        let pt = coverage(Schedule::Dynamic(5), 2, 100..120);
        let mut all: Vec<usize> = pt.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (100..120).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_iterations() {
        let pt = coverage(Schedule::Static, 8, 0..3);
        assert_exact_cover(&pt, 0..3);
        let nonempty = pt.iter().filter(|v| !v.is_empty()).count();
        assert_eq!(nonempty, 3);
    }

    #[test]
    fn exhausted_streams_poll_without_side_effects() {
        // Regression: `Dynamic` used to `fetch_add` on every poll, so
        // an exhausted stream polled N more times advanced the shared
        // cursor by N*chunk (towards eventual overflow). Post-exhaustion
        // polls must leave the counter untouched.
        for schedule in [Schedule::Dynamic(3), Schedule::Guided(2)] {
            let shared = LoopShared::default();
            let range = 0..20;
            let mut streams: Vec<ChunkStream> = (0..2)
                .map(|t| ChunkStream::new(schedule, t, 2, &range, Some(&shared)))
                .collect();
            // Drain both streams completely.
            let mut drained: Vec<usize> = Vec::new();
            let mut live = [true, true];
            while live.iter().any(|&l| l) {
                for (t, stream) in streams.iter_mut().enumerate() {
                    if !live[t] {
                        continue;
                    }
                    match stream.next_chunk() {
                        Some(chunk) => drained.extend(chunk),
                        None => live[t] = false,
                    }
                }
            }
            drained.sort_unstable();
            assert_eq!(drained, (0..20).collect::<Vec<_>>(), "{schedule:?}");
            let cursor_at_exhaustion = shared.next.load(Ordering::Relaxed);
            for _ in 0..100 {
                for stream in &mut streams {
                    assert!(stream.next_chunk().is_none(), "{schedule:?}");
                }
            }
            assert_eq!(
                shared.next.load(Ordering::Relaxed),
                cursor_at_exhaustion,
                "{schedule:?}: post-exhaustion polls must not move the shared cursor"
            );
        }
    }

    #[test]
    fn zero_chunk_clamped_to_one() {
        let pt = coverage(Schedule::Dynamic(0), 2, 0..10);
        assert_exact_cover(&pt, 0..10);
        let pt = coverage(Schedule::StaticChunk(0), 2, 0..10);
        assert_exact_cover(&pt, 0..10);
    }
}
