//! Mergesort: the stable counterpart, sequential and task-parallel.

use partask::{RuntimeHandle, TaskRuntime};

use crate::quicksort::INSERTION_CUTOFF;

/// Below this length the parallel variant recurses sequentially.
const PAR_CUTOFF: usize = 2048;

/// Stable sequential mergesort.
pub fn mergesort_seq<T: Ord + Clone>(v: &mut Vec<T>) {
    let data = std::mem::take(v);
    *v = ms_seq(data);
}

fn ms_seq<T: Ord + Clone>(mut v: Vec<T>) -> Vec<T> {
    if v.len() <= INSERTION_CUTOFF {
        // Insertion sort is stable.
        for i in 1..v.len() {
            let mut j = i;
            while j > 0 && v[j - 1] > v[j] {
                v.swap(j - 1, j);
                j -= 1;
            }
        }
        return v;
    }
    let right = v.split_off(v.len() / 2);
    merge(ms_seq(v), ms_seq(right))
}

/// Stable merge (left elements win ties).
fn merge<T: Ord>(left: Vec<T>, right: Vec<T>) -> Vec<T> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    let mut li = left.into_iter().peekable();
    let mut ri = right.into_iter().peekable();
    while let (Some(l), Some(r)) = (li.peek(), ri.peek()) {
        if l <= r {
            out.push(li.next().expect("peeked"));
        } else {
            out.push(ri.next().expect("peeked"));
        }
    }
    out.extend(li);
    out.extend(ri);
    out
}

/// Task-parallel mergesort on the partask runtime.
pub fn mergesort_partask<T: Ord + Clone + Send + 'static>(rt: &TaskRuntime, v: &mut Vec<T>) {
    let data = std::mem::take(v);
    *v = ms_task(&rt.handle(), data);
}

fn ms_task<T: Ord + Clone + Send + 'static>(rt: &RuntimeHandle, mut v: Vec<T>) -> Vec<T> {
    if v.len() <= PAR_CUTOFF {
        return ms_seq(v);
    }
    let right = v.split_off(v.len() / 2);
    let left = v;
    let rt2 = rt.clone();
    let left_task = rt.spawn(move || ms_task(&rt2, left));
    let right_sorted = ms_task(rt, right);
    merge(left_task.join().expect("left merge task"), right_sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn sorts_correctly() {
        for input in [
            data::random(5000, 1),
            data::sorted(1000),
            data::reversed(1000),
            data::few_unique(3000, 5, 2),
            vec![],
            vec![9],
        ] {
            let mut expected = input.clone();
            expected.sort();
            let mut a = input.clone();
            mergesort_seq(&mut a);
            assert_eq!(a, expected);
            let rt = TaskRuntime::builder().workers(2).build();
            let mut b = input;
            mergesort_partask(&rt, &mut b);
            assert_eq!(b, expected);
            rt.shutdown();
        }
    }

    #[test]
    fn stability_preserved() {
        // Sort (key, original-index) pairs by key only; equal keys
        // must keep their original order.
        #[derive(Clone, PartialEq, Eq, Debug)]
        struct Pair(u64, usize);
        impl PartialOrd for Pair {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Pair {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.cmp(&other.0) // key only!
            }
        }
        let keys = data::few_unique(2000, 4, 3);
        let input: Vec<Pair> = keys.iter().enumerate().map(|(i, &k)| Pair(k, i)).collect();
        let mut sorted = input.clone();
        mergesort_seq(&mut sorted);
        for w in sorted.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    #[test]
    fn parallel_merge_is_stable_too() {
        let rt = TaskRuntime::builder().workers(2).build();
        #[derive(Clone, PartialEq, Eq, Debug)]
        struct P(u8, u32);
        impl PartialOrd for P {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for P {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.cmp(&other.0)
            }
        }
        let keys = data::few_unique(10_000, 3, 4);
        let mut v: Vec<P> = keys.iter().enumerate().map(|(i, &k)| P(k as u8, i as u32)).collect();
        mergesort_partask(&rt, &mut v);
        for w in v.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1);
            }
        }
        rt.shutdown();
    }
}
