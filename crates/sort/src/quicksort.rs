//! Quicksort, four ways.

use partask::{RuntimeHandle, TaskRuntime};
use pyjama::{Schedule, Team};

/// Sub-arrays at or below this length use insertion sort.
pub const INSERTION_CUTOFF: usize = 24;

/// Below this length, parallel variants stop spawning and recurse
/// sequentially.
pub const PAR_CUTOFF: usize = 2048;

fn insertion_sort<T: Ord>(v: &mut [T]) {
    for i in 1..v.len() {
        let mut j = i;
        while j > 0 && v[j - 1] > v[j] {
            v.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// Median-of-three pivot selection: moves the median of
/// (first, middle, last) to the end and returns it as pivot index.
fn pivot_to_end<T: Ord>(v: &mut [T]) {
    let n = v.len();
    let (a, b, c) = (0, n / 2, n - 1);
    // Order a, b, c so the median ends at c... simple 3-sort:
    if v[a] > v[b] {
        v.swap(a, b);
    }
    if v[b] > v[c] {
        v.swap(b, c);
    }
    if v[a] > v[b] {
        v.swap(a, b);
    }
    // Median is now at b; park it at c-1's side: put at end for Lomuto.
    v.swap(b, n - 1);
}

/// Lomuto partition around the last element; returns the pivot's
/// final index.
fn partition<T: Ord>(v: &mut [T]) -> usize {
    let n = v.len();
    let mut store = 0;
    for i in 0..n - 1 {
        if v[i] <= v[n - 1] {
            v.swap(i, store);
            store += 1;
        }
    }
    v.swap(store, n - 1);
    store
}

/// Sequential quicksort (median-of-three + insertion cutoff).
pub fn quicksort_seq<T: Ord>(v: &mut [T]) {
    if v.len() <= INSERTION_CUTOFF {
        insertion_sort(v);
        return;
    }
    pivot_to_end(v);
    let p = partition(v);
    let (lo, hi) = v.split_at_mut(p);
    quicksort_seq(lo);
    quicksort_seq(&mut hi[1..]);
}

/// Parallel Task version: spawn the left half as a task, recurse into
/// the right, join. Nested joins are safe because partask workers
/// *help* while waiting.
pub fn quicksort_partask<T: Ord + Send + 'static>(rt: &TaskRuntime, v: &mut Vec<T>) {
    let data = std::mem::take(v);
    let sorted = qs_task(&rt.handle(), data);
    *v = sorted;
}

fn qs_task<T: Ord + Send + 'static>(rt: &RuntimeHandle, mut v: Vec<T>) -> Vec<T> {
    if v.len() <= PAR_CUTOFF {
        quicksort_seq(&mut v);
        return v;
    }
    pivot_to_end(&mut v);
    let p = partition(&mut v);
    let mut right = v.split_off(p);
    let pivot = right.remove(0);
    let left = v;
    let rt2 = rt.clone();
    let left_task = rt.spawn(move || qs_task(&rt2, left));
    let mut right_sorted = qs_task(rt, right);
    let mut out = left_task.join().expect("left sort task");
    out.push(pivot);
    out.append(&mut right_sorted);
    out
}

/// Raw-threads version: recursive `std::thread::spawn` up to a depth
/// limit (the classic "standard Java threads" student solution, with
/// its thread-explosion hazard capped).
pub fn quicksort_threads<T: Ord + Send + 'static>(v: &mut Vec<T>, max_depth: u32) {
    let data = std::mem::take(v);
    *v = qs_threads(data, max_depth);
}

fn qs_threads<T: Ord + Send + 'static>(mut v: Vec<T>, depth: u32) -> Vec<T> {
    if depth == 0 || v.len() <= PAR_CUTOFF {
        quicksort_seq(&mut v);
        return v;
    }
    pivot_to_end(&mut v);
    let p = partition(&mut v);
    let mut right = v.split_off(p);
    let pivot = right.remove(0);
    let left = v;
    let left_handle = std::thread::spawn(move || qs_threads(left, depth - 1));
    let mut right_sorted = qs_threads(right, depth - 1);
    let mut out = left_handle.join().expect("left sort thread");
    out.push(pivot);
    out.append(&mut right_sorted);
    out
}

/// Pyjama version: sample-based bucketing into one bucket per team
/// thread, each bucket sorted inside a parallel region, buckets
/// concatenated in order. This is how quicksort is phrased when the
/// tool offers worksharing rather than task recursion — and the
/// comparison between the two phrasings is exactly the research
/// nugget of project 2.
pub fn quicksort_pyjama(team: &Team, v: &mut Vec<u64>) {
    let n = v.len();
    let t = team.num_threads();
    if n <= PAR_CUTOFF || t == 1 {
        quicksort_seq(v);
        return;
    }
    // Choose t-1 splitters from a small sorted sample.
    let mut sample: Vec<u64> = v.iter().step_by((n / 64).max(1)).copied().collect();
    sample.sort_unstable();
    let splitters: Vec<u64> = (1..t)
        .map(|k| sample[k * sample.len() / t])
        .collect();
    // Scatter into buckets (sequential; the sort dominates).
    let mut buckets: Vec<Vec<u64>> = (0..t).map(|_| Vec::with_capacity(n / t + 1)).collect();
    for &x in v.iter() {
        let b = splitters.partition_point(|&s| s <= x);
        buckets[b].push(x);
    }
    // Sort buckets in a parallel region.
    let slots: Vec<parking_lot::Mutex<Vec<u64>>> =
        buckets.into_iter().map(parking_lot::Mutex::new).collect();
    let slots_ref = &slots;
    team.parallel(|ctx| {
        ctx.pfor(0..t, Schedule::Dynamic(1), |b| {
            let mut bucket = slots_ref[b].lock();
            quicksort_seq(&mut bucket);
        });
    });
    // Concatenate.
    v.clear();
    for slot in slots {
        v.append(&mut slot.into_inner());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    fn is_sorted<T: Ord>(v: &[T]) -> bool {
        v.windows(2).all(|w| w[0] <= w[1])
    }

    fn check_all_variants(input: Vec<u64>) {
        let mut expected = input.clone();
        expected.sort_unstable();

        let mut a = input.clone();
        quicksort_seq(&mut a);
        assert_eq!(a, expected, "seq");

        let rt = TaskRuntime::builder().workers(2).build();
        let mut b = input.clone();
        quicksort_partask(&rt, &mut b);
        assert_eq!(b, expected, "partask");
        rt.shutdown();

        let mut c = input.clone();
        quicksort_threads(&mut c, 3);
        assert_eq!(c, expected, "threads");

        let team = Team::new(3);
        let mut d = input;
        quicksort_pyjama(&team, &mut d);
        assert_eq!(d, expected, "pyjama");
    }

    #[test]
    fn sorts_random_input() {
        check_all_variants(data::random(10_000, 42));
    }

    #[test]
    fn sorts_adversarial_inputs() {
        check_all_variants(data::sorted(5000));
        check_all_variants(data::reversed(5000));
        check_all_variants(data::few_unique(5000, 3, 7));
        check_all_variants(data::nearly_sorted(5000, 50, 8));
    }

    #[test]
    fn sorts_tiny_inputs() {
        check_all_variants(vec![]);
        check_all_variants(vec![1]);
        check_all_variants(vec![2, 1]);
        check_all_variants(vec![3, 3, 3]);
    }

    #[test]
    fn insertion_cutoff_path() {
        let mut v = data::random(INSERTION_CUTOFF, 1);
        quicksort_seq(&mut v);
        assert!(is_sorted(&v));
    }

    #[test]
    fn large_partask_sort_exercises_parallel_path() {
        let rt = TaskRuntime::builder().workers(4).build();
        let mut v = data::random(100_000, 5);
        let mut expected = v.clone();
        expected.sort_unstable();
        quicksort_partask(&rt, &mut v);
        assert_eq!(v, expected);
        // The input is far above PAR_CUTOFF, so tasks must have been
        // spawned beyond the root.
        assert!(rt.stats().spawned >= 2, "parallel path not taken");
        rt.shutdown();
    }

    #[test]
    fn generic_over_ord_types() {
        let mut words = vec!["pear", "apple", "fig", "banana"];
        quicksort_seq(&mut words);
        assert_eq!(words, vec!["apple", "banana", "fig", "pear"]);
    }

    #[test]
    fn data_generators_shapes() {
        assert!(is_sorted(&data::sorted(100)));
        assert!(data::reversed(100).windows(2).all(|w| w[0] >= w[1]));
        let fu = data::few_unique(1000, 4, 2);
        let mut uniq = fu.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() <= 4);
    }
}
