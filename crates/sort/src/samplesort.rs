//! Sample sort: the scalable bucket-sort extension.
//!
//! Oversample, pick splitters, scatter into buckets in parallel
//! (per-task local buckets merged afterwards — no shared-bucket
//! locking), sort buckets in parallel, concatenate. This is the
//! algorithm the PARC lab's multicore servers would actually want for
//! big arrays, included as the "beyond the course" extension.

use partask::TaskRuntime;

use crate::quicksort::quicksort_seq;

/// Sample sort on the partask runtime with `buckets` buckets.
pub fn samplesort(rt: &TaskRuntime, v: &mut Vec<u64>, buckets: usize) {
    let n = v.len();
    let buckets = buckets.clamp(1, n.max(1));
    if n <= 4096 || buckets == 1 {
        quicksort_seq(v);
        return;
    }
    // 1. Oversampled splitters.
    let oversample = 8;
    let mut sample: Vec<u64> = v
        .iter()
        .step_by((n / (buckets * oversample)).max(1))
        .copied()
        .collect();
    sample.sort_unstable();
    let splitters: Vec<u64> = (1..buckets)
        .map(|k| sample[k * sample.len() / buckets])
        .collect();
    let splitters = std::sync::Arc::new(splitters);

    // 2. Parallel scatter: each task buckets its own slice locally.
    let data = std::sync::Arc::new(std::mem::take(v));
    let tasks = rt.workers().max(2);
    let scatter = rt.spawn_multi(tasks, {
        let data = std::sync::Arc::clone(&data);
        let splitters = std::sync::Arc::clone(&splitters);
        move |t| {
            let lo = data.len() * t / tasks;
            let hi = data.len() * (t + 1) / tasks;
            let mut local: Vec<Vec<u64>> = (0..buckets).map(|_| Vec::new()).collect();
            for &x in &data[lo..hi] {
                let b = splitters.partition_point(|&s| s <= x);
                local[b].push(x);
            }
            local
        }
    });
    let locals = scatter.join_all().expect("scatter tasks");

    // 3. Merge local buckets, then sort each bucket in parallel.
    let mut merged: Vec<Vec<u64>> = (0..buckets).map(|_| Vec::new()).collect();
    for local in locals {
        for (b, mut part) in local.into_iter().enumerate() {
            merged[b].append(&mut part);
        }
    }
    let sort_handles: Vec<_> = merged
        .into_iter()
        .map(|mut bucket| {
            rt.spawn(move || {
                quicksort_seq(&mut bucket);
                bucket
            })
        })
        .collect();

    // 4. Concatenate in bucket order.
    let mut out = Vec::with_capacity(n);
    for h in sort_handles {
        out.append(&mut h.join().expect("bucket sort"));
    }
    *v = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn sorts_correctly_across_shapes() {
        let rt = TaskRuntime::builder().workers(3).build();
        for input in [
            data::random(50_000, 1),
            data::sorted(10_000),
            data::reversed(10_000),
            data::few_unique(20_000, 7, 2),
            data::random(100, 3), // below the cutoff: sequential path
            vec![],
        ] {
            let mut expected = input.clone();
            expected.sort_unstable();
            let mut v = input;
            samplesort(&rt, &mut v, 8);
            assert_eq!(v, expected);
        }
        rt.shutdown();
    }

    #[test]
    fn bucket_counts_out_of_range_are_clamped() {
        let rt = TaskRuntime::builder().workers(2).build();
        let mut v = data::random(10_000, 4);
        let mut expected = v.clone();
        expected.sort_unstable();
        samplesort(&rt, &mut v, 0); // clamps to 1 -> sequential
        assert_eq!(v, expected);
        let mut w = data::random(10_000, 5);
        let mut expected_w = w.clone();
        expected_w.sort_unstable();
        samplesort(&rt, &mut w, 1_000_000); // clamps to n
        assert_eq!(w, expected_w);
        rt.shutdown();
    }

    #[test]
    fn preserves_multiset() {
        let rt = TaskRuntime::builder().workers(2).build();
        let input = data::few_unique(30_000, 11, 6);
        let mut counts_before = std::collections::HashMap::new();
        for &x in &input {
            *counts_before.entry(x).or_insert(0u32) += 1;
        }
        let mut v = input;
        samplesort(&rt, &mut v, 6);
        let mut counts_after = std::collections::HashMap::new();
        for &x in &v {
            *counts_after.entry(x).or_insert(0u32) += 1;
        }
        assert_eq!(counts_before, counts_after);
        rt.shutdown();
    }
}
