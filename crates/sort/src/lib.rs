//! # parsort — parallel sorting three ways
//!
//! SoftEng 751 **project 2**: "developing parallel implementations of
//! the classical quicksort algorithm … the students had to implement
//! three versions using object-oriented language support (using
//! Parallel Task, Pyjama and standard Java threads and concurrency
//! classes)."
//!
//! This crate reproduces all three, plus the usual baselines and
//! extensions:
//!
//! * [`quicksort::quicksort_seq`] — the sequential reference (with an
//!   insertion-sort cutoff, median-of-three pivoting);
//! * [`quicksort::quicksort_partask`] — recursive task spawning on
//!   the [`partask`] runtime (the Parallel Task version; relies on
//!   helping joins for nested fork/join);
//! * [`quicksort::quicksort_pyjama`] — a worksharing phrasing on a
//!   [`pyjama`] team: partition into per-thread buckets, sort buckets
//!   in a parallel region, concatenate (how one writes quicksort when
//!   the tool is OpenMP-shaped);
//! * [`quicksort::quicksort_threads`] — raw `std::thread` recursion
//!   with a depth limit (the "standard threads" version);
//! * [`mergesort::mergesort_seq`] / [`mergesort::mergesort_partask`]
//!   — the stable comparison-sort counterpart;
//! * [`samplesort::samplesort`] — the bucket/sample sort extension.

pub mod mergesort;
pub mod quicksort;
pub mod samplesort;

pub use quicksort::{
    quicksort_partask, quicksort_pyjama, quicksort_seq, quicksort_threads, INSERTION_CUTOFF,
};

/// Deterministic input generators shared by tests and benches.
pub mod data {
    use parc_util::rng::Xoshiro256;

    /// Uniform random `u64`s.
    #[must_use]
    pub fn random(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    /// Already sorted (adversarial for naive pivots).
    #[must_use]
    pub fn sorted(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    /// Reverse sorted.
    #[must_use]
    pub fn reversed(n: usize) -> Vec<u64> {
        (0..n as u64).rev().collect()
    }

    /// Few distinct values (duplicate-heavy).
    #[must_use]
    pub fn few_unique(n: usize, distinct: u64, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n).map(|_| rng.next_below(distinct)).collect()
    }

    /// Nearly sorted: sorted with `swaps` random transpositions.
    #[must_use]
    pub fn nearly_sorted(n: usize, swaps: usize, seed: u64) -> Vec<u64> {
        let mut v = sorted(n);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..swaps {
            let i = rng.gen_range_usize(0..n);
            let j = rng.gen_range_usize(0..n);
            v.swap(i, j);
        }
        v
    }
}
