//! A minimal JSON parser, used to round-trip-check the Chrome-trace
//! exporter in tests and CI without external dependencies.
//!
//! Full RFC 8259 value grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null); not performance-tuned — traces it checks
//! are a few megabytes at most.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Later duplicate keys win.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if this is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON document. Trailing non-whitespace is an
/// error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &'static str, msg: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", "expected `true`").map(|()| Json::Bool(true)),
            Some(b'f') => self.literal("false", "expected `false`").map(|()| Json::Bool(false)),
            Some(b'n') => self.literal("null", "expected `null`").map(|()| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected `{`")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected `:` after object key")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Json::Obj(map)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pair handling.
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            self.literal("\\u", "expected low surrogate")?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid — re-decode it.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Escape `s` as the *contents* of a JSON string literal (no quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#" {"a": [1, 2, {"b": null}], "c": {"d": true}} "#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].get("b"),
            Some(&Json::Null)
        );
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\nb\t\"q\" A 😀 é""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\nb\t\"q\" A 😀 é");
    }

    #[test]
    fn escape_round_trips() {
        let original = "line1\nline2\t\"quoted\" back\\slash é 😀 \u{1}";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str().unwrap(), original);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("42 garbage").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
        assert_eq!(parse(" [ ] ").unwrap(), Json::Arr(vec![]));
    }
}
