//! The collector: per-thread lock-free event rings, thread and track
//! registration, span causality, and the drained [`Trace`].
//!
//! Design: every recording thread owns an append-only ring of
//! `Copy` events. The owner is the only writer; it stores the slot and
//! then publishes it with a `Release` bump of `head`. Readers take an
//! `Acquire` load of `head` and read only published slots, so the hot
//! path is a slot write plus one atomic store — no locks, no
//! allocation (the ring is allocated once, at the thread's first event
//! for a given collector). A full ring drops further events and counts
//! the drops rather than blocking or reallocating.

use std::cell::{RefCell, UnsafeCell};
use std::collections::BTreeMap;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

use parking_lot::Mutex;

use crate::event::{Event, EventKind, MarkKind, SpanKind};
use crate::metrics::MetricsRegistry;

/// Default per-thread ring capacity, in events.
pub const DEFAULT_THREAD_CAPACITY: usize = 1 << 15;

/// Collector-id allocator (process-global so thread-local caches can
/// key entries by collector across collector lifetimes).
static NEXT_COLLECTOR_ID: AtomicU64 = AtomicU64::new(1);

/// One thread's event ring. Owner-write, many-reader.
pub(crate) struct ThreadLog {
    tid: u32,
    name: String,
    /// Published event count; slots `[0, head)` are readable.
    head: AtomicUsize,
    dropped: AtomicU64,
    slots: Box<[UnsafeCell<MaybeUninit<Event>>]>,
}

// SAFETY: slots below `head` are written exactly once by the owning
// thread *before* the Release store that publishes them, and never
// written again; readers only touch slots below an Acquire load of
// `head`. Slots at or above `head` are accessed by nobody but the
// owner.
unsafe impl Sync for ThreadLog {}
unsafe impl Send for ThreadLog {}

impl ThreadLog {
    fn new(tid: u32, name: String, capacity: usize) -> Self {
        let slots: Vec<UnsafeCell<MaybeUninit<Event>>> =
            (0..capacity).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
        Self {
            tid,
            name,
            head: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Append one event. Called only by the owning thread; lock- and
    /// allocation-free. A full ring drops the event.
    fn push(&self, ev: Event) {
        let h = self.head.load(Ordering::Relaxed);
        if h >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: slot `h` is unpublished (>= head), so no reader
        // touches it, and only the owner thread writes.
        unsafe { (*self.slots[h].get()).write(ev) };
        self.head.store(h + 1, Ordering::Release);
    }

    /// Copy out every published event, in recording order.
    fn read_published(&self, out: &mut Vec<Event>) {
        let h = self.head.load(Ordering::Acquire);
        for slot in &self.slots[..h] {
            // SAFETY: slots below an Acquire-loaded head are
            // initialised and never rewritten; `Event: Copy`.
            out.push(unsafe { (*slot.get()).assume_init_read() });
        }
    }
}

pub(crate) struct CollectorInner {
    id: u64,
    enabled: AtomicBool,
    thread_capacity: usize,
    epoch: Instant,
    /// Span-id allocator; 0 is reserved for "no span".
    next_span: AtomicU64,
    next_tid: AtomicU32,
    next_pid: AtomicU32,
    threads: Mutex<Vec<Arc<ThreadLog>>>,
    tracks: Mutex<Vec<(u32, String)>>,
    metrics: MetricsRegistry,
}

/// One thread's cached registration with one collector, plus its span
/// stack (for parent/child causality).
struct TlEntry {
    collector: u64,
    /// Liveness probe so dead collectors' entries can be pruned.
    alive: Weak<CollectorInner>,
    log: Arc<ThreadLog>,
    stack: Vec<u64>,
}

thread_local! {
    static TL: RefCell<Vec<TlEntry>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with the calling thread's entry for `inner`, registering
/// the thread (allocating its ring) on first use.
fn with_entry<R>(inner: &Arc<CollectorInner>, f: impl FnOnce(&mut TlEntry) -> R) -> R {
    TL.with(|tl| {
        let mut entries = tl.borrow_mut();
        let pos = entries.iter().position(|e| e.collector == inner.id);
        let pos = match pos {
            Some(p) => p,
            None => {
                // House-keeping: forget entries whose collector died.
                entries.retain(|e| e.alive.strong_count() > 0);
                let tid = inner.next_tid.fetch_add(1, Ordering::Relaxed);
                let name = std::thread::current()
                    .name()
                    .map_or_else(|| format!("thread-{tid}"), str::to_string);
                let log = Arc::new(ThreadLog::new(tid, name, inner.thread_capacity));
                inner.threads.lock().push(Arc::clone(&log));
                entries.push(TlEntry {
                    collector: inner.id,
                    alive: Arc::downgrade(inner),
                    log,
                    stack: Vec::new(),
                });
                entries.len() - 1
            }
        };
        f(&mut entries[pos])
    })
}

impl CollectorInner {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn emit_mark(self: &Arc<Self>, pid: u32, what: MarkKind) {
        let ts_ns = self.now_ns();
        with_entry(self, |e| {
            let tid = e.log.tid;
            e.log.push(Event { ts_ns, pid, tid, kind: EventKind::Mark { what } });
        });
    }

    fn begin_span(self: &Arc<Self>, pid: u32, what: SpanKind) -> u64 {
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        let ts_ns = self.now_ns();
        with_entry(self, |e| {
            let parent = e.stack.last().copied().unwrap_or(0);
            e.stack.push(id);
            let tid = e.log.tid;
            e.log.push(Event {
                ts_ns,
                pid,
                tid,
                kind: EventKind::SpanBegin { id, parent, what },
            });
        });
        id
    }

    fn end_span(self: &Arc<Self>, pid: u32, id: u64, what: SpanKind) {
        let ts_ns = self.now_ns();
        with_entry(self, |e| {
            // Truncate through `id` so a guard dropped out of order
            // cannot leave stale frames behind.
            if let Some(pos) = e.stack.iter().rposition(|&s| s == id) {
                e.stack.truncate(pos);
            }
            let tid = e.log.tid;
            e.log.push(Event { ts_ns, pid, tid, kind: EventKind::SpanEnd { id, what } });
        });
    }

    fn current_span(self: &Arc<Self>) -> u64 {
        with_entry(self, |e| e.stack.last().copied().unwrap_or(0))
    }
}

/// A cheap, cloneable recording handle. Instrumented code stores one
/// of these *unconditionally* — the disabled handle is a `None` inside
/// and every operation is an inlineable early-out, so tracing costs
/// nothing when no collector is attached.
#[derive(Clone, Default)]
pub struct TraceHandle {
    inner: Option<Arc<CollectorInner>>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("attached", &self.inner.is_some())
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl TraceHandle {
    /// A handle that records nothing. This is also the `Default`.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Is event recording currently on? Checks both the attachment and
    /// the collector's runtime toggle.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        match &self.inner {
            Some(c) => c.enabled.load(Ordering::Relaxed),
            None => false,
        }
    }

    #[inline]
    fn live(&self) -> Option<&Arc<CollectorInner>> {
        match &self.inner {
            Some(c) if c.enabled.load(Ordering::Relaxed) => Some(c),
            _ => None,
        }
    }

    /// Record an instantaneous event.
    #[inline]
    pub fn mark(&self, pid: u32, what: MarkKind) {
        if let Some(c) = self.live() {
            c.emit_mark(pid, what);
        }
    }

    /// Open a span; it ends (emitting the matching end event on the
    /// same thread) when the returned guard drops. Guards must stay on
    /// the thread that opened them.
    #[inline]
    #[must_use]
    pub fn span(&self, pid: u32, what: SpanKind) -> Span<'_> {
        let id = match self.live() {
            Some(c) => c.begin_span(pid, what),
            None => 0,
        };
        Span { trace: self, pid, id, what }
    }

    /// The span currently open on the calling thread (0 = none).
    #[must_use]
    pub fn current_span(&self) -> u64 {
        match self.live() {
            Some(c) => c.current_span(),
            None => 0,
        }
    }

    /// Register a named track (one per instrumented runtime; becomes a
    /// Chrome `pid`). Returns 0 — the untracked id — when no collector
    /// is attached. Registration works even while recording is
    /// toggled off, so a runtime built against a disabled collector is
    /// fully wired the moment recording is enabled.
    #[must_use]
    pub fn register_track(&self, name: &str) -> u32 {
        match &self.inner {
            Some(c) => {
                let pid = c.next_pid.fetch_add(1, Ordering::Relaxed);
                c.tracks.lock().push((pid, name.to_string()));
                pid
            }
            None => 0,
        }
    }

    /// The collector's metrics registry, when one is attached.
    #[must_use]
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|c| &c.metrics)
    }

    /// True when a collector is attached (even if recording is
    /// currently toggled off).
    #[must_use]
    pub fn is_attached(&self) -> bool {
        self.inner.is_some()
    }
}

/// Guard for an open span; emits the end event on drop.
pub struct Span<'a> {
    trace: &'a TraceHandle,
    pid: u32,
    id: u64,
    what: SpanKind,
}

impl Span<'_> {
    /// The span's collector-unique id (0 when recording is off).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        // A span that began must end even if the collector was toggled
        // off mid-span, or B/E pairs would unbalance.
        if self.id != 0 {
            if let Some(c) = &self.trace.inner {
                c.end_span(self.pid, self.id, self.what);
            }
        }
    }
}

/// A named track (≙ Chrome process): one per instrumented runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Track {
    /// Track id, used as the Chrome `pid`.
    pub pid: u32,
    /// Runtime name, e.g. `partask` or `websim`.
    pub name: String,
}

/// A recording lane (≙ Chrome thread): one per OS thread that emitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lane {
    /// Lane id, used as the Chrome `tid`.
    pub tid: u32,
    /// The OS thread's name at registration.
    pub name: String,
    /// Events this lane lost to a full ring, as of the snapshot.
    pub dropped: u64,
}

/// One completed span reassembled from its begin/end events.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompletedSpan {
    /// Collector-unique span id.
    pub id: u64,
    /// Enclosing span on the same thread (0 = root).
    pub parent: u64,
    /// What the span is.
    pub what: SpanKind,
    /// Track id.
    pub pid: u32,
    /// Lane id.
    pub tid: u32,
    /// Start, nanoseconds since the collector epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the collector epoch.
    pub end_ns: u64,
    /// True when the span had no end event at snapshot time and
    /// `end_ns` is a synthetic, conservative stand-in (the last
    /// timestamp in the trace).
    pub open: bool,
}

impl CompletedSpan {
    /// The span's duration in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A drained snapshot of everything recorded so far.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All events, sorted by timestamp (ties keep per-lane recording
    /// order, so same-lane span pairs stay correctly nested).
    pub events: Vec<Event>,
    /// Registered tracks, in registration order.
    pub tracks: Vec<Track>,
    /// Recording lanes, in registration order.
    pub lanes: Vec<Lane>,
    /// Events lost to full rings.
    pub dropped: u64,
}

impl Trace {
    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Per-event-name occurrence counts (span begin/end pairs count
    /// once). Deterministic for seeded workloads — this is the map the
    /// tracing tests compare across reruns and pool sizes.
    #[must_use]
    pub fn counts_by_name(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for ev in &self.events {
            if matches!(ev.kind, EventKind::SpanEnd { .. }) {
                continue;
            }
            *counts.entry(ev.name()).or_insert(0) += 1;
        }
        counts
    }

    /// Reassemble spans from begin/end pairs, ordered by start time.
    /// A span still open at snapshot time (begin without end — e.g. a
    /// mid-run snapshot) is emitted with a synthetic end at the
    /// trace's last timestamp and flagged [`CompletedSpan::open`], so
    /// downstream consumers (timelines, critical-path weights) see a
    /// conservative duration instead of silently losing the span.
    #[must_use]
    pub fn spans(&self) -> Vec<CompletedSpan> {
        let mut open: BTreeMap<u64, (u64, SpanKind, u32, u32, u64)> = BTreeMap::new();
        let mut out = Vec::new();
        let last_ts = self.events.last().map_or(0, |e| e.ts_ns);
        for ev in &self.events {
            match ev.kind {
                EventKind::SpanBegin { id, parent, what } => {
                    open.insert(id, (parent, what, ev.pid, ev.tid, ev.ts_ns));
                }
                EventKind::SpanEnd { id, .. } => {
                    if let Some((parent, what, pid, tid, start_ns)) = open.remove(&id) {
                        out.push(CompletedSpan {
                            id,
                            parent,
                            what,
                            pid,
                            tid,
                            start_ns,
                            end_ns: ev.ts_ns,
                            open: false,
                        });
                    }
                }
                EventKind::Mark { .. } => {}
            }
        }
        for (id, (parent, what, pid, tid, start_ns)) in open {
            out.push(CompletedSpan {
                id,
                parent,
                what,
                pid,
                tid,
                start_ns,
                end_ns: last_ts.max(start_ns),
                open: true,
            });
        }
        out.sort_by_key(|s| (s.start_ns, s.id));
        out
    }

    /// Name of track `pid` (`untracked` for 0 / unregistered ids).
    #[must_use]
    pub fn track_name(&self, pid: u32) -> &str {
        self.tracks
            .iter()
            .find(|t| t.pid == pid)
            .map_or("untracked", |t| t.name.as_str())
    }

    /// Name of lane `tid` (`?` if unknown).
    #[must_use]
    pub fn lane_name(&self, tid: u32) -> &str {
        self.lanes
            .iter()
            .find(|l| l.tid == tid)
            .map_or("?", |l| l.name.as_str())
    }
}

/// Owns the rings and the metrics registry; hand out [`TraceHandle`]s
/// with [`Collector::handle`] and read results with
/// [`Collector::snapshot`].
pub struct Collector {
    inner: Arc<CollectorInner>,
}

impl Collector {
    /// A collector with the default per-thread ring capacity,
    /// recording enabled.
    #[must_use]
    pub fn new() -> Self {
        Self::with_thread_capacity(DEFAULT_THREAD_CAPACITY)
    }

    /// A collector whose per-thread rings hold `capacity` events each.
    /// Overflowing threads drop further events (counted in
    /// [`Trace::dropped`]).
    #[must_use]
    pub fn with_thread_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "a ring needs at least one slot");
        Self {
            inner: Arc::new(CollectorInner {
                id: NEXT_COLLECTOR_ID.fetch_add(1, Ordering::Relaxed),
                enabled: AtomicBool::new(true),
                thread_capacity: capacity,
                epoch: Instant::now(),
                next_span: AtomicU64::new(1),
                next_tid: AtomicU32::new(1),
                next_pid: AtomicU32::new(1),
                threads: Mutex::new(Vec::new()),
                tracks: Mutex::new(Vec::new()),
                metrics: MetricsRegistry::new(),
            }),
        }
    }

    /// A recording handle for instrumented code.
    #[must_use]
    pub fn handle(&self) -> TraceHandle {
        TraceHandle { inner: Some(Arc::clone(&self.inner)) }
    }

    /// Toggle event recording at runtime. Registration (tracks,
    /// counters) is unaffected.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Is event recording on?
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// The collector's metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Events lost to full rings so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner
            .threads
            .lock()
            .iter()
            .map(|t| t.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Drain everything published so far into a [`Trace`].
    /// Non-destructive: recording continues and a later snapshot
    /// includes these events again.
    #[must_use]
    pub fn snapshot(&self) -> Trace {
        let threads = self.inner.threads.lock();
        let mut events = Vec::new();
        let mut lanes = Vec::with_capacity(threads.len());
        let mut dropped = 0;
        for log in threads.iter() {
            log.read_published(&mut events);
            let lane_dropped = log.dropped.load(Ordering::Relaxed);
            dropped += lane_dropped;
            lanes.push(Lane { tid: log.tid, name: log.name.clone(), dropped: lane_dropped });
        }
        drop(threads);
        // Stable sort: equal timestamps keep per-lane recording order
        // (events were appended lane by lane), so B/E nesting within a
        // lane survives the merge.
        events.sort_by_key(|e| e.ts_ns);
        let tracks = self
            .inner
            .tracks
            .lock()
            .iter()
            .map(|(pid, name)| Track { pid: *pid, name: name.clone() })
            .collect();
        Trace { events, tracks, lanes, dropped }
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Outcome;

    #[test]
    fn disabled_handle_records_nothing() {
        let h = TraceHandle::disabled();
        assert!(!h.enabled());
        h.mark(0, MarkKind::Steal { victim: 1 });
        let s = h.span(0, SpanKind::TaskRun { task: 1 });
        assert_eq!(s.id(), 0);
        drop(s);
        assert_eq!(h.register_track("x"), 0);
        assert_eq!(h.current_span(), 0);
        assert!(h.metrics().is_none());
    }

    #[test]
    fn span_pairs_and_marks_round_trip() {
        let col = Collector::new();
        let h = col.handle();
        let pid = h.register_track("test");
        {
            let outer = h.span(pid, SpanKind::Crawl { pages: 2 });
            assert!(outer.id() > 0);
            {
                let _inner = h.span(pid, SpanKind::FetchAttempt { page: 0, attempt: 1 });
                h.mark(
                    pid,
                    MarkKind::TaskOutcome { task: 7, outcome: Outcome::Completed },
                );
            }
        }
        let trace = col.snapshot();
        assert_eq!(trace.len(), 5); // 2 begins + 2 ends + 1 mark
        let spans = trace.spans();
        assert_eq!(spans.len(), 2);
        let crawl = spans.iter().find(|s| s.what.name() == "crawl").unwrap();
        let attempt = spans.iter().find(|s| s.what.name() == "fetch.attempt").unwrap();
        assert_eq!(attempt.parent, crawl.id, "nesting must set causality");
        assert_eq!(crawl.parent, 0);
        assert!(attempt.start_ns >= crawl.start_ns);
        assert!(attempt.end_ns <= crawl.end_ns);
        assert_eq!(trace.counts_by_name()["task.outcome"], 1);
        assert_eq!(trace.counts_by_name()["crawl"], 1);
    }

    #[test]
    fn runtime_toggle_stops_recording() {
        let col = Collector::new();
        let h = col.handle();
        let pid = h.register_track("t");
        h.mark(pid, MarkKind::Steal { victim: 0 });
        col.set_enabled(false);
        assert!(!h.enabled());
        assert!(h.is_attached());
        h.mark(pid, MarkKind::Steal { victim: 0 });
        col.set_enabled(true);
        h.mark(pid, MarkKind::Steal { victim: 0 });
        assert_eq!(col.snapshot().len(), 2);
    }

    #[test]
    fn toggling_off_mid_span_still_balances() {
        let col = Collector::new();
        let h = col.handle();
        let s = h.span(1, SpanKind::RetryOp { key: 3 });
        col.set_enabled(false);
        drop(s);
        let trace = col.snapshot();
        assert_eq!(trace.len(), 2, "begin and end must both be present");
        assert_eq!(trace.spans().len(), 1);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let col = Collector::with_thread_capacity(4);
        let h = col.handle();
        for v in 0..10 {
            h.mark(0, MarkKind::Steal { victim: v });
        }
        let trace = col.snapshot();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.dropped, 6);
        assert_eq!(col.dropped(), 6);
        // The loss is attributed to the overflowing lane, not just the
        // trace-wide total.
        assert_eq!(trace.lanes.len(), 1);
        assert_eq!(trace.lanes[0].dropped, 6);
    }

    #[test]
    fn open_span_at_snapshot_is_emitted_with_open_flag() {
        let col = Collector::new();
        let h = col.handle();
        let outer = h.span(1, SpanKind::Crawl { pages: 1 });
        drop(h.span(1, SpanKind::FetchAttempt { page: 0, attempt: 1 }));
        // Snapshot while `outer` is still open: it must appear as a
        // synthetic-end span flagged `open`, covering the trace so far.
        let spans = col.snapshot().spans();
        assert_eq!(spans.len(), 2);
        let crawl = spans.iter().find(|s| s.what.name() == "crawl").unwrap();
        let attempt = spans.iter().find(|s| s.what.name() == "fetch.attempt").unwrap();
        assert!(crawl.open, "unfinished span must be flagged open");
        assert!(!attempt.open);
        assert!(crawl.end_ns >= attempt.end_ns, "synthetic end covers the trace");
        drop(outer);
        let spans = col.snapshot().spans();
        assert!(spans.iter().all(|s| !s.open), "all spans closed after drop");
    }

    #[test]
    fn threads_get_distinct_lanes() {
        let col = Collector::new();
        let h = col.handle();
        h.mark(0, MarkKind::Steal { victim: 0 });
        let h2 = h.clone();
        std::thread::Builder::new()
            .name("lane-test".into())
            .spawn(move || h2.mark(0, MarkKind::Steal { victim: 1 }))
            .unwrap()
            .join()
            .unwrap();
        let trace = col.snapshot();
        assert_eq!(trace.lanes.len(), 2);
        assert!(trace.lanes.iter().any(|l| l.name == "lane-test"));
        let tids: std::collections::BTreeSet<u32> =
            trace.events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2);
    }

    #[test]
    fn two_collectors_do_not_cross_talk() {
        let a = Collector::new();
        let b = Collector::new();
        a.handle().mark(0, MarkKind::Steal { victim: 0 });
        b.handle().mark(0, MarkKind::BarrierPoison { member: 1 });
        assert_eq!(a.snapshot().counts_by_name().get("barrier.poison"), None);
        assert_eq!(b.snapshot().counts_by_name().get("sched.steal"), None);
        assert_eq!(a.snapshot().len(), 1);
        assert_eq!(b.snapshot().len(), 1);
    }

    #[test]
    fn tracks_register_in_order() {
        let col = Collector::new();
        let h = col.handle();
        let p1 = h.register_track("alpha");
        let p2 = h.register_track("beta");
        assert_ne!(p1, 0);
        assert_ne!(p2, p1);
        let trace = col.snapshot();
        assert_eq!(trace.track_name(p1), "alpha");
        assert_eq!(trace.track_name(p2), "beta");
        assert_eq!(trace.track_name(0), "untracked");
    }
}
