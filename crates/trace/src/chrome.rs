//! Chrome Trace Event Format exporter.
//!
//! Emits the `{"traceEvents": [...]}` JSON that `chrome://tracing` and
//! Perfetto load directly: one *process* per registered track (i.e.
//! per instrumented runtime), one *thread* per recording OS thread,
//! `B`/`E` duration pairs for spans and `i` instants for marks.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::collector::Trace;
use crate::event::{EventKind, MarkKind, SpanKind};
use crate::json::escape;

/// Render `trace` as a Chrome Trace Event Format JSON document.
#[must_use]
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.events.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let push = |entry: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&entry);
    };

    // Metadata: name every (pid) and (pid, tid) lane actually used, so
    // the viewer shows runtime/thread names instead of bare numbers.
    let mut pids: BTreeSet<u32> = BTreeSet::new();
    let mut lanes: BTreeSet<(u32, u32)> = BTreeSet::new();
    for ev in &trace.events {
        pids.insert(ev.pid);
        lanes.insert((ev.pid, ev.tid));
    }
    for pid in &pids {
        push(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                pid,
                escape(trace.track_name(*pid)),
            ),
            &mut out,
            &mut first,
        );
    }
    for (pid, tid) in &lanes {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                pid,
                tid,
                escape(trace.lane_name(*tid)),
            ),
            &mut out,
            &mut first,
        );
    }
    // Ring-overflow metadata: one instant per overflowing lane, so a
    // viewer shows *where* the trace is incomplete.
    for lane in trace.lanes.iter().filter(|l| l.dropped > 0) {
        push(
            format!(
                "{{\"name\":\"trace_dropped_events\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"dropped\":{}}}}}",
                lane.tid, lane.dropped,
            ),
            &mut out,
            &mut first,
        );
    }

    for ev in &trace.events {
        let ts_us = ev.ts_ns as f64 / 1000.0;
        let entry = match ev.kind {
            EventKind::SpanBegin { id, parent, what } => format!(
                "{{\"name\":\"{}\",\"ph\":\"B\",\"ts\":{:.3},\"pid\":{},\"tid\":{},\
                 \"args\":{{\"span\":{},\"parent\":{}{}}}}}",
                escape(what.name()),
                ts_us,
                ev.pid,
                ev.tid,
                id,
                parent,
                span_args(what),
            ),
            EventKind::SpanEnd { id, what } => format!(
                "{{\"name\":\"{}\",\"ph\":\"E\",\"ts\":{:.3},\"pid\":{},\"tid\":{},\
                 \"args\":{{\"span\":{}}}}}",
                escape(what.name()),
                ts_us,
                ev.pid,
                ev.tid,
                id,
            ),
            EventKind::Mark { what } => format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\
                 \"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
                escape(what.name()),
                ts_us,
                ev.pid,
                ev.tid,
                mark_args(what),
            ),
        };
        push(entry, &mut out, &mut first);
    }
    // `otherData` is the Chrome-format slot for document-level
    // metadata; record the loss total so consumers need not sum lanes.
    let _ = write!(
        out,
        "\n],\"otherData\":{{\"dropped_events\":{}}}}}\n",
        trace.dropped
    );
    out
}

/// Extra `args` members for a span begin, with a leading comma.
fn span_args(what: SpanKind) -> String {
    let mut s = String::new();
    match what {
        SpanKind::TaskRun { task } => {
            let _ = write!(s, ",\"task\":{task}");
        }
        SpanKind::BarrierWait { member } | SpanKind::Region { member } => {
            let _ = write!(s, ",\"member\":{member}");
        }
        SpanKind::FetchAttempt { page, attempt } => {
            let _ = write!(s, ",\"page\":{page},\"attempt\":{attempt}");
        }
        SpanKind::Crawl { pages } => {
            let _ = write!(s, ",\"pages\":{pages}");
        }
        SpanKind::RetryOp { key } => {
            let _ = write!(s, ",\"key\":{key}");
        }
        SpanKind::MarkingTick { tick } => {
            let _ = write!(s, ",\"tick\":{tick}");
        }
    }
    s
}

/// The `args` members for a mark (no leading comma).
fn mark_args(what: MarkKind) -> String {
    match what {
        MarkKind::TaskSpawn { task, parent_span } => {
            format!("\"task\":{task},\"parent_span\":{parent_span}")
        }
        MarkKind::TaskOutcome { task, outcome } => {
            format!("\"task\":{task},\"outcome\":\"{}\"", outcome.name())
        }
        MarkKind::Steal { victim } => format!("\"victim\":{victim}"),
        MarkKind::BarrierRelease { member, waited_ns } => {
            format!("\"member\":{member},\"waited_ns\":{waited_ns}")
        }
        MarkKind::BarrierPoison { member } => format!("\"member\":{member}"),
        MarkKind::ChunkDispatch { construct, lo, len, schedule } => format!(
            "\"construct\":{construct},\"lo\":{lo},\"len\":{len},\"schedule\":\"{}\"",
            schedule.name()
        ),
        MarkKind::FetchResult { page, attempt, result } => format!(
            "\"page\":{page},\"attempt\":{attempt},\"result\":\"{}\"",
            result.name()
        ),
        MarkKind::RetryWait { key, failed_attempt, delay_ns } => {
            format!("\"key\":{key},\"failed_attempt\":{failed_attempt},\"delay_ns\":{delay_ns}")
        }
        MarkKind::BreakerTransition { from, to } => {
            format!("\"from\":\"{}\",\"to\":\"{}\"", from.name(), to.name())
        }
        MarkKind::FaultInjected { key, attempt, fault } => format!(
            "\"key\":{key},\"attempt\":{attempt},\"fault\":\"{}\"",
            fault.name()
        ),
        MarkKind::GuiProbe { latency_ns } => format!("\"latency_ns\":{latency_ns}"),
        MarkKind::ChildStart { child, incarnation } => {
            format!("\"child\":{child},\"incarnation\":{incarnation}")
        }
        MarkKind::ChildExit { child, incarnation, outcome } => format!(
            "\"child\":{child},\"incarnation\":{incarnation},\"outcome\":\"{}\"",
            outcome.name()
        ),
        MarkKind::ChildRestart { child, incarnation } => {
            format!("\"child\":{child},\"incarnation\":{incarnation}")
        }
        MarkKind::ChildEscalate { child } => format!("\"child\":{child}"),
        MarkKind::MarkingStage { stage, lane, count } => {
            format!("\"stage\":\"{}\",\"lane\":{lane},\"count\":{count}", stage.name())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::event::{FetchTag, Outcome};
    use crate::json::{parse, Json};

    fn sample_trace() -> Trace {
        let col = Collector::new();
        let h = col.handle();
        let pid = h.register_track("partask");
        {
            let _crawl = h.span(pid, SpanKind::Crawl { pages: 3 });
            {
                let _a = h.span(pid, SpanKind::FetchAttempt { page: 1, attempt: 1 });
                h.mark(
                    pid,
                    MarkKind::FetchResult { page: 1, attempt: 1, result: FetchTag::Ok },
                );
            }
            h.mark(pid, MarkKind::TaskOutcome { task: 5, outcome: Outcome::Completed });
        }
        col.snapshot()
    }

    #[test]
    fn exporter_emits_valid_json() {
        let json = to_chrome_json(&sample_trace());
        let doc = parse(&json).expect("exporter output must parse");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 1 thread_name + 2 B + 2 E + 2 i.
        assert_eq!(events.len(), 8);
        for ev in events {
            assert!(ev.get("name").unwrap().as_str().is_some());
            assert!(ev.get("ph").unwrap().as_str().is_some());
            assert!(ev.get("pid").unwrap().as_f64().is_some());
        }
    }

    #[test]
    fn span_pairs_balance_per_lane() {
        let json = to_chrome_json(&sample_trace());
        let doc = parse(&json).unwrap();
        let mut depth = 0i64;
        for ev in doc.get("traceEvents").unwrap().as_arr().unwrap() {
            match ev.get("ph").unwrap().as_str().unwrap() {
                "B" => depth += 1,
                "E" => {
                    depth -= 1;
                    assert!(depth >= 0, "E without matching B");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "every B needs a matching E");
    }

    #[test]
    fn metadata_names_tracks_and_lanes() {
        let json = to_chrome_json(&sample_trace());
        let doc = parse(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let proc_meta = events
            .iter()
            .find(|e| e.get("name") == Some(&Json::Str("process_name".into())))
            .expect("process_name metadata present");
        assert_eq!(
            proc_meta.get("args").unwrap().get("name").unwrap().as_str(),
            Some("partask")
        );
        assert!(events
            .iter()
            .any(|e| e.get("name") == Some(&Json::Str("thread_name".into()))));
    }

    #[test]
    fn dropped_events_surface_in_metadata() {
        let col = Collector::with_thread_capacity(2);
        let h = col.handle();
        for v in 0..5 {
            h.mark(0, MarkKind::Steal { victim: v });
        }
        let json = to_chrome_json(&col.snapshot());
        let doc = parse(&json).expect("valid JSON with otherData");
        assert_eq!(
            doc.get("otherData").unwrap().get("dropped_events").unwrap().as_f64(),
            Some(3.0)
        );
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let meta = events
            .iter()
            .find(|e| e.get("name") == Some(&Json::Str("trace_dropped_events".into())))
            .expect("per-lane dropped metadata present");
        assert_eq!(meta.get("args").unwrap().get("dropped").unwrap().as_f64(), Some(3.0));
        // A clean trace carries a zero total and no per-lane entries.
        let clean = to_chrome_json(&sample_trace());
        let doc = parse(&clean).unwrap();
        assert_eq!(
            doc.get("otherData").unwrap().get("dropped_events").unwrap().as_f64(),
            Some(0.0)
        );
    }

    #[test]
    fn timestamps_are_microseconds_nondecreasing() {
        let json = to_chrome_json(&sample_trace());
        let doc = parse(&json).unwrap();
        let mut last = f64::NEG_INFINITY;
        for ev in doc.get("traceEvents").unwrap().as_arr().unwrap() {
            if ev.get("ph").unwrap().as_str() == Some("M") {
                continue;
            }
            let ts = ev.get("ts").unwrap().as_f64().unwrap();
            assert!(ts >= last, "events must be time-ordered");
            last = ts;
        }
    }
}
