//! The typed event vocabulary shared by every instrumented runtime.
//!
//! Events are small `Copy` values — only numeric fields and `'static`
//! tags — so recording one is a single slot write in the emitting
//! thread's ring buffer, with no allocation and nothing to drop.

/// How a task's execution resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Outcome {
    /// The body ran to completion.
    Completed,
    /// The task resolved to `Cancelled` without running its body.
    Cancelled,
    /// A deadline watchdog cancelled the task's token.
    TimedOut,
}

impl Outcome {
    /// Stable label for export and counting.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Completed => "completed",
            Outcome::Cancelled => "cancelled",
            Outcome::TimedOut => "timed_out",
        }
    }
}

/// Which worksharing schedule dealt a chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SchedTag {
    /// One contiguous block per thread.
    Static,
    /// Fixed-size chunks dealt round-robin.
    StaticChunk,
    /// Chunks claimed from a shared counter on demand.
    Dynamic,
    /// Exponentially decreasing chunks with a floor.
    Guided,
    /// The `sections` construct's on-demand section dispatch.
    Sections,
}

impl SchedTag {
    /// Stable label for export and counting.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchedTag::Static => "static",
            SchedTag::StaticChunk => "static_chunk",
            SchedTag::Dynamic => "dynamic",
            SchedTag::Guided => "guided",
            SchedTag::Sections => "sections",
        }
    }
}

/// How one fetch attempt ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FetchTag {
    /// The page came back.
    Ok,
    /// A retryable connection-level failure.
    Transient,
    /// The transfer exceeded its budget.
    TimedOut,
    /// The attempt panicked (contained by the caller).
    Panicked,
}

impl FetchTag {
    /// Stable label for export and counting.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FetchTag::Ok => "ok",
            FetchTag::Transient => "transient",
            FetchTag::TimedOut => "timed_out",
            FetchTag::Panicked => "panicked",
        }
    }
}

/// A circuit-breaker state, as seen in transition marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum BreakerPhase {
    /// Requests flow normally.
    Closed,
    /// Requests are rejected while the dependency cools down.
    Open,
    /// One probe request is allowed through.
    HalfOpen,
}

impl BreakerPhase {
    /// Stable label for export and counting.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BreakerPhase::Closed => "closed",
            BreakerPhase::Open => "open",
            BreakerPhase::HalfOpen => "half_open",
        }
    }
}

/// Which fault an injector dealt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultTag {
    /// A retryable error.
    Transient,
    /// A timeout.
    Timeout,
    /// An injected panic.
    Panic,
    /// Extra latency, no failure.
    LatencySpike,
}

impl FaultTag {
    /// Stable label for export and counting.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultTag::Transient => "transient",
            FaultTag::Timeout => "timeout",
            FaultTag::Panic => "panic",
            FaultTag::LatencySpike => "latency_spike",
        }
    }
}

/// How one supervised child incarnation exited, as seen in
/// `sup.child_exit` marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChildTag {
    /// The child body returned success; the child is done.
    Completed,
    /// The child body returned an error.
    Failed,
    /// The child body panicked (contained by the supervisor).
    Panicked,
    /// The child observed cancellation and stopped cooperatively.
    Cancelled,
    /// The child's deadline elapsed before it finished.
    TimedOut,
}

impl ChildTag {
    /// Stable label for export and counting.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChildTag::Completed => "completed",
            ChildTag::Failed => "failed",
            ChildTag::Panicked => "panicked",
            ChildTag::Cancelled => "cancelled",
            ChildTag::TimedOut => "timed_out",
        }
    }
}

/// Which marking-pipeline ledger transition a `mark.*` observation
/// records (see `course::pipeline`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MarkingTag {
    /// A marker claimed a batch of submissions from its shard queue.
    Claim,
    /// A marker acknowledged (completed) marked submissions.
    Ack,
    /// A storm kill interrupted a marker mid-batch; unacked claims
    /// return to the ledger.
    Reclaim,
    /// A restarted marker re-marked submissions whose first marking
    /// was lost with the killed incarnation.
    Redone,
    /// Submissions shed at admission (queue full or drain overrun).
    Shed,
    /// Explorer spot-checks skipped under pressure (degraded, never
    /// silent).
    Degraded,
    /// Explorer spot-checks actually executed.
    Spot,
}

impl MarkingTag {
    /// Stable label for export and counting.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MarkingTag::Claim => "claim",
            MarkingTag::Ack => "ack",
            MarkingTag::Reclaim => "reclaim",
            MarkingTag::Redone => "redone",
            MarkingTag::Shed => "shed",
            MarkingTag::Degraded => "degraded",
            MarkingTag::Spot => "spot",
        }
    }
}

/// A duration-carrying activity: begins, does work, ends. Span begin
/// and end events share an `id` and always land on the same thread, so
/// Chrome `B`/`E` pairs nest correctly per lane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpanKind {
    /// One task body executing on a worker.
    TaskRun {
        /// The task's id.
        task: u64,
    },
    /// One team member blocked at a barrier.
    BarrierWait {
        /// Team-thread index.
        member: u32,
    },
    /// One team member executing a parallel region.
    Region {
        /// Team-thread index.
        member: u32,
    },
    /// One attempt at fetching a page.
    FetchAttempt {
        /// The page requested.
        page: u32,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// A whole crawl (`try_fetch_all` call).
    Crawl {
        /// Pages in the crawl.
        pages: u32,
    },
    /// One retried operation end to end (all attempts and waits).
    RetryOp {
        /// Caller-chosen operation key.
        key: u64,
    },
    /// One simulated tick of the marking pipeline (arrivals through
    /// acks; see `course::pipeline`).
    MarkingTick {
        /// Model tick number.
        tick: u64,
    },
}

impl SpanKind {
    /// Stable event name (used for counting and Chrome export).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::TaskRun { .. } => "task.run",
            SpanKind::BarrierWait { .. } => "barrier.wait",
            SpanKind::Region { .. } => "region.member",
            SpanKind::FetchAttempt { .. } => "fetch.attempt",
            SpanKind::Crawl { .. } => "crawl",
            SpanKind::RetryOp { .. } => "retry.op",
            SpanKind::MarkingTick { .. } => "mark.tick",
        }
    }
}

/// A point-in-time observation (Chrome "instant" event).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MarkKind {
    /// A task was submitted to a runtime.
    TaskSpawn {
        /// The task's id.
        task: u64,
        /// Span id active on the spawning thread (0 = none), linking
        /// the spawn to its causal parent.
        parent_span: u64,
    },
    /// A task resolved.
    TaskOutcome {
        /// The task's id.
        task: u64,
        /// How it resolved.
        outcome: Outcome,
    },
    /// A worker stole a job from another worker's deque.
    Steal {
        /// The worker stolen from.
        victim: u32,
    },
    /// A member passed a barrier.
    BarrierRelease {
        /// Team-thread index.
        member: u32,
        /// How long the member waited.
        waited_ns: u64,
    },
    /// A member observed a poisoned barrier and unwound.
    BarrierPoison {
        /// Team-thread index.
        member: u32,
    },
    /// A worksharing construct dealt a chunk of iterations.
    ChunkDispatch {
        /// Per-region construct id.
        construct: u32,
        /// First iteration of the chunk.
        lo: u64,
        /// Chunk length.
        len: u64,
        /// The schedule that dealt it.
        schedule: SchedTag,
    },
    /// A fetch attempt resolved.
    FetchResult {
        /// The page requested.
        page: u32,
        /// 1-based attempt number.
        attempt: u32,
        /// How the attempt ended.
        result: FetchTag,
    },
    /// A retry loop slept before the next attempt.
    RetryWait {
        /// Caller-chosen operation key.
        key: u64,
        /// The 1-based attempt that failed before this wait.
        failed_attempt: u32,
        /// Backoff delay (pre-scaling, policy units).
        delay_ns: u64,
    },
    /// A circuit breaker changed state.
    BreakerTransition {
        /// State before.
        from: BreakerPhase,
        /// State after.
        to: BreakerPhase,
    },
    /// A fault injector dealt a non-`None` fault.
    FaultInjected {
        /// The injector key (page id for websim).
        key: u64,
        /// 1-based attempt number.
        attempt: u32,
        /// The fault dealt.
        fault: FaultTag,
    },
    /// One GUI responsiveness-probe sample.
    GuiProbe {
        /// Queue-to-dispatch latency of the probe event.
        latency_ns: u64,
    },
    /// A supervisor started one incarnation of a child.
    ChildStart {
        /// Supervisor-local child index.
        child: u64,
        /// 1-based incarnation number (restarts increment it).
        incarnation: u32,
    },
    /// A supervised child incarnation exited.
    ChildExit {
        /// Supervisor-local child index.
        child: u64,
        /// 1-based incarnation number.
        incarnation: u32,
        /// How the incarnation exited.
        outcome: ChildTag,
    },
    /// A supervisor decided to restart a failed child.
    ChildRestart {
        /// Supervisor-local child index.
        child: u64,
        /// The incarnation about to start (= failed incarnation + 1).
        incarnation: u32,
    },
    /// A child exhausted its restart budget; the failure escalates up
    /// the supervision tree.
    ChildEscalate {
        /// Supervisor-local child index.
        child: u64,
    },
    /// One marking-pipeline ledger transition (see `course::pipeline`).
    MarkingStage {
        /// Which transition.
        stage: MarkingTag,
        /// The shard or marker the observation is scoped to (claims,
        /// acks, kills and reclaims are marker-scoped; sheds are
        /// shard-scoped).
        lane: u32,
        /// How many submissions the observation covers.
        count: u32,
    },
}

impl MarkKind {
    /// Stable event name (used for counting and Chrome export).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MarkKind::TaskSpawn { .. } => "task.spawn",
            MarkKind::TaskOutcome { .. } => "task.outcome",
            MarkKind::Steal { .. } => "sched.steal",
            MarkKind::BarrierRelease { .. } => "barrier.release",
            MarkKind::BarrierPoison { .. } => "barrier.poison",
            MarkKind::ChunkDispatch { .. } => "chunk.dispatch",
            MarkKind::FetchResult { .. } => "fetch.result",
            MarkKind::RetryWait { .. } => "retry.wait",
            MarkKind::BreakerTransition { .. } => "breaker.transition",
            MarkKind::FaultInjected { .. } => "fault.injected",
            MarkKind::GuiProbe { .. } => "gui.probe",
            MarkKind::ChildStart { .. } => "sup.child_start",
            MarkKind::ChildExit { .. } => "sup.child_exit",
            MarkKind::ChildRestart { .. } => "sup.restart",
            MarkKind::ChildEscalate { .. } => "sup.escalate",
            MarkKind::MarkingStage { stage, .. } => match stage {
                MarkingTag::Claim => "mark.claim",
                MarkingTag::Ack => "mark.ack",
                MarkingTag::Reclaim => "mark.reclaim",
                MarkingTag::Redone => "mark.redone",
                MarkingTag::Shed => "mark.shed",
                MarkingTag::Degraded => "mark.degraded",
                MarkingTag::Spot => "mark.spot",
            },
        }
    }
}

/// The payload of one recorded event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// A span started on the recording thread.
    SpanBegin {
        /// Collector-unique span id.
        id: u64,
        /// Enclosing span on the same thread (0 = root).
        parent: u64,
        /// What the span is.
        what: SpanKind,
    },
    /// A span ended on the recording thread.
    SpanEnd {
        /// Matches the corresponding [`EventKind::SpanBegin`].
        id: u64,
        /// What the span is.
        what: SpanKind,
    },
    /// An instantaneous observation.
    Mark {
        /// What happened.
        what: MarkKind,
    },
}

impl EventKind {
    /// Stable event name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SpanBegin { what, .. } | EventKind::SpanEnd { what, .. } => what.name(),
            EventKind::Mark { what } => what.name(),
        }
    }
}

/// One recorded event: timestamp, lanes, payload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Monotonic nanoseconds since the collector's epoch.
    pub ts_ns: u64,
    /// Track id (one per instrumented runtime; 0 = untracked).
    pub pid: u32,
    /// Lane id (one per recording OS thread).
    pub tid: u32,
    /// The payload.
    pub kind: EventKind,
}

impl Event {
    /// Stable event name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_and_copy() {
        // The hot path writes events by value into a fixed ring; keep
        // them register-friendly. 64 bytes = one cache line.
        assert!(std::mem::size_of::<Event>() <= 64);
        fn assert_copy<T: Copy>() {}
        assert_copy::<Event>();
    }

    #[test]
    fn names_are_stable() {
        let e = Event {
            ts_ns: 0,
            pid: 1,
            tid: 1,
            kind: EventKind::SpanBegin {
                id: 1,
                parent: 0,
                what: SpanKind::TaskRun { task: 9 },
            },
        };
        assert_eq!(e.name(), "task.run");
        let m = EventKind::Mark {
            what: MarkKind::ChunkDispatch {
                construct: 0,
                lo: 0,
                len: 8,
                schedule: SchedTag::Dynamic,
            },
        };
        assert_eq!(m.name(), "chunk.dispatch");
        assert_eq!(SchedTag::StaticChunk.name(), "static_chunk");
        assert_eq!(Outcome::TimedOut.name(), "timed_out");
        assert_eq!(BreakerPhase::HalfOpen.name(), "half_open");
        assert_eq!(FaultTag::LatencySpike.name(), "latency_spike");
        assert_eq!(FetchTag::Panicked.name(), "panicked");
        assert_eq!(ChildTag::Failed.name(), "failed");
        let sup = EventKind::Mark {
            what: MarkKind::ChildExit { child: 2, incarnation: 3, outcome: ChildTag::Panicked },
        };
        assert_eq!(sup.name(), "sup.child_exit");
        assert_eq!(
            EventKind::Mark { what: MarkKind::ChildEscalate { child: 0 } }.name(),
            "sup.escalate"
        );
    }
}
