//! ASCII Gantt/timeline renderer for terminal teaching reports.
//!
//! Each lane (one per recording thread, grouped by track) gets a row
//! whose bar shows *when that thread was inside a span*: `#` marks a
//! busy time bucket, `.` an idle one. A second glance-level table of
//! span counts and busy fractions rides along, rendered through
//! [`parc_util::table::Table`] so it matches every other report in the
//! workspace.

use std::collections::BTreeMap;

use parc_util::table::Table;

use crate::collector::{CompletedSpan, Trace};

/// Render the per-lane activity timeline. `width` is the number of
/// time buckets (bar characters) per lane. Returns a note when the
/// trace has no completed spans.
#[must_use]
pub fn render_timeline(trace: &Trace, width: usize) -> String {
    let width = width.max(8);
    let spans = trace.spans();
    if spans.is_empty() {
        return String::from("(timeline: no completed spans recorded)\n");
    }
    let t0 = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    // A span whose end precedes its start (clock skew, hand-built
    // traces) must not drag `t1` below `t0` — that underflows the
    // width computation. Treat such spans as instantaneous at their
    // start.
    let t1 = spans
        .iter()
        .map(|s| s.end_ns.max(s.start_ns))
        .max()
        .unwrap_or(t0)
        .max(t0);
    let total_ns = (t1 - t0).max(1);

    // Group spans per (pid, tid) lane, deterministically ordered.
    let mut by_lane: BTreeMap<(u32, u32), Vec<&CompletedSpan>> = BTreeMap::new();
    for s in &spans {
        by_lane.entry((s.pid, s.tid)).or_default().push(s);
    }

    let mut table = Table::new(
        &format!("timeline ({:.3} ms total)", total_ns as f64 / 1e6),
        &["lane", "spans", "busy", "activity"],
    );
    for ((pid, tid), lane_spans) in &by_lane {
        let mut buckets = vec![false; width];
        let mut busy_ns = 0u64;
        // Merge per-lane span intervals so nesting doesn't double-count.
        let mut intervals: Vec<(u64, u64)> =
            lane_spans.iter().map(|s| (s.start_ns, s.end_ns.max(s.start_ns))).collect();
        intervals.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
        for (lo, hi) in intervals {
            match merged.last_mut() {
                Some((_, mhi)) if lo <= *mhi => *mhi = (*mhi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        for (lo, hi) in &merged {
            busy_ns += hi.saturating_sub(*lo);
            // Bucket indices pinned to [0, width): an interval sitting
            // exactly at `t1` (lo == t1, e.g. an instantaneous span at
            // the trace's end) maps to the last bucket rather than one
            // past it.
            let bucket_of = |t: u64| {
                let off = t.saturating_sub(t0) as u128;
                usize::try_from(off * width as u128 / u128::from(total_ns))
                    .unwrap_or(width - 1)
                    .min(width - 1)
            };
            let (b0, b1) = (bucket_of(*lo), bucket_of(*hi));
            for b in buckets.iter_mut().take(b1 + 1).skip(b0) {
                *b = true;
            }
        }
        let bar: String = buckets.iter().map(|&b| if b { '#' } else { '.' }).collect();
        // Merged intervals are disjoint and within [t0, t1], so this
        // cannot exceed 100 — the clamp guards the degenerate
        // `total_ns = 1` stand-in for an all-instantaneous trace.
        let busy_pct = (busy_ns as f64 * 100.0 / total_ns as f64).min(100.0);
        table.row(&[
            format!("{}/{}", trace.track_name(*pid), trace.lane_name(*tid)),
            lane_spans.len().to_string(),
            format!("{busy_pct:.0}%"),
            bar,
        ]);
    }
    let mut out = table.render();
    if trace.dropped > 0 {
        let per_lane: Vec<String> = trace
            .lanes
            .iter()
            .filter(|l| l.dropped > 0)
            .map(|l| format!("{}:{}", l.name, l.dropped))
            .collect();
        out.push_str(&format!(
            "warning: {} events dropped (rings full: {}) — timeline is incomplete\n",
            trace.dropped,
            per_lane.join(", "),
        ));
    }
    out
}

/// Render per-event-name counts as a table — the "what happened, how
/// often" companion to the timeline.
#[must_use]
pub fn render_event_counts(trace: &Trace) -> String {
    let mut table = Table::new("event counts", &["event", "count"]);
    for (name, count) in trace.counts_by_name() {
        table.row(&[name.to_string(), count.to_string()]);
    }
    if trace.dropped > 0 {
        table.row(&["(dropped: ring full)".to_string(), trace.dropped.to_string()]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::event::SpanKind;

    #[test]
    fn timeline_renders_lane_rows() {
        let col = Collector::new();
        let h = col.handle();
        let pid = h.register_track("demo");
        {
            let _s = h.span(pid, SpanKind::Crawl { pages: 1 });
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let text = render_timeline(&col.snapshot(), 32);
        assert!(text.contains("timeline"));
        assert!(text.contains("demo/"));
        assert!(text.contains('#'), "a completed span must mark busy buckets");
    }

    #[test]
    fn empty_trace_has_fallback() {
        let col = Collector::new();
        let text = render_timeline(&col.snapshot(), 32);
        assert!(text.contains("no completed spans"));
    }

    /// A hand-built trace whose spans have exactly the given
    /// `(tid, start_ns, end_ns)` intervals.
    fn synthetic(spans: &[(u32, u64, u64)]) -> Trace {
        use crate::event::{Event, EventKind};
        let mut events = Vec::new();
        for (i, &(tid, start, end)) in spans.iter().enumerate() {
            let id = i as u64 + 1;
            let what = SpanKind::RetryOp { key: id };
            events.push(Event {
                ts_ns: start,
                pid: 0,
                tid,
                kind: EventKind::SpanBegin { id, parent: 0, what },
            });
            events.push(Event { ts_ns: end, pid: 0, tid, kind: EventKind::SpanEnd { id, what } });
        }
        Trace { events, ..Trace::default() }
    }

    #[test]
    fn all_instantaneous_spans_render_without_panicking() {
        // Every span has zero width and they all share one timestamp,
        // so t0 == t1 — the degenerate case that exercises the
        // `total_ns = 1` stand-in.
        let trace = synthetic(&[(1, 500, 500), (2, 500, 500)]);
        let text = render_timeline(&trace, 16);
        assert!(text.contains("timeline"));
        for line in text.lines().filter(|l| l.contains('%')) {
            let pct: f64 = line
                .split_whitespace()
                .find(|w| w.ends_with('%'))
                .and_then(|w| w.trim_end_matches('%').parse().ok())
                .unwrap();
            assert!((0.0..=100.0).contains(&pct), "busy% out of range: {line}");
        }
    }

    #[test]
    fn single_lane_zero_width_interval_at_t1_marks_last_bucket() {
        // An instantaneous span at the very end of the window used to
        // map to bucket index == width; it must pin to the last bucket.
        let trace = synthetic(&[(1, 0, 1000), (2, 1000, 1000)]);
        let text = render_timeline(&trace, 8);
        let lane2 = text.lines().find(|l| l.contains("/?") && l.ends_with('#')).or_else(|| {
            text.lines().find(|l| l.trim_end().ends_with('#') && l.contains(". "))
        });
        // Lane 2's bar must be idle everywhere except the final bucket.
        let bars: Vec<&str> = text
            .lines()
            .filter_map(|l| l.split_whitespace().last())
            .filter(|w| w.chars().all(|c| c == '#' || c == '.'))
            .collect();
        assert_eq!(bars.len(), 2, "two lanes expected in:\n{text}");
        assert_eq!(bars[1], ".......#", "end-pinned span must hit the last bucket only");
        assert!(lane2.is_some() || bars[1].ends_with('#'));
    }

    #[test]
    fn end_before_start_span_is_clamped_not_underflowed() {
        // end_ns < start_ns (skewed clocks / malformed input): the
        // renderer must treat it as instantaneous, never underflow.
        let trace = synthetic(&[(1, 1000, 400)]);
        let text = render_timeline(&trace, 8);
        assert!(text.contains("0%"), "zero-duration span busy%: \n{text}");
        // Mixed with a sane span on another lane, totals stay sane.
        let trace = synthetic(&[(1, 1000, 400), (2, 0, 2000)]);
        let text = render_timeline(&trace, 8);
        for line in text.lines().filter(|l| l.contains('%')) {
            let pct: f64 = line
                .split_whitespace()
                .find(|w| w.ends_with('%'))
                .and_then(|w| w.trim_end_matches('%').parse().ok())
                .unwrap();
            assert!((0.0..=100.0).contains(&pct), "busy% out of range: {line}");
        }
    }

    #[test]
    fn full_window_span_is_100_percent_and_all_busy() {
        let trace = synthetic(&[(1, 100, 1100)]);
        let text = render_timeline(&trace, 8);
        assert!(text.contains("100%"));
        assert!(text.contains("########"));
    }

    #[test]
    fn timeline_footer_warns_about_dropped_events() {
        use crate::collector::Lane;
        let mut trace = synthetic(&[(1, 0, 1000)]);
        trace.dropped = 7;
        trace.lanes = vec![Lane { tid: 1, name: "worker-0".into(), dropped: 7 }];
        let text = render_timeline(&trace, 8);
        assert!(text.contains("7 events dropped"), "footer missing: {text}");
        assert!(text.contains("worker-0:7"), "per-lane attribution missing: {text}");
        // No footer when nothing was dropped.
        let clean = synthetic(&[(1, 0, 1000)]);
        assert!(!render_timeline(&clean, 8).contains("dropped"));
    }

    #[test]
    fn event_counts_table_lists_names() {
        let col = Collector::new();
        let h = col.handle();
        let pid = h.register_track("demo");
        drop(h.span(pid, SpanKind::RetryOp { key: 1 }));
        drop(h.span(pid, SpanKind::RetryOp { key: 2 }));
        let text = render_event_counts(&col.snapshot());
        assert!(text.contains("retry.op"));
        assert!(text.contains('2'));
    }
}
