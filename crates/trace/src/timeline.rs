//! ASCII Gantt/timeline renderer for terminal teaching reports.
//!
//! Each lane (one per recording thread, grouped by track) gets a row
//! whose bar shows *when that thread was inside a span*: `#` marks a
//! busy time bucket, `.` an idle one. A second glance-level table of
//! span counts and busy fractions rides along, rendered through
//! [`parc_util::table::Table`] so it matches every other report in the
//! workspace.

use std::collections::BTreeMap;

use parc_util::table::Table;

use crate::collector::{CompletedSpan, Trace};

/// Render the per-lane activity timeline. `width` is the number of
/// time buckets (bar characters) per lane. Returns a note when the
/// trace has no completed spans.
#[must_use]
pub fn render_timeline(trace: &Trace, width: usize) -> String {
    let width = width.max(8);
    let spans = trace.spans();
    if spans.is_empty() {
        return String::from("(timeline: no completed spans recorded)\n");
    }
    let t0 = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let t1 = spans.iter().map(|s| s.end_ns).max().unwrap_or(t0 + 1);
    let total_ns = (t1 - t0).max(1);

    // Group spans per (pid, tid) lane, deterministically ordered.
    let mut by_lane: BTreeMap<(u32, u32), Vec<&CompletedSpan>> = BTreeMap::new();
    for s in &spans {
        by_lane.entry((s.pid, s.tid)).or_default().push(s);
    }

    let mut table = Table::new(
        &format!("timeline ({:.3} ms total)", total_ns as f64 / 1e6),
        &["lane", "spans", "busy", "activity"],
    );
    for ((pid, tid), lane_spans) in &by_lane {
        let mut buckets = vec![false; width];
        let mut busy_ns = 0u64;
        // Merge per-lane span intervals so nesting doesn't double-count.
        let mut intervals: Vec<(u64, u64)> =
            lane_spans.iter().map(|s| (s.start_ns, s.end_ns.max(s.start_ns))).collect();
        intervals.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
        for (lo, hi) in intervals {
            match merged.last_mut() {
                Some((_, mhi)) if lo <= *mhi => *mhi = (*mhi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        for (lo, hi) in &merged {
            busy_ns += hi - lo;
            let b0 = ((lo - t0) as u128 * width as u128 / total_ns as u128) as usize;
            let b1 = ((hi - t0) as u128 * width as u128 / total_ns as u128) as usize;
            for b in buckets.iter_mut().take(b1.min(width - 1) + 1).skip(b0) {
                *b = true;
            }
        }
        let bar: String = buckets.iter().map(|&b| if b { '#' } else { '.' }).collect();
        let busy_pct = busy_ns as f64 * 100.0 / total_ns as f64;
        table.row(&[
            format!("{}/{}", trace.track_name(*pid), trace.lane_name(*tid)),
            lane_spans.len().to_string(),
            format!("{busy_pct:.0}%"),
            bar,
        ]);
    }
    table.render()
}

/// Render per-event-name counts as a table — the "what happened, how
/// often" companion to the timeline.
#[must_use]
pub fn render_event_counts(trace: &Trace) -> String {
    let mut table = Table::new("event counts", &["event", "count"]);
    for (name, count) in trace.counts_by_name() {
        table.row(&[name.to_string(), count.to_string()]);
    }
    if trace.dropped > 0 {
        table.row(&["(dropped: ring full)".to_string(), trace.dropped.to_string()]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::event::SpanKind;

    #[test]
    fn timeline_renders_lane_rows() {
        let col = Collector::new();
        let h = col.handle();
        let pid = h.register_track("demo");
        {
            let _s = h.span(pid, SpanKind::Crawl { pages: 1 });
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let text = render_timeline(&col.snapshot(), 32);
        assert!(text.contains("timeline"));
        assert!(text.contains("demo/"));
        assert!(text.contains('#'), "a completed span must mark busy buckets");
    }

    #[test]
    fn empty_trace_has_fallback() {
        let col = Collector::new();
        let text = render_timeline(&col.snapshot(), 32);
        assert!(text.contains("no completed spans"));
    }

    #[test]
    fn event_counts_table_lists_names() {
        let col = Collector::new();
        let h = col.handle();
        let pid = h.register_track("demo");
        drop(h.span(pid, SpanKind::RetryOp { key: 1 }));
        drop(h.span(pid, SpanKind::RetryOp { key: 2 }));
        let text = render_event_counts(&col.snapshot());
        assert!(text.contains("retry.op"));
        assert!(text.contains('2'));
    }
}
