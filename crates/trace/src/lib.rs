//! `parc-trace` — structured tracing and metrics for the parallel
//! runtimes.
//!
//! The paper's pedagogy hinges on students *seeing* parallel behaviour
//! — task graphs, barrier waits, GUI-thread marshalling. This crate is
//! the workspace's observability layer: every runtime (partask teams
//! of workers, pyjama regions, the websim crawler, faultsim's retry
//! and breaker machinery) records typed events into per-thread
//! lock-free buffers, and a [`Collector`] drains them into a
//! [`Trace`] that exports three ways:
//!
//! * [`to_chrome_json`] — Chrome Trace Event Format for
//!   `chrome://tracing` / Perfetto (one process per runtime, one
//!   thread per worker);
//! * [`render_timeline`] — an ASCII Gantt chart for terminal teaching
//!   reports;
//! * [`MetricsRegistry::render`] — a flat metrics table for
//!   EXPERIMENTS.md regeneration.
//!
//! # Usage
//!
//! ```
//! use parc_trace::{Collector, SpanKind, MarkKind};
//!
//! let collector = Collector::new();
//! let trace_handle = collector.handle();
//! let pid = trace_handle.register_track("my-runtime");
//!
//! {
//!     let _span = trace_handle.span(pid, SpanKind::TaskRun { task: 1 });
//!     trace_handle.mark(pid, MarkKind::Steal { victim: 0 });
//! } // span ends here
//!
//! let trace = collector.snapshot();
//! assert_eq!(trace.counts_by_name()["task.run"], 1);
//! println!("{}", parc_trace::to_chrome_json(&trace));
//! ```
//!
//! # Zero cost when disabled
//!
//! Instrumented code stores a plain [`TraceHandle`] (never an
//! `Option`): the default handle holds no collector, and every
//! operation on it is an inlineable early-out — one branch on the hot
//! path, no allocation, no locking. Recording can also be toggled at
//! runtime with [`Collector::set_enabled`] without detaching anything.
//!
//! # Determinism
//!
//! Under a fixed seed the workspace's workloads make the same
//! decisions regardless of thread interleaving (see `faultsim`), so
//! traces are deterministic in event *counts* and per-key causal
//! order; timestamps and cross-thread interleaving may vary run to
//! run. `tests/tracing.rs` pins this contract.

#![warn(missing_docs)]

mod chrome;
mod collector;
mod event;
mod json;
mod metrics;
mod timeline;

pub use chrome::to_chrome_json;
pub use collector::{
    Collector, CompletedSpan, Lane, Span, Trace, TraceHandle, Track, DEFAULT_THREAD_CAPACITY,
};
pub use event::{
    BreakerPhase, ChildTag, Event, EventKind, FaultTag, FetchTag, MarkKind, MarkingTag, Outcome,
    SchedTag, SpanKind,
};
pub use json::{escape as json_escape, parse as parse_json, Json, JsonError};
pub use metrics::{Counter, Gauge, LatencyHistogram, MetricHistogram, MetricsRegistry};
pub use timeline::{render_event_counts, render_timeline};
