//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms (built on [`parc_util::stats::Histogram`]).
//!
//! Runtimes own their counters (`Arc<Counter>`) so increments stay a
//! single relaxed atomic op, and *register* them under prefixed names
//! when a collector is attached; the registry then snapshots every
//! registered metric into one deterministic, alphabetised table for
//! the experiment reports.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parc_util::stats::Histogram;
use parc_util::table::Table;
use parking_lot::Mutex;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, live-job counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shareable fixed-bucket histogram
/// (mutex-wrapped [`parc_util::stats::Histogram`] — recording a sample
/// is off the event hot path, so a short lock is fine here).
#[derive(Debug)]
pub struct MetricHistogram {
    inner: Mutex<Histogram>,
}

impl MetricHistogram {
    /// Histogram over `[lo, hi)` with `buckets` equal-width buckets.
    #[must_use]
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        Self { inner: Mutex::new(Histogram::new(lo, hi, buckets)) }
    }

    /// Record one observation.
    pub fn record(&self, x: f64) {
        self.inner.lock().record(x);
    }

    /// Total recorded observations, including out-of-range ones.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.inner.lock().total()
    }

    /// A copy of the underlying histogram for inspection.
    #[must_use]
    pub fn snapshot(&self) -> Histogram {
        self.inner.lock().clone()
    }

    /// Render the ASCII bar chart (`width` chars for the tallest bar).
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        self.inner.lock().render(width)
    }
}

/// A registry of named metrics with deterministic (alphabetical)
/// snapshot order.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<MetricHistogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Register an existing counter under `name` (replacing any
    /// previous registration). This is how runtimes expose the
    /// counters they own and increment internally.
    pub fn register_counter(&self, name: &str, counter: &Arc<Counter>) {
        self.counters.lock().insert(name.to_string(), Arc::clone(counter));
    }

    /// Get or create the gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Get or create the histogram `name` over `[lo, hi)` with
    /// `buckets` buckets. The range of an existing histogram wins.
    #[must_use]
    pub fn histogram(&self, name: &str, lo: f64, hi: f64, buckets: usize) -> Arc<MetricHistogram> {
        Arc::clone(
            self.histograms
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(MetricHistogram::new(lo, hi, buckets))),
        )
    }

    /// Every counter's current value, alphabetised.
    #[must_use]
    pub fn counter_values(&self) -> BTreeMap<String, u64> {
        self.counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Every gauge's current value, alphabetised.
    #[must_use]
    pub fn gauge_values(&self) -> BTreeMap<String, i64> {
        self.gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Histogram names with sample totals, alphabetised.
    #[must_use]
    pub fn histogram_totals(&self) -> BTreeMap<String, u64> {
        self.histograms
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.total()))
            .collect()
    }

    /// Render the flat metrics summary — one row per metric, sorted by
    /// name — used by the teaching reports and EXPERIMENTS.md.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = Table::new("metrics", &["metric", "kind", "value"]);
        for (name, value) in self.counter_values() {
            table.row(&[name, "counter".into(), value.to_string()]);
        }
        for (name, value) in self.gauge_values() {
            table.row(&[name, "gauge".into(), value.to_string()]);
        }
        for (name, total) in self.histogram_totals() {
            table.row(&[name, "histogram".into(), format!("{total} samples")]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn registry_get_or_create_shares() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn registered_counter_is_visible() {
        let reg = MetricsRegistry::new();
        let owned = Arc::new(Counter::new());
        owned.add(42);
        reg.register_counter("rt.spawned", &owned);
        assert_eq!(reg.counter_values()["rt.spawned"], 42);
        owned.inc();
        assert_eq!(reg.counter("rt.spawned").get(), 43);
    }

    #[test]
    fn histogram_records_through_registry() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("wait_ms", 0.0, 10.0, 5);
        h.record(1.0);
        h.record(3.0);
        h.record(99.0); // overflow still counts toward total
        assert_eq!(reg.histogram_totals()["wait_ms"], 3);
        let snap = h.snapshot();
        assert_eq!(snap.overflow(), 1);
    }

    #[test]
    fn render_is_alphabetised_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count").add(2);
        reg.counter("a.count").add(1);
        reg.gauge("depth").set(3);
        let _ = reg.histogram("lat", 0.0, 1.0, 2);
        let text = reg.render();
        let a = text.find("a.count").unwrap();
        let b = text.find("b.count").unwrap();
        assert!(a < b, "counters must render alphabetised");
        assert!(text.contains("gauge"));
        assert!(text.contains("histogram"));
        assert!(text.contains("== metrics =="));
    }
}
