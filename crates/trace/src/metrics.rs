//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms (built on [`parc_util::stats::Histogram`]).
//!
//! Runtimes own their counters (`Arc<Counter>`) so increments stay a
//! single relaxed atomic op, and *register* them under prefixed names
//! when a collector is attached; the registry then snapshots every
//! registered metric into one deterministic, alphabetised table for
//! the experiment reports.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parc_util::stats::Histogram;
use parc_util::table::Table;
use parking_lot::Mutex;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, live-job counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shareable fixed-bucket histogram
/// (mutex-wrapped [`parc_util::stats::Histogram`] — recording a sample
/// is off the event hot path, so a short lock is fine here).
#[derive(Debug)]
pub struct MetricHistogram {
    inner: Mutex<Histogram>,
}

impl MetricHistogram {
    /// Histogram over `[lo, hi)` with `buckets` equal-width buckets.
    #[must_use]
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        Self { inner: Mutex::new(Histogram::new(lo, hi, buckets)) }
    }

    /// Record one observation.
    pub fn record(&self, x: f64) {
        self.inner.lock().record(x);
    }

    /// Total recorded observations, including out-of-range ones.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.inner.lock().total()
    }

    /// A copy of the underlying histogram for inspection.
    #[must_use]
    pub fn snapshot(&self) -> Histogram {
        self.inner.lock().clone()
    }

    /// Render the ASCII bar chart (`width` chars for the tallest bar).
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        self.inner.lock().render(width)
    }
}

/// A log-bucketed latency histogram with quantile estimation — the
/// HDR-style companion to the fixed-width [`MetricHistogram`].
///
/// Buckets grow geometrically (`buckets_per_decade` per factor of 10),
/// so one histogram spans microseconds to minutes with a bounded
/// *relative* error per bucket, which is what tail-latency reporting
/// (p99, p99.9) needs and what equal-width buckets cannot give.
/// Recording and querying are plain `&mut`/`&` operations on a value
/// type, so reports can embed a histogram and compare runs with `==`
/// (all state is a pure function of the recorded samples).
///
/// Values below the low bound clamp into the first bucket; values at
/// or above the high bound clamp into the last (acting as an overflow
/// bucket). [`LatencyHistogram::quantile`] interpolates linearly
/// inside the chosen bucket and clamps to the observed min/max, so
/// `quantile(0.0)` and `quantile(1.0)` are exact.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyHistogram {
    lo: f64,
    ln_growth: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min_seen: f64,
    max_seen: f64,
}

impl LatencyHistogram {
    /// Histogram covering `[lo, hi)` with `buckets_per_decade`
    /// geometric buckets per factor of 10.
    ///
    /// # Panics
    /// If `lo <= 0`, `hi <= lo`, or `buckets_per_decade == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, buckets_per_decade: usize) -> Self {
        assert!(lo > 0.0, "low bound must be positive");
        assert!(hi > lo, "high bound must exceed low bound");
        assert!(buckets_per_decade > 0, "need at least one bucket per decade");
        #[allow(clippy::cast_precision_loss)]
        let ln_growth = std::f64::consts::LN_10 / buckets_per_decade as f64;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let buckets = ((hi / lo).ln() / ln_growth).ceil().max(1.0) as usize;
        Self {
            lo,
            ln_growth,
            counts: vec![0; buckets],
            total: 0,
            sum: 0.0,
            min_seen: f64::INFINITY,
            max_seen: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(&self, x: f64) -> usize {
        if x < self.lo {
            return 0;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let idx = ((x / self.lo).ln() / self.ln_growth).floor() as usize;
        idx.min(self.counts.len() - 1)
    }

    /// Lower bound of bucket `i`.
    fn bucket_lo(&self, i: usize) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let exp = i as f64 * self.ln_growth;
        self.lo * exp.exp()
    }

    /// Record one sample (non-negative; NaN is rejected by assert).
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "latency sample must not be NaN");
        let x = x.max(0.0);
        let idx = self.bucket_index(x);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += x;
        self.min_seen = self.min_seen.min(x);
        self.max_seen = self.max_seen.max(x);
    }

    /// Total recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of recorded samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let n = self.total as f64;
        self.sum / n
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max_seen
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) of the recorded samples,
    /// interpolated within the selected bucket and clamped to the
    /// observed range. Returns 0 when no samples were recorded.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min_seen;
        }
        if q == 1.0 {
            return self.max_seen;
        }
        #[allow(clippy::cast_precision_loss)]
        let target = q * self.total as f64;
        let mut cum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            #[allow(clippy::cast_precision_loss)]
            let count = c as f64;
            if cum + count >= target {
                let frac = ((target - cum) / count).clamp(0.0, 1.0);
                let b_lo = self.bucket_lo(i);
                let b_hi = self.bucket_lo(i + 1);
                let v = b_lo + frac * (b_hi - b_lo);
                return v.clamp(self.min_seen, self.max_seen);
            }
            cum += count;
        }
        self.max_seen
    }

    /// Median (p50).
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    #[must_use]
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Merge another histogram of the identical shape into this one.
    ///
    /// # Panics
    /// If the two histograms were built with different bounds.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert!(
            (self.lo - other.lo).abs() < f64::EPSILON
                && (self.ln_growth - other.ln_growth).abs() < f64::EPSILON
                && self.counts.len() == other.counts.len(),
            "cannot merge latency histograms of different shapes"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min_seen = self.min_seen.min(other.min_seen);
        self.max_seen = self.max_seen.max(other.max_seen);
    }

    /// One line for benchmark tables:
    /// `"n=1200 p50=12.3 p99=88.1 p99.9=140.2 max=151.0"`.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "n={} p50={:.1} p99={:.1} p99.9={:.1} max={:.1}",
            self.total,
            self.p50(),
            self.p99(),
            self.p999(),
            self.max()
        )
    }
}

/// A registry of named metrics with deterministic (alphabetical)
/// snapshot order.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<MetricHistogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Register an existing counter under `name` (replacing any
    /// previous registration). This is how runtimes expose the
    /// counters they own and increment internally.
    pub fn register_counter(&self, name: &str, counter: &Arc<Counter>) {
        self.counters.lock().insert(name.to_string(), Arc::clone(counter));
    }

    /// Get or create the gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Get or create the histogram `name` over `[lo, hi)` with
    /// `buckets` buckets. The range of an existing histogram wins.
    #[must_use]
    pub fn histogram(&self, name: &str, lo: f64, hi: f64, buckets: usize) -> Arc<MetricHistogram> {
        Arc::clone(
            self.histograms
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(MetricHistogram::new(lo, hi, buckets))),
        )
    }

    /// Every counter's current value, alphabetised.
    #[must_use]
    pub fn counter_values(&self) -> BTreeMap<String, u64> {
        self.counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Every gauge's current value, alphabetised.
    #[must_use]
    pub fn gauge_values(&self) -> BTreeMap<String, i64> {
        self.gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Histogram names with sample totals, alphabetised.
    #[must_use]
    pub fn histogram_totals(&self) -> BTreeMap<String, u64> {
        self.histograms
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.total()))
            .collect()
    }

    /// Render the flat metrics summary — one row per metric, sorted by
    /// name — used by the teaching reports and EXPERIMENTS.md.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = Table::new("metrics", &["metric", "kind", "value"]);
        for (name, value) in self.counter_values() {
            table.row(&[name, "counter".into(), value.to_string()]);
        }
        for (name, value) in self.gauge_values() {
            table.row(&[name, "gauge".into(), value.to_string()]);
        }
        for (name, total) in self.histogram_totals() {
            table.row(&[name, "histogram".into(), format!("{total} samples")]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn registry_get_or_create_shares() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn registered_counter_is_visible() {
        let reg = MetricsRegistry::new();
        let owned = Arc::new(Counter::new());
        owned.add(42);
        reg.register_counter("rt.spawned", &owned);
        assert_eq!(reg.counter_values()["rt.spawned"], 42);
        owned.inc();
        assert_eq!(reg.counter("rt.spawned").get(), 43);
    }

    #[test]
    fn histogram_records_through_registry() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("wait_ms", 0.0, 10.0, 5);
        h.record(1.0);
        h.record(3.0);
        h.record(99.0); // overflow still counts toward total
        assert_eq!(reg.histogram_totals()["wait_ms"], 3);
        let snap = h.snapshot();
        assert_eq!(snap.overflow(), 1);
    }

    #[test]
    fn latency_histogram_quantiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::new(0.1, 1e4, 36);
        for i in 1..=1000 {
            h.record(f64::from(i));
        }
        assert_eq!(h.total(), 1000);
        // Log buckets at 36/decade have ~6.6 % relative width; allow
        // 10 % relative error on interior quantiles.
        for (q, expect) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = h.quantile(q);
            assert!(
                (got - expect).abs() / expect < 0.10,
                "quantile({q}) = {got}, want ~{expect}"
            );
        }
        assert_eq!(h.quantile(0.0), 1.0, "q=0 clamps to observed min");
        assert_eq!(h.quantile(1.0), 1000.0, "q=1 clamps to observed max");
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn latency_histogram_tail_beats_fixed_width() {
        // A bimodal distribution: 990 fast samples, 10 slow outliers.
        // The log-bucketed histogram resolves the tail; this is the
        // case the fixed-width MetricHistogram lumps into overflow.
        let mut h = LatencyHistogram::new(0.1, 1e5, 36);
        for _ in 0..990 {
            h.record(5.0);
        }
        for _ in 0..10 {
            h.record(2000.0);
        }
        assert!(h.p50() < 10.0, "p50 {} should sit in the fast mode", h.p50());
        let p999 = h.p999();
        assert!(
            (1800.0..=2200.0).contains(&p999),
            "p99.9 {p999} should resolve the slow mode"
        );
    }

    #[test]
    fn latency_histogram_clamps_out_of_range() {
        let mut h = LatencyHistogram::new(1.0, 100.0, 10);
        h.record(0.0); // below lo -> first bucket
        h.record(1e9); // above hi -> last bucket
        assert_eq!(h.total(), 2);
        assert_eq!(h.quantile(1.0), 1e9, "max is tracked exactly");
        assert_eq!(h.quantile(0.0), 0.0, "min is tracked exactly");
    }

    #[test]
    fn latency_histogram_merge_matches_single_stream() {
        let mut all = LatencyHistogram::new(0.5, 1e3, 20);
        let mut a = LatencyHistogram::new(0.5, 1e3, 20);
        let mut b = LatencyHistogram::new(0.5, 1e3, 20);
        for i in 0..500u32 {
            let x = 1.0 + f64::from(i % 97);
            all.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a, all, "merge must equal the single-stream histogram");
    }

    #[test]
    fn latency_histogram_empty_reports_zeroes() {
        let h = LatencyHistogram::new(1.0, 10.0, 5);
        assert_eq!(h.total(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn metric_histogram_api_is_unchanged() {
        // The old fixed-width type keeps its full surface alongside
        // the new latency histogram.
        let h = MetricHistogram::new(0.0, 10.0, 5);
        h.record(3.0);
        assert_eq!(h.total(), 1);
        assert_eq!(h.snapshot().total(), 1);
        assert!(!h.render(10).is_empty());
    }

    #[test]
    fn render_is_alphabetised_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count").add(2);
        reg.counter("a.count").add(1);
        reg.gauge("depth").set(3);
        let _ = reg.histogram("lat", 0.0, 1.0, 2);
        let text = reg.render();
        let a = text.find("a.count").unwrap();
        let b = text.find("b.count").unwrap();
        assert!(a < b, "counters must render alphabetised");
        assert!(text.contains("gauge"));
        assert!(text.contains("histogram"));
        assert!(text.contains("== metrics =="));
    }
}
