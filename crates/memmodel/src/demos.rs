//! The executable race demonstrations and their corrected variants.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;

use parking_lot::Mutex;

/// How a demo's corrected variant achieves safety.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FixStrategy {
    /// Atomic read-modify-write (`fetch_add`).
    AtomicRmw,
    /// A mutex around the critical section.
    Mutex,
    /// Release/acquire publication.
    ReleaseAcquire,
    /// Sequential consistency everywhere.
    SeqCst,
    /// `OnceLock` / once-only initialisation.
    Once,
}

/// Outcome of running one demonstration.
#[derive(Clone, Debug)]
pub struct DemoReport {
    /// Demo name.
    pub name: &'static str,
    /// What a correct execution would produce.
    pub expected: u64,
    /// What was observed.
    pub observed: u64,
    /// Number of anomalies witnessed (lost updates, stale reads,
    /// both-zero outcomes, double constructions).
    pub anomalies: u64,
    /// Trials / operations performed.
    pub trials: u64,
}

impl DemoReport {
    /// Did the run witness the phenomenon?
    #[must_use]
    pub fn race_observed(&self) -> bool {
        self.anomalies > 0
    }
}

// ---------------------------------------------------------------------
// 1. Lost update
// ---------------------------------------------------------------------

/// The racy `count++`: each increment is a separate load and store
/// (exactly what non-atomic `count++` compiles to), so concurrent
/// increments can overwrite each other. `yield_between` inserts a
/// scheduler yield between load and store, which forces the race to
/// manifest even on a single-CPU host.
#[must_use]
pub fn lost_update(threads: usize, per_thread: u64, yield_between: bool) -> DemoReport {
    let counter = Arc::new(AtomicU64::new(0));
    let mut joins = Vec::new();
    for _ in 0..threads {
        let counter = Arc::clone(&counter);
        joins.push(thread::spawn(move || {
            for i in 0..per_thread {
                // Split RMW: the racy read...
                let seen = counter.load(Ordering::Relaxed);
                if yield_between && i % 64 == 0 {
                    thread::yield_now();
                }
                // ...and the racy write-back.
                counter.store(seen + 1, Ordering::Relaxed);
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let expected = threads as u64 * per_thread;
    let observed = counter.load(Ordering::Relaxed);
    DemoReport {
        name: "lost-update",
        expected,
        observed,
        anomalies: expected - observed,
        trials: expected,
    }
}

/// The fixed counter under a chosen strategy; always exact.
#[must_use]
pub fn lost_update_fixed(threads: usize, per_thread: u64, fix: FixStrategy) -> DemoReport {
    let expected = threads as u64 * per_thread;
    let observed = match fix {
        FixStrategy::AtomicRmw | FixStrategy::SeqCst => {
            let ordering = if fix == FixStrategy::SeqCst {
                Ordering::SeqCst
            } else {
                Ordering::Relaxed
            };
            let counter = Arc::new(AtomicU64::new(0));
            let mut joins = Vec::new();
            for _ in 0..threads {
                let counter = Arc::clone(&counter);
                joins.push(thread::spawn(move || {
                    for _ in 0..per_thread {
                        counter.fetch_add(1, ordering);
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            counter.load(Ordering::SeqCst)
        }
        FixStrategy::Mutex => {
            let counter = Arc::new(Mutex::new(0u64));
            let mut joins = Vec::new();
            for _ in 0..threads {
                let counter = Arc::clone(&counter);
                joins.push(thread::spawn(move || {
                    for _ in 0..per_thread {
                        *counter.lock() += 1;
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            let v = *counter.lock();
            v
        }
        FixStrategy::ReleaseAcquire | FixStrategy::Once => {
            panic!("strategy {fix:?} does not apply to a counter")
        }
    };
    DemoReport {
        name: "lost-update-fixed",
        expected,
        observed,
        anomalies: expected.saturating_sub(observed),
        trials: expected,
    }
}

// ---------------------------------------------------------------------
// 2. Message passing (unsafe publication)
// ---------------------------------------------------------------------

/// The publication idiom: writer stores `data` then raises `flag`;
/// reader spins on `flag` then reads `data`. With `Ordering::Relaxed`
/// nothing orders the two stores for the reader — a stale read of 0
/// is permitted (and observable on weakly ordered hardware). With
/// release/acquire it is forbidden. Returns the number of stale reads
/// over `trials` rounds.
#[must_use]
pub fn message_passing(trials: u64, fixed: bool) -> DemoReport {
    let (store_ord, load_ord) = if fixed {
        (Ordering::Release, Ordering::Acquire)
    } else {
        (Ordering::Relaxed, Ordering::Relaxed)
    };
    let mut stale = 0u64;
    for _ in 0..trials {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let writer = {
            let data = Arc::clone(&data);
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                data.store(42, Ordering::Relaxed);
                flag.store(true, store_ord);
            })
        };
        let reader = {
            let data = Arc::clone(&data);
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                while !flag.load(load_ord) {
                    std::hint::spin_loop();
                }
                data.load(Ordering::Relaxed)
            })
        };
        writer.join().unwrap();
        if reader.join().unwrap() != 42 {
            stale += 1;
        }
    }
    DemoReport {
        name: if fixed {
            "message-passing-fixed"
        } else {
            "message-passing-racy"
        },
        expected: 0,
        observed: stale,
        anomalies: stale,
        trials,
    }
}

// ---------------------------------------------------------------------
// 3. Store-buffer litmus (Dekker)
// ---------------------------------------------------------------------

/// The store-buffer litmus: thread A does `x = 1; r1 = y`, thread B
/// does `y = 1; r2 = x`. Under sequential consistency at least one
/// thread must see the other's store (`r1 = r2 = 0` is impossible);
/// with relaxed (or even release/acquire) orderings the store can sit
/// in a store buffer past the load and both can read 0. Returns the
/// number of both-zero outcomes over `trials`.
#[must_use]
pub fn store_buffer(trials: u64, ordering: Ordering) -> DemoReport {
    use std::sync::Barrier;
    let mut both_zero = 0u64;
    for _ in 0..trials {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let gate = Arc::new(Barrier::new(2));
        let a = {
            let x = Arc::clone(&x);
            let y = Arc::clone(&y);
            let gate = Arc::clone(&gate);
            thread::spawn(move || {
                gate.wait();
                x.store(1, ordering);
                y.load(ordering)
            })
        };
        let b = {
            let x = Arc::clone(&x);
            let y = Arc::clone(&y);
            let gate = Arc::clone(&gate);
            thread::spawn(move || {
                gate.wait();
                y.store(1, ordering);
                x.load(ordering)
            })
        };
        let r1 = a.join().unwrap();
        let r2 = b.join().unwrap();
        if r1 == 0 && r2 == 0 {
            both_zero += 1;
        }
    }
    DemoReport {
        name: "store-buffer",
        expected: 0,
        observed: both_zero,
        anomalies: both_zero,
        trials,
    }
}

// ---------------------------------------------------------------------
// 4. Lazy initialisation
// ---------------------------------------------------------------------

/// Racy one-time initialisation: every thread checks an
/// "initialised" flag and constructs when it reads `false`. Without
/// synchronisation several threads can construct. Returns the number
/// of excess constructions across `trials` rounds of `threads`
/// initialisers. The fixed variant uses [`OnceLock`], which
/// guarantees exactly one construction.
#[must_use]
pub fn lazy_init(trials: u64, threads: usize, fixed: bool) -> DemoReport {
    let mut excess = 0u64;
    for _ in 0..trials {
        let constructions = Arc::new(AtomicUsize::new(0));
        if fixed {
            let cell: Arc<OnceLock<u64>> = Arc::new(OnceLock::new());
            let mut joins = Vec::new();
            for _ in 0..threads {
                let cell = Arc::clone(&cell);
                let constructions = Arc::clone(&constructions);
                joins.push(thread::spawn(move || {
                    let v = *cell.get_or_init(|| {
                        constructions.fetch_add(1, Ordering::SeqCst);
                        thread::yield_now(); // widen the construction window
                        99
                    });
                    assert_eq!(v, 99);
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
        } else {
            // The racy check-then-act.
            let initialised = Arc::new(AtomicBool::new(false));
            let mut joins = Vec::new();
            for _ in 0..threads {
                let initialised = Arc::clone(&initialised);
                let constructions = Arc::clone(&constructions);
                joins.push(thread::spawn(move || {
                    if !initialised.load(Ordering::Relaxed) {
                        // Several threads can be here at once.
                        constructions.fetch_add(1, Ordering::SeqCst);
                        thread::yield_now();
                        initialised.store(true, Ordering::Relaxed);
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
        }
        let built = constructions.load(Ordering::SeqCst) as u64;
        excess += built.saturating_sub(1);
    }
    DemoReport {
        name: if fixed { "lazy-init-fixed" } else { "lazy-init-racy" },
        expected: trials,
        observed: trials + excess,
        anomalies: excess,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn racy_counter_never_overcounts() {
        let report = lost_update(4, 5_000, true);
        assert!(report.observed <= report.expected);
        assert_eq!(report.anomalies, report.expected - report.observed);
    }

    // The racy-variant verdicts live below in `explorer_verdicts`:
    // instead of running the native demo and hoping the host scheduler
    // exhibits the bad timing (the old probabilistic tests), each demo
    // is ported onto the parc-explore shims and the race is *proved*
    // by enumerating interleavings.

    fn prove(name: &str, expect_race: bool) {
        let entry = parc_explore::litmus::by_name(name)
            .unwrap_or_else(|| panic!("litmus `{name}` missing from the catalogue"));
        let body = std::sync::Arc::clone(&entry.body);
        let report = parc_explore::explore(parc_explore::Config::dfs(name), move || body());
        assert!(report.exhausted, "{name}: interleaving space not exhausted");
        assert_eq!(
            !report.race_free(),
            expect_race,
            "{name}: wrong deterministic verdict\n{}",
            report.render()
        );
    }

    #[test]
    fn lost_update_racy_has_a_racing_schedule() {
        prove("lost-update/racy", true);
        prove("lost-update/fixed-rmw", false);
        prove("lost-update/fixed-mutex", false);
    }

    #[test]
    fn fixed_counters_are_exact() {
        for fix in [FixStrategy::AtomicRmw, FixStrategy::Mutex, FixStrategy::SeqCst] {
            let report = lost_update_fixed(4, 10_000, fix);
            assert_eq!(report.observed, report.expected, "{fix:?}");
            assert_eq!(report.anomalies, 0);
        }
    }

    #[test]
    #[should_panic(expected = "does not apply")]
    fn inapplicable_fix_rejected() {
        let _ = lost_update_fixed(1, 1, FixStrategy::Once);
    }

    #[test]
    fn message_passing_fixed_never_stale() {
        let report = message_passing(200, true);
        assert_eq!(
            report.anomalies, 0,
            "release/acquire forbids stale publication reads"
        );
    }

    #[test]
    fn message_passing_racy_has_a_racing_schedule() {
        prove("message-passing/racy", true);
        prove("message-passing/fixed-relacq", false);
    }

    #[test]
    fn store_buffer_seqcst_forbids_both_zero() {
        let report = store_buffer(300, Ordering::SeqCst);
        assert_eq!(
            report.anomalies, 0,
            "sequential consistency forbids r1 = r2 = 0"
        );
    }

    #[test]
    fn store_buffer_relaxed_races_and_seqcst_does_not() {
        // Interleaving exploration cannot exhibit the weak-memory
        // both-zero outcome itself; what it proves deterministically is
        // the data race on x and y — the precondition that licenses
        // the reordering.
        prove("store-buffer/relaxed", true);
        prove("store-buffer/seqcst", false);
    }

    #[test]
    fn lazy_init_fixed_constructs_exactly_once() {
        let report = lazy_init(50, 4, true);
        assert_eq!(report.anomalies, 0, "OnceLock must construct once");
        assert_eq!(report.observed, report.trials);
    }

    #[test]
    fn lazy_init_racy_has_a_racing_schedule() {
        prove("lazy-init/racy", true);
        prove("lazy-init/fixed-mutex", false);
    }

    #[test]
    fn lazy_init_double_construction_is_witnessed() {
        // The explorer does more than flag the race: some enumerated
        // schedule actually constructs twice.
        let entry = parc_explore::litmus::by_name("lazy-init/racy").unwrap();
        let body = std::sync::Arc::clone(&entry.body);
        let report =
            parc_explore::explore(parc_explore::Config::dfs("lazy-init/racy"), move || body());
        let outcomes = &report.observations["constructions"];
        assert!(
            outcomes.contains(&2),
            "no schedule double-constructed: {outcomes:?}"
        );
    }
}
