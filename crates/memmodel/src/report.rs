//! The pedagogical write-up generator — project 8's actual
//! deliverable ("the outcomes could be useful for future teaching
//! purposes … interactive webpages that helped explain typical race
//! conditions"), rendered as structured text.
//!
//! Each topic pairs a demonstration runner with the avoidance options
//! and their pros/cons, so a report is always backed by freshly
//! executed evidence rather than stale prose.

use crate::cost::{cost_strategies, increment_cost_ns, plain_increment_cost_ns};
use crate::demos::{self, FixStrategy};

/// One avoidance option with its trade-offs (the pros/cons table the
/// students wrote).
#[derive(Clone, Debug)]
pub struct Option_ {
    /// Option name.
    pub name: &'static str,
    /// What it buys.
    pub pros: &'static str,
    /// What it costs.
    pub cons: &'static str,
}

/// A fully rendered teaching topic.
#[derive(Clone, Debug)]
pub struct Topic {
    /// Topic title.
    pub title: &'static str,
    /// The hazard, in one paragraph.
    pub hazard: String,
    /// Fresh evidence from running the demonstration.
    pub evidence: String,
    /// The avoidance options.
    pub options: Vec<Option_>,
}

impl Topic {
    /// Render as text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("## {}\n\n{}\n\nEvidence (just executed):\n{}\n\nHow to avoid it:\n",
            self.title, self.hazard, self.evidence);
        for o in &self.options {
            out.push_str(&format!("  * {} — pros: {}; cons: {}\n", o.name, o.pros, o.cons));
        }
        out
    }
}

/// Build the full teaching report by running every demonstration.
#[must_use]
pub fn build_report() -> Vec<Topic> {
    let lost = demos::lost_update(4, 30_000, true);
    let fixed = demos::lost_update_fixed(4, 30_000, FixStrategy::AtomicRmw);
    let mp = demos::message_passing(200, true);
    let sb_relaxed = demos::store_buffer(300, std::sync::atomic::Ordering::Relaxed);
    let sb_seqcst = demos::store_buffer(300, std::sync::atomic::Ordering::SeqCst);
    let lazy = demos::lazy_init(50, 4, false);

    vec![
        Topic {
            title: "Lost updates: count++ is not atomic",
            hazard: "A read-modify-write compiled as separate load and store \
                     lets two threads read the same old value and overwrite \
                     each other's increment."
                .into(),
            evidence: format!(
                "  racy: {}/{} increments survived ({} lost); atomic fetch_add: {}/{} (0 lost)",
                lost.observed, lost.expected, lost.anomalies, fixed.observed, fixed.expected
            ),
            options: vec![
                Option_ {
                    name: "atomic read-modify-write (fetch_add)",
                    pros: "wait-free, cheapest correct option",
                    cons: "single variables only; composing several is racy again",
                },
                Option_ {
                    name: "mutex",
                    pros: "protects arbitrary multi-variable invariants; simple",
                    cons: "blocking; an order of magnitude dearer per op; deadlock risk if nested",
                },
                Option_ {
                    name: "per-thread accumulation + combine",
                    pros: "no sharing on the hot path at all (the reduction pattern)",
                    cons: "needs an associative combine and a merge phase",
                },
            ],
        },
        Topic {
            title: "Unsafe publication: data before flag",
            hazard: "Writing data then raising a flag with plain/relaxed \
                     accesses gives the reader no guarantee it sees the data \
                     after seeing the flag — publication needs release/acquire."
                .into(),
            evidence: format!(
                "  release/acquire publication over {} rounds: {} stale reads (must be 0)",
                mp.trials, mp.anomalies
            ),
            options: vec![
                Option_ {
                    name: "store(Release) / load(Acquire) on the flag",
                    pros: "exactly the needed guarantee, near-free on x86",
                    cons: "easy to get the pair wrong; fences must match",
                },
                Option_ {
                    name: "channels / message passing",
                    pros: "transfers ownership, impossible to misuse",
                    cons: "allocation + queueing cost; restructures the code",
                },
            ],
        },
        Topic {
            title: "Store buffering: both threads read 0",
            hazard: "x=1; r1=y in one thread and y=1; r2=x in another can \
                     BOTH read 0 unless sequential consistency is requested — \
                     the one reordering even x86 exhibits."
                .into(),
            evidence: format!(
                "  relaxed: {} both-zero outcomes / {} rounds; SeqCst: {} / {} (must be 0)",
                sb_relaxed.anomalies, sb_relaxed.trials, sb_seqcst.anomalies, sb_seqcst.trials
            ),
            options: vec![
                Option_ {
                    name: "SeqCst on the stores and loads",
                    pros: "restores the interleaving intuition",
                    cons: "full fences; the most expensive ordering",
                },
                Option_ {
                    name: "redesign to avoid Dekker-style flags",
                    pros: "mutexes/channels make the pattern unnecessary",
                    cons: "not always possible in lock-free code",
                },
            ],
        },
        Topic {
            title: "Racy lazy initialisation",
            hazard: "check-then-construct lets several threads observe \
                     'uninitialised' simultaneously and construct more than \
                     once (or publish a half-built value)."
                .into(),
            evidence: format!(
                "  racy check-then-act over {} rounds: {} extra constructions; OnceLock: always exactly one",
                lazy.trials, lazy.anomalies
            ),
            options: vec![
                Option_ {
                    name: "OnceLock / get_or_init",
                    pros: "guaranteed single construction, simple",
                    cons: "slight cost on every access (a load + branch)",
                },
                Option_ {
                    name: "eager initialisation",
                    pros: "no synchronisation at all after startup",
                    cons: "pays construction cost even if never used",
                },
            ],
        },
    ]
}

/// The cost appendix: measured ns/op per strategy.
#[must_use]
pub fn cost_appendix() -> String {
    let mut out = String::from("## Appendix: what the fixes cost (ns per increment)\n");
    out.push_str(&format!(
        "  plain (no sync, single thread): {:.2}\n",
        plain_increment_cost_ns(500_000)
    ));
    for fix in cost_strategies() {
        out.push_str(&format!(
            "  {:?}: {:.2}\n",
            fix,
            increment_cost_ns(fix, 500_000)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_four_topics_with_options() {
        let topics = build_report();
        assert_eq!(topics.len(), 4);
        for t in &topics {
            assert!(!t.options.is_empty(), "{} needs options", t.title);
            let rendered = t.render();
            assert!(rendered.contains(t.title));
            assert!(rendered.contains("Evidence"));
            assert!(rendered.contains("pros:"));
        }
    }

    #[test]
    fn evidence_reflects_fixed_variants_correctness() {
        let topics = build_report();
        // The publication topic's evidence must report 0 stale reads.
        let publication = &topics[1];
        assert!(publication.evidence.contains("0 stale reads"));
    }

    #[test]
    fn cost_appendix_lists_all_strategies() {
        let appendix = cost_appendix();
        assert!(appendix.contains("plain"));
        assert!(appendix.contains("AtomicRmw"));
        assert!(appendix.contains("SeqCst"));
        assert!(appendix.contains("Mutex"));
        assert!(appendix.contains("ReleaseAcquire"));
    }
}
