//! A consecutive-failure circuit breaker with half-open probing.

use parc_trace::{BreakerPhase, MarkKind, TraceHandle};
use parking_lot::Mutex;

/// Observable breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests are rejected while the dependency cools down.
    Open,
    /// One probe request is allowed through to test recovery.
    HalfOpen,
}

impl BreakerState {
    fn phase(self) -> BreakerPhase {
        match self {
            BreakerState::Closed => BreakerPhase::Closed,
            BreakerState::Open => BreakerPhase::Open,
            BreakerState::HalfOpen => BreakerPhase::HalfOpen,
        }
    }
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    /// Calls denied since the breaker opened (cooldown progress).
    denied: u32,
    /// Is the half-open probe currently in flight?
    probing: bool,
}

/// Trips open after `threshold` consecutive failures; after
/// `cooldown_calls` denied requests it half-opens and admits a single
/// probe. A successful probe closes the breaker, a failed one re-opens
/// it for another full cooldown.
///
/// Cooldown is counted in *denied calls* rather than elapsed time, so
/// behaviour under a deterministic fault plan is itself deterministic
/// (no wall-clock dependence). Thread-safe: all methods take `&self`.
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    cooldown_calls: u32,
    inner: Mutex<Inner>,
    trace: TraceHandle,
    pid: u32,
}

impl Breaker {
    /// A breaker tripping after `threshold` consecutive failures and
    /// cooling down over `cooldown_calls` denied requests.
    #[must_use]
    pub fn new(threshold: u32, cooldown_calls: u32) -> Self {
        assert!(threshold >= 1, "threshold must be at least 1");
        Self {
            threshold,
            cooldown_calls,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                denied: 0,
                probing: false,
            }),
            trace: TraceHandle::default(),
            pid: 0,
        }
    }

    /// Record this breaker's state transitions through `trace` on the
    /// track `pid` (obtain one with
    /// [`parc_trace::TraceHandle::register_track`]).
    #[must_use]
    pub fn with_trace(mut self, trace: &TraceHandle, pid: u32) -> Self {
        self.trace = trace.clone();
        self.pid = pid;
        self
    }

    /// Emit a transition mark when the state actually changed.
    fn trace_transition(&self, from: BreakerState, to: BreakerState) {
        if from != to {
            self.trace.mark(
                self.pid,
                MarkKind::BreakerTransition { from: from.phase(), to: to.phase() },
            );
        }
    }

    /// May a request proceed right now? Denials advance the cooldown.
    pub fn allow(&self) -> bool {
        let mut g = self.inner.lock();
        let before = g.state;
        let decision = match g.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                g.denied += 1;
                if g.denied >= self.cooldown_calls {
                    g.state = BreakerState::HalfOpen;
                    g.probing = false;
                }
                false
            }
            BreakerState::HalfOpen => {
                if g.probing {
                    false
                } else {
                    g.probing = true;
                    true
                }
            }
        };
        let after = g.state;
        drop(g);
        self.trace_transition(before, after);
        decision
    }

    /// Record that an admitted request succeeded.
    pub fn record_success(&self) {
        let mut g = self.inner.lock();
        let before = g.state;
        g.state = BreakerState::Closed;
        g.consecutive_failures = 0;
        g.denied = 0;
        g.probing = false;
        drop(g);
        self.trace_transition(before, BreakerState::Closed);
    }

    /// Record that an admitted request failed.
    pub fn record_failure(&self) {
        let mut g = self.inner.lock();
        let before = g.state;
        match g.state {
            BreakerState::HalfOpen => {
                // Failed probe: straight back to a full cooldown.
                g.state = BreakerState::Open;
                g.denied = 0;
                g.probing = false;
            }
            BreakerState::Closed => {
                g.consecutive_failures += 1;
                if g.consecutive_failures >= self.threshold {
                    g.state = BreakerState::Open;
                    g.denied = 0;
                }
            }
            BreakerState::Open => {}
        }
        let after = g.state;
        drop(g);
        self.trace_transition(before, after);
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_until_threshold() {
        let b = Breaker::new(3, 5);
        assert!(b.allow());
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
    }

    #[test]
    fn success_resets_failure_streak() {
        let b = Breaker::new(2, 5);
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_leads_to_half_open_probe() {
        let b = Breaker::new(1, 3);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // Three denials complete the cooldown.
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(!b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Exactly one probe gets through.
        assert!(b.allow());
        assert!(!b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn transitions_are_traced() {
        let col = parc_trace::Collector::new();
        let h = col.handle();
        let pid = h.register_track("breaker");
        let b = Breaker::new(1, 1).with_trace(&h, pid);
        b.record_failure(); // Closed -> Open
        assert!(!b.allow()); // cooldown done: Open -> HalfOpen
        assert!(b.allow()); // probe admitted, no transition
        b.record_success(); // HalfOpen -> Closed
        b.record_success(); // already Closed: no transition
        let trace = col.snapshot();
        assert_eq!(trace.counts_by_name()["breaker.transition"], 3);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = Breaker::new(1, 1);
        b.record_failure();
        assert!(!b.allow()); // cooldown done → HalfOpen
        assert!(b.allow()); // probe admitted
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow()); // cooldown done again → HalfOpen
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
