//! A consecutive-failure circuit breaker with half-open probing.

use parc_trace::{BreakerPhase, MarkKind, TraceHandle};
use parking_lot::Mutex;

/// Observable breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests are rejected while the dependency cools down.
    Open,
    /// One probe request is allowed through to test recovery.
    HalfOpen,
}

impl BreakerState {
    fn phase(self) -> BreakerPhase {
        match self {
            BreakerState::Closed => BreakerPhase::Closed,
            BreakerState::Open => BreakerPhase::Open,
            BreakerState::HalfOpen => BreakerPhase::HalfOpen,
        }
    }
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    /// Calls denied since the breaker opened (cooldown progress).
    denied: u32,
    /// Is the half-open probe currently in flight?
    probing: bool,
    /// Consecutive successful probes in the current half-open phase.
    probe_streak: u32,
}

/// Trips open after `threshold` consecutive failures; after
/// `cooldown_calls` denied requests it half-opens and admits probes
/// one at a time. After `probe_successes` consecutive successful
/// probes (default 1, see [`Breaker::with_probe_successes`]) the
/// breaker closes; any failed probe re-opens it for another full
/// cooldown. Requiring more than one probe success makes the breaker
/// robust against *flapping* dependencies that recover for a single
/// call and fail again.
///
/// Cooldown is counted in *denied calls* rather than elapsed time, so
/// behaviour under a deterministic fault plan is itself deterministic
/// (no wall-clock dependence). Thread-safe: all methods take `&self`.
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    cooldown_calls: u32,
    probe_successes: u32,
    inner: Mutex<Inner>,
    trace: TraceHandle,
    pid: u32,
}

impl Breaker {
    /// A breaker tripping after `threshold` consecutive failures and
    /// cooling down over `cooldown_calls` denied requests.
    #[must_use]
    pub fn new(threshold: u32, cooldown_calls: u32) -> Self {
        assert!(threshold >= 1, "threshold must be at least 1");
        Self {
            threshold,
            cooldown_calls,
            probe_successes: 1,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                denied: 0,
                probing: false,
                probe_streak: 0,
            }),
            trace: TraceHandle::default(),
            pid: 0,
        }
    }

    /// Require `n` consecutive successful half-open probes before the
    /// breaker closes (default 1, which preserves the single-probe
    /// behaviour). Probes are still admitted one at a time: each
    /// success admits the next probe, and the breaker closes when the
    /// streak reaches `n`.
    #[must_use]
    pub fn with_probe_successes(mut self, n: u32) -> Self {
        assert!(n >= 1, "at least one successful probe is required");
        self.probe_successes = n;
        self
    }

    /// Record this breaker's state transitions through `trace` on the
    /// track `pid` (obtain one with
    /// [`parc_trace::TraceHandle::register_track`]).
    #[must_use]
    pub fn with_trace(mut self, trace: &TraceHandle, pid: u32) -> Self {
        self.trace = trace.clone();
        self.pid = pid;
        self
    }

    /// Emit a transition mark when the state actually changed.
    fn trace_transition(&self, from: BreakerState, to: BreakerState) {
        if from != to {
            self.trace.mark(
                self.pid,
                MarkKind::BreakerTransition { from: from.phase(), to: to.phase() },
            );
        }
    }

    /// May a request proceed right now? Denials advance the cooldown.
    pub fn allow(&self) -> bool {
        let mut g = self.inner.lock();
        let before = g.state;
        let decision = match g.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                g.denied += 1;
                if g.denied >= self.cooldown_calls {
                    g.state = BreakerState::HalfOpen;
                    g.probing = false;
                }
                false
            }
            BreakerState::HalfOpen => {
                if g.probing {
                    false
                } else {
                    g.probing = true;
                    true
                }
            }
        };
        let after = g.state;
        drop(g);
        self.trace_transition(before, after);
        decision
    }

    /// Record that an admitted request succeeded.
    pub fn record_success(&self) {
        let mut g = self.inner.lock();
        let before = g.state;
        match g.state {
            BreakerState::HalfOpen => {
                g.probe_streak += 1;
                // Clearing `probing` admits the next probe when the
                // required streak has not been reached yet.
                g.probing = false;
                if g.probe_streak >= self.probe_successes {
                    g.state = BreakerState::Closed;
                    g.consecutive_failures = 0;
                    g.denied = 0;
                    g.probe_streak = 0;
                }
            }
            BreakerState::Closed | BreakerState::Open => {
                // A success outside half-open closes the breaker and
                // resets every counter. (In the Open state this can
                // only be a call admitted before the trip; it is
                // treated as evidence of recovery, as the
                // single-probe breaker always did.)
                g.state = BreakerState::Closed;
                g.consecutive_failures = 0;
                g.denied = 0;
                g.probing = false;
                g.probe_streak = 0;
            }
        }
        let after = g.state;
        drop(g);
        self.trace_transition(before, after);
    }

    /// Record that an admitted request failed.
    pub fn record_failure(&self) {
        let mut g = self.inner.lock();
        let before = g.state;
        match g.state {
            BreakerState::HalfOpen => {
                // Failed probe: straight back to a full cooldown, and
                // any accumulated probe streak is forfeited.
                g.state = BreakerState::Open;
                g.denied = 0;
                g.probing = false;
                g.probe_streak = 0;
            }
            BreakerState::Closed => {
                g.consecutive_failures += 1;
                if g.consecutive_failures >= self.threshold {
                    g.state = BreakerState::Open;
                    g.denied = 0;
                }
            }
            BreakerState::Open => {}
        }
        let after = g.state;
        drop(g);
        self.trace_transition(before, after);
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_until_threshold() {
        let b = Breaker::new(3, 5);
        assert!(b.allow());
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
    }

    #[test]
    fn success_resets_failure_streak() {
        let b = Breaker::new(2, 5);
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_leads_to_half_open_probe() {
        let b = Breaker::new(1, 3);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // Three denials complete the cooldown.
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(!b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Exactly one probe gets through.
        assert!(b.allow());
        assert!(!b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn transitions_are_traced() {
        let col = parc_trace::Collector::new();
        let h = col.handle();
        let pid = h.register_track("breaker");
        let b = Breaker::new(1, 1).with_trace(&h, pid);
        b.record_failure(); // Closed -> Open
        assert!(!b.allow()); // cooldown done: Open -> HalfOpen
        assert!(b.allow()); // probe admitted, no transition
        b.record_success(); // HalfOpen -> Closed
        b.record_success(); // already Closed: no transition
        let trace = col.snapshot();
        assert_eq!(trace.counts_by_name()["breaker.transition"], 3);
    }

    #[test]
    fn multi_probe_threshold_requires_a_streak() {
        let b = Breaker::new(1, 2).with_probe_successes(3);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        assert!(!b.allow()); // cooldown done → HalfOpen
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Each success admits the next probe; only the third closes.
        for expected_probes in 1..=2 {
            assert!(b.allow(), "probe {expected_probes} admitted");
            assert!(!b.allow(), "one probe at a time");
            b.record_success();
            assert_eq!(b.state(), BreakerState::HalfOpen, "streak not complete");
        }
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn flapping_dependency_cannot_close_a_multi_probe_breaker() {
        // Dependency pattern: one success, then a failure — forever.
        // A single-probe breaker would close on every good call and
        // trip again immediately; requiring a streak of 2 keeps it
        // open/half-open throughout the flapping.
        let b = Breaker::new(1, 1).with_probe_successes(2);
        b.record_failure();
        for _ in 0..10 {
            assert!(!b.allow()); // cooldown → HalfOpen
            assert!(b.allow()); // probe 1
            b.record_success(); // streak 1 of 2: still HalfOpen
            assert_eq!(b.state(), BreakerState::HalfOpen);
            assert!(b.allow()); // probe 2
            b.record_failure(); // flap: streak forfeited, re-open
            assert_eq!(b.state(), BreakerState::Open);
        }
    }

    #[test]
    fn single_probe_default_closes_on_flap_recovery() {
        // The contrast case: with the default threshold of 1 the same
        // flapping pattern closes (and re-trips) the breaker each
        // cycle — the pre-existing behaviour, preserved by default.
        let b = Breaker::new(1, 1);
        b.record_failure();
        assert!(!b.allow());
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = Breaker::new(1, 1);
        b.record_failure();
        assert!(!b.allow()); // cooldown done → HalfOpen
        assert!(b.allow()); // probe admitted
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow()); // cooldown done again → HalfOpen
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
