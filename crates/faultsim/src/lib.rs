//! # faultsim — deterministic fault injection and resilience primitives
//!
//! The course projects this workspace reproduces (web crawler, task
//! runtime, pyjama teams) originally treated failure as an
//! afterthought: a failed fetch panicked the calling task and a
//! panicking team member deadlocked its siblings. This crate provides
//! the shared vocabulary for doing better, in three pieces:
//!
//! * [`FaultPlan`] / [`FaultInjector`] — a *seeded, deterministic*
//!   fault source. Every decision is a pure function of
//!   `(seed, key, attempt)`, so a chaos test that replays the same
//!   plan observes bit-identical faults regardless of thread
//!   interleaving. That is the property the chaos suite in
//!   `tests/chaos.rs` asserts.
//! * [`RetryPolicy`] — fixed or exponential backoff with
//!   deterministic jitter, bounded attempts, and per-attempt /
//!   overall deadlines. Delay schedules are derived from a seed, so
//!   two runs of the same policy produce the same waits.
//! * [`Breaker`] — a consecutive-failure circuit breaker with
//!   half-open probing. Cooldown is measured in *denied calls*, not
//!   wall time, which keeps simulations deterministic.
//! * [`FaultStorm`] — named, phase-structured storm schedules (burst,
//!   brownout, flapping) layered on [`FaultPlan`], for soak tests that
//!   exercise degradation *and* recovery in one seeded narrative.
//!
//! Consumers: `websim` wires an injector into its simulated server
//! and drives `try_fetch_all` with a `RetryPolicy`; `partask` and
//! `pyjama` use the same plans to schedule injected panics in tests.

mod breaker;
mod inject;
mod retry;
mod storm;

pub use breaker::{Breaker, BreakerState};
pub use inject::{Fault, FaultInjector, FaultPlan};
pub use retry::{Backoff, Retried, RetryError, RetryPolicy};
pub use storm::{FaultStorm, StormPhase};

/// Prefix of every panic message this crate injects (see
/// [`Fault::Panic`]); consumers that contain injected panics match on
/// it to tell simulation artifacts from real failures.
pub const INJECTED_PANIC_PREFIX: &str = "faultsim: injected panic";

static SILENCE_HOOK: std::sync::Once = std::sync::Once::new();

/// Stop the default panic hook from printing a "thread panicked"
/// report (and backtrace) for *injected* panics — panics whose payload
/// starts with [`INJECTED_PANIC_PREFIX`]. Every other panic still goes
/// through the previously installed hook.
///
/// Injected panics are expected simulation events that the harness
/// catches per-attempt; without this, a chaos run buries its real
/// output under screens of bogus backtraces. Call it once at the top
/// of an example or chaos test. Installation is process-global and
/// idempotent.
pub fn silence_injected_panics() {
    SILENCE_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .is_some_and(|s| s.starts_with(INJECTED_PANIC_PREFIX));
            if !injected {
                previous(info);
            }
        }));
    });
}
