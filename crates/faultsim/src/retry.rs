//! Retry policies: bounded attempts, backoff, deterministic jitter,
//! and deadlines.

use std::time::Duration;

use parc_util::rng::SplitMix64;

/// How the delay between attempts grows.
#[derive(Clone, Copy, Debug)]
pub enum Backoff {
    /// The same delay after every failure.
    Fixed(Duration),
    /// `base * factor^(k-1)` after the `k`-th failure, capped at `max`.
    Exponential {
        /// Delay after the first failure.
        base: Duration,
        /// Growth factor (≥ 1 keeps the schedule monotone).
        factor: f64,
        /// Upper bound on any single delay.
        max: Duration,
    },
}

/// A successful call plus how hard the policy had to work for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Retried<T> {
    /// The operation's result.
    pub value: T,
    /// Attempts used, including the successful one (≥ 1).
    pub attempts: u32,
}

/// Why a retried operation ultimately did not succeed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RetryError<E> {
    /// Every permitted attempt failed.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The error from the final attempt.
        last: E,
    },
    /// The overall deadline left no room for another attempt.
    DeadlineExceeded {
        /// Attempts made before giving up.
        attempts: u32,
        /// The error from the final attempt.
        last: E,
    },
}

impl<E> RetryError<E> {
    /// Attempts made before failing.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        match self {
            RetryError::Exhausted { attempts, .. }
            | RetryError::DeadlineExceeded { attempts, .. } => *attempts,
        }
    }

    /// The error from the final attempt.
    #[must_use]
    pub fn last_error(&self) -> &E {
        match self {
            RetryError::Exhausted { last, .. }
            | RetryError::DeadlineExceeded { last, .. } => last,
        }
    }
}

/// A bounded, deterministic retry schedule.
///
/// Jitter is *seeded*, not sampled from ambient randomness: the delay
/// before attempt `k` is `raw_delay(k) * j` where `j ∈ [1-jitter,
/// 1+jitter]` is a pure function of `(seed, k)`. Two executions with
/// the same seed therefore wait exactly as long as each other, which
/// lets chaos tests assert on schedules.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    backoff: Backoff,
    max_attempts: u32,
    jitter: f64,
    per_attempt_timeout: Option<Duration>,
    overall_deadline: Option<Duration>,
}

impl RetryPolicy {
    /// Fixed backoff of `delay` between attempts.
    #[must_use]
    pub fn fixed(delay: Duration) -> Self {
        Self {
            backoff: Backoff::Fixed(delay),
            max_attempts: 3,
            jitter: 0.0,
            per_attempt_timeout: None,
            overall_deadline: None,
        }
    }

    /// Exponential backoff starting at `base`, growing by `factor`,
    /// capped at `max`.
    #[must_use]
    pub fn exponential(base: Duration, factor: f64, max: Duration) -> Self {
        assert!(factor >= 1.0, "factor < 1 would shrink delays");
        Self {
            backoff: Backoff::Exponential { base, factor, max },
            max_attempts: 3,
            jitter: 0.0,
            per_attempt_timeout: None,
            overall_deadline: None,
        }
    }

    /// Total attempts permitted (including the first; must be ≥ 1).
    #[must_use]
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        assert!(n >= 1, "at least one attempt required");
        self.max_attempts = n;
        self
    }

    /// Jitter fraction in `[0, 1)`: each delay is scaled by a
    /// deterministic factor in `[1 - jitter, 1 + jitter]`.
    #[must_use]
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0,1)");
        self.jitter = jitter;
        self
    }

    /// Budget for any single attempt (enforced by the caller's
    /// operation, surfaced here for introspection).
    #[must_use]
    pub fn with_per_attempt_timeout(mut self, t: Duration) -> Self {
        self.per_attempt_timeout = Some(t);
        self
    }

    /// Budget for the whole retry loop, counted over backoff delays.
    #[must_use]
    pub fn with_overall_deadline(mut self, t: Duration) -> Self {
        self.overall_deadline = Some(t);
        self
    }

    /// Maximum attempts (including the first).
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The per-attempt budget, if configured.
    #[must_use]
    pub fn per_attempt_timeout(&self) -> Option<Duration> {
        self.per_attempt_timeout
    }

    /// The overall budget, if configured.
    #[must_use]
    pub fn overall_deadline(&self) -> Option<Duration> {
        self.overall_deadline
    }

    /// Un-jittered delay after the `k`-th failed attempt (`k` ≥ 1).
    /// Monotone non-decreasing in `k` for both backoff shapes.
    #[must_use]
    pub fn raw_delay(&self, failed_attempt: u32) -> Duration {
        assert!(failed_attempt >= 1, "attempts are 1-based");
        match self.backoff {
            Backoff::Fixed(d) => d,
            Backoff::Exponential { base, factor, max } => {
                let exp = factor.powi(i32::try_from(failed_attempt - 1).unwrap_or(i32::MAX));
                let scaled = base.as_secs_f64() * exp;
                Duration::from_secs_f64(scaled.min(max.as_secs_f64()))
            }
        }
    }

    /// Jittered delay after the `k`-th failed attempt: a pure function
    /// of `(seed, k)`.
    #[must_use]
    pub fn delay_after(&self, failed_attempt: u32, seed: u64) -> Duration {
        let raw = self.raw_delay(failed_attempt);
        if self.jitter == 0.0 {
            return raw;
        }
        let h = SplitMix64::mix(seed ^ u64::from(failed_attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        #[allow(clippy::cast_precision_loss)]
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let factor = 1.0 + self.jitter * (2.0 * unit - 1.0);
        Duration::from_secs_f64(raw.as_secs_f64() * factor)
    }

    /// The full delay schedule for `seed`: the waits between attempts
    /// `1..max_attempts`, truncated so the cumulative delay never
    /// exceeds the overall deadline (when one is set).
    #[must_use]
    pub fn schedule(&self, seed: u64) -> Vec<Duration> {
        let mut out = Vec::new();
        let mut total = Duration::ZERO;
        for failed in 1..self.max_attempts {
            let d = self.delay_after(failed, seed);
            if let Some(deadline) = self.overall_deadline {
                if total + d > deadline {
                    break;
                }
            }
            total += d;
            out.push(d);
        }
        out
    }

    /// The single retry loop every `execute*` front end drives.
    /// `on_wait` observes each backoff with the 1-based *failed*
    /// attempt number and the (jittered) delay — the tracing front end
    /// hooks it, so nobody re-counts attempts outside the loop.
    fn execute_inner<T, E>(
        &self,
        seed: u64,
        mut on_wait: impl FnMut(u32, Duration),
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<Retried<T>, RetryError<E>> {
        let mut waited = Duration::ZERO;
        let mut attempt = 1u32;
        loop {
            match op(attempt) {
                Ok(value) => return Ok(Retried { value, attempts: attempt }),
                Err(last) => {
                    if attempt >= self.max_attempts {
                        return Err(RetryError::Exhausted { attempts: attempt, last });
                    }
                    let delay = self.delay_after(attempt, seed);
                    if let Some(deadline) = self.overall_deadline {
                        if waited + delay > deadline {
                            return Err(RetryError::DeadlineExceeded {
                                attempts: attempt,
                                last,
                            });
                        }
                    }
                    waited += delay;
                    on_wait(attempt, delay);
                    attempt += 1;
                }
            }
        }
    }

    /// Drive `op` under this policy. `sleep` receives each backoff
    /// delay — pass `std::thread::sleep` in production or a recorder /
    /// no-op in tests. `op` gets the 1-based attempt number.
    pub fn execute_with<T, E>(
        &self,
        seed: u64,
        mut sleep: impl FnMut(Duration),
        op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<Retried<T>, RetryError<E>> {
        self.execute_inner(seed, |_failed, delay| sleep(delay), op)
    }

    /// [`execute_with`](Self::execute_with) using real
    /// `std::thread::sleep` between attempts.
    pub fn execute<T, E>(
        &self,
        seed: u64,
        op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<Retried<T>, RetryError<E>> {
        self.execute_with(seed, std::thread::sleep, op)
    }

    /// [`execute_with`](Self::execute_with), recording the operation
    /// as a `retry.op` span on `trace` with a `retry.wait` mark for
    /// every backoff delay. `key` identifies the operation in the
    /// trace (websim uses the page id).
    pub fn execute_traced<T, E>(
        &self,
        seed: u64,
        trace: &parc_trace::TraceHandle,
        pid: u32,
        key: u64,
        mut sleep: impl FnMut(Duration),
        op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<Retried<T>, RetryError<E>> {
        let _span = trace.span(pid, parc_trace::SpanKind::RetryOp { key });
        self.execute_inner(
            seed,
            |failed_attempt, delay| {
                trace.mark(
                    pid,
                    parc_trace::MarkKind::RetryWait {
                        key,
                        failed_attempt,
                        delay_ns: u64::try_from(delay.as_nanos()).unwrap_or(u64::MAX),
                    },
                );
                sleep(delay);
            },
            op,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_delays_are_flat() {
        let p = RetryPolicy::fixed(Duration::from_millis(10)).with_max_attempts(5);
        for k in 1..5 {
            assert_eq!(p.raw_delay(k), Duration::from_millis(10));
        }
    }

    #[test]
    fn exponential_is_monotone_and_capped() {
        let p = RetryPolicy::exponential(
            Duration::from_millis(5),
            2.0,
            Duration::from_millis(40),
        )
        .with_max_attempts(8);
        let mut prev = Duration::ZERO;
        for k in 1..8 {
            let d = p.raw_delay(k);
            assert!(d >= prev, "delay shrank at k={k}");
            assert!(d <= Duration::from_millis(40));
            prev = d;
        }
        assert_eq!(p.raw_delay(7), Duration::from_millis(40));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::fixed(Duration::from_millis(100))
            .with_max_attempts(10)
            .with_jitter(0.5);
        for k in 1..10 {
            let a = p.delay_after(k, 1234);
            let b = p.delay_after(k, 1234);
            assert_eq!(a, b, "same seed produced different jitter");
            assert!(a >= Duration::from_millis(50) && a <= Duration::from_millis(150));
        }
        let diverged = (1..10).any(|k| p.delay_after(k, 1) != p.delay_after(k, 2));
        assert!(diverged, "seed had no effect on jitter");
    }

    #[test]
    fn schedule_respects_overall_deadline() {
        let p = RetryPolicy::fixed(Duration::from_millis(30))
            .with_max_attempts(10)
            .with_overall_deadline(Duration::from_millis(100));
        let sched = p.schedule(0);
        let total: Duration = sched.iter().sum();
        assert!(total <= Duration::from_millis(100));
        assert_eq!(sched.len(), 3); // 30+30+30 fits, the 4th would not
    }

    #[test]
    fn execute_retries_until_success() {
        let p = RetryPolicy::fixed(Duration::from_millis(1)).with_max_attempts(5);
        let mut sleeps = Vec::new();
        let out = p
            .execute_with(9, |d| sleeps.push(d), |attempt| {
                if attempt < 3 { Err("boom") } else { Ok(attempt * 10) }
            })
            .expect("succeeds on attempt 3");
        assert_eq!(out.value, 30);
        assert_eq!(out.attempts, 3);
        assert_eq!(sleeps.len(), 2);
    }

    #[test]
    fn execute_exhausts_attempts() {
        let p = RetryPolicy::fixed(Duration::ZERO).with_max_attempts(4);
        let err = p
            .execute_with::<(), _>(0, |_| {}, |_| Err("always"))
            .expect_err("cannot succeed");
        assert_eq!(err.attempts(), 4);
        assert_eq!(*err.last_error(), "always");
        assert!(matches!(err, RetryError::Exhausted { .. }));
    }

    #[test]
    fn execute_traced_records_span_and_waits() {
        let col = parc_trace::Collector::new();
        let h = col.handle();
        let pid = h.register_track("retry");
        let p = RetryPolicy::fixed(Duration::from_millis(1)).with_max_attempts(5);
        let out = p
            .execute_traced(9, &h, pid, 42, |_| {}, |attempt| {
                if attempt < 3 { Err("boom") } else { Ok(attempt) }
            })
            .expect("succeeds on attempt 3");
        assert_eq!(out.attempts, 3);
        let trace = col.snapshot();
        let counts = trace.counts_by_name();
        assert_eq!(counts["retry.op"], 1);
        assert_eq!(counts["retry.wait"], 2, "two failed attempts, two waits");
        assert_eq!(trace.spans().len(), 1);
    }

    #[test]
    fn execute_stops_at_deadline() {
        let p = RetryPolicy::fixed(Duration::from_millis(60))
            .with_max_attempts(10)
            .with_overall_deadline(Duration::from_millis(100));
        let err = p
            .execute_with::<(), _>(0, |_| {}, |_| Err("always"))
            .expect_err("cannot succeed");
        // One 60 ms wait fits the 100 ms budget; the second would not.
        assert_eq!(err.attempts(), 2);
        assert!(matches!(err, RetryError::DeadlineExceeded { .. }));
    }
}
