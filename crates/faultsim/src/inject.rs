//! Seeded fault plans and the deterministic injector.

use std::collections::HashMap;

use parc_util::rng::SplitMix64;

/// One injected fault, as decided for a single `(key, attempt)` pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// Proceed normally.
    None,
    /// Fail with a retryable error (e.g. connection reset).
    TransientError,
    /// Fail by exceeding the caller's per-attempt timeout.
    Timeout,
    /// Unwind with a panic inside the faulted operation.
    Panic,
    /// Succeed, but only after an extra latency spike.
    LatencySpike {
        /// Additional simulated-model milliseconds.
        extra_ms: f64,
    },
}

impl Fault {
    /// Is this a failure (anything that prevents a normal result)?
    #[must_use]
    pub fn is_failure(self) -> bool {
        matches!(self, Fault::TransientError | Fault::Timeout | Fault::Panic)
    }
}

/// A declarative description of what should go wrong, and how often.
///
/// Rates are probabilities in `[0, 1]` evaluated *independently per
/// attempt*; `fail_key_n_times` entries override the random draws for
/// specific keys (the classic "page fails twice then recovers"
/// scenario). The plan carries its own seed: two injectors built from
/// equal plans make identical decisions forever.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Root seed every decision is derived from.
    pub seed: u64,
    /// Probability of [`Fault::TransientError`] per attempt.
    pub error_rate: f64,
    /// Probability of [`Fault::Timeout`] per attempt.
    pub timeout_rate: f64,
    /// Probability of [`Fault::Panic`] per attempt.
    pub panic_rate: f64,
    /// Probability of a [`Fault::LatencySpike`] per attempt.
    pub latency_spike_rate: f64,
    /// Extra model-milliseconds added by each latency spike.
    pub latency_spike_ms: f64,
    fail_then_recover: HashMap<u64, u32>,
    /// Flapping window: random draws apply only while
    /// `(attempt - 1) % period < on`. `None` means always on.
    flapping: Option<(u32, u32)>,
}

impl FaultPlan {
    /// A plan injecting nothing: every decision is [`Fault::None`].
    #[must_use]
    pub fn reliable(seed: u64) -> Self {
        Self {
            seed,
            error_rate: 0.0,
            timeout_rate: 0.0,
            panic_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike_ms: 0.0,
            fail_then_recover: HashMap::new(),
            flapping: None,
        }
    }

    /// Set the transient-error probability.
    #[must_use]
    pub fn with_error_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        self.error_rate = rate;
        self
    }

    /// Set the timeout probability.
    #[must_use]
    pub fn with_timeout_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        self.timeout_rate = rate;
        self
    }

    /// Set the injected-panic probability.
    #[must_use]
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        self.panic_rate = rate;
        self
    }

    /// Set the latency-spike probability and magnitude.
    #[must_use]
    pub fn with_latency_spikes(mut self, rate: f64, extra_ms: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        assert!(extra_ms >= 0.0, "spike must be non-negative");
        self.latency_spike_rate = rate;
        self.latency_spike_ms = extra_ms;
        self
    }

    /// Restrict the *random* fault rates to a flapping window: they
    /// apply only while `(attempt - 1) % period < on`, so a dependency
    /// alternates between `on` faulty attempts and `period - on` clean
    /// ones. Forced [`FaultPlan::fail_key_n_times`] overrides are not
    /// gated. Modelling the flap on the attempt counter (not wall
    /// time) keeps decisions pure functions of `(seed, key, attempt)`.
    #[must_use]
    pub fn with_flapping(mut self, period: u32, on: u32) -> Self {
        assert!(period >= 1, "flap period must be at least 1");
        assert!(on <= period, "on-window cannot exceed the period");
        self.flapping = Some((period, on));
        self
    }

    /// Is the random-fault window open at `attempt` (1-based)?
    #[must_use]
    pub fn flap_window_open(&self, attempt: u32) -> bool {
        match self.flapping {
            None => true,
            Some((period, on)) => (attempt - 1) % period < on,
        }
    }

    /// Force `key` to fail its first `n` attempts with
    /// [`Fault::TransientError`], then behave per the random rates.
    #[must_use]
    pub fn fail_key_n_times(mut self, key: u64, n: u32) -> Self {
        self.fail_then_recover.insert(key, n);
        self
    }

    /// How many forced failures remain for `key` at `attempt`
    /// (1-based), if any override exists.
    #[must_use]
    pub fn forced_failures(&self, key: u64) -> Option<u32> {
        self.fail_then_recover.get(&key).copied()
    }
}

/// Stateless decision engine over a [`FaultPlan`].
///
/// `decide(key, attempt)` is a pure function: it hashes
/// `(seed, key, attempt)` into independent uniform draws and compares
/// them against the plan's rates. No interior state, no ordering
/// sensitivity — concurrent callers on any schedule observe the same
/// faults, which makes whole-system runs replayable.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Build an injector for `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan }
    }

    /// The plan this injector executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fault for one attempt. `attempt` is 1-based.
    #[must_use]
    pub fn decide(&self, key: u64, attempt: u32) -> Fault {
        if let Some(n) = self.plan.forced_failures(key) {
            if attempt <= n {
                return Fault::TransientError;
            }
        }
        if !self.plan.flap_window_open(attempt) {
            return Fault::None;
        }
        let mut h = SplitMix64::mix(
            self.plan
                .seed
                .wrapping_add(SplitMix64::mix(key).rotate_left(17))
                .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let mut draw = || {
            h = SplitMix64::mix(h);
            unit(h)
        };
        // Independent draws, checked from most to least disruptive so
        // tightening one rate never perturbs another rate's stream.
        if draw() < self.plan.panic_rate {
            return Fault::Panic;
        }
        if draw() < self.plan.timeout_rate {
            return Fault::Timeout;
        }
        if draw() < self.plan.error_rate {
            return Fault::TransientError;
        }
        if draw() < self.plan.latency_spike_rate {
            return Fault::LatencySpike {
                extra_ms: self.plan.latency_spike_ms,
            };
        }
        Fault::None
    }
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit(h: u64) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    let mantissa = (h >> 11) as f64;
    mantissa * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy_plan() -> FaultPlan {
        FaultPlan::reliable(42)
            .with_error_rate(0.2)
            .with_timeout_rate(0.1)
            .with_panic_rate(0.05)
            .with_latency_spikes(0.1, 25.0)
    }

    #[test]
    fn decisions_are_pure_functions() {
        let a = FaultInjector::new(lossy_plan());
        let b = FaultInjector::new(lossy_plan());
        for key in 0..500 {
            for attempt in 1..4 {
                let fa = a.decide(key, attempt);
                assert_eq!(fa, b.decide(key, attempt), "key {key} attempt {attempt}");
                assert_eq!(fa, a.decide(key, attempt), "repeat call differed");
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultInjector::new(lossy_plan());
        let mut other = lossy_plan();
        other.seed = 43;
        let b = FaultInjector::new(other);
        let diverged = (0..500).any(|k| a.decide(k, 1) != b.decide(k, 1));
        assert!(diverged, "seed had no effect on decisions");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let inj = FaultInjector::new(
            FaultPlan::reliable(7).with_error_rate(0.25),
        );
        let n = 20_000u64;
        let errors = (0..n)
            .filter(|&k| inj.decide(k, 1) == Fault::TransientError)
            .count();
        #[allow(clippy::cast_precision_loss)]
        let observed = errors as f64 / n as f64;
        assert!(
            (observed - 0.25).abs() < 0.02,
            "observed error rate {observed}"
        );
    }

    #[test]
    fn fail_n_then_recover_overrides() {
        let inj = FaultInjector::new(FaultPlan::reliable(1).fail_key_n_times(9, 2));
        assert_eq!(inj.decide(9, 1), Fault::TransientError);
        assert_eq!(inj.decide(9, 2), Fault::TransientError);
        assert_eq!(inj.decide(9, 3), Fault::None);
        assert_eq!(inj.decide(8, 1), Fault::None);
    }

    #[test]
    fn reliable_plan_injects_nothing() {
        let inj = FaultInjector::new(FaultPlan::reliable(999));
        assert!((0..1000).all(|k| inj.decide(k, 1) == Fault::None));
    }

    #[test]
    fn flapping_gates_random_faults_by_attempt() {
        // 2 faulty attempts, then 3 clean ones, repeating.
        let plan = FaultPlan::reliable(11).with_error_rate(1.0).with_flapping(5, 2);
        let inj = FaultInjector::new(plan);
        for key in 0..20 {
            for attempt in 1..=15 {
                let expect_fault = (attempt - 1) % 5 < 2;
                let got = inj.decide(key, attempt);
                if expect_fault {
                    assert_eq!(got, Fault::TransientError, "key {key} attempt {attempt}");
                } else {
                    assert_eq!(got, Fault::None, "key {key} attempt {attempt}");
                }
            }
        }
    }

    #[test]
    fn flapping_does_not_gate_forced_failures() {
        // Off-window attempts still honour fail_key_n_times.
        let plan = FaultPlan::reliable(5).with_flapping(4, 1).fail_key_n_times(3, 3);
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.decide(3, 2), Fault::TransientError, "forced, window closed");
        assert_eq!(inj.decide(3, 4), Fault::None, "recovered, window closed");
    }

    #[test]
    fn attempts_get_independent_draws() {
        let inj = FaultInjector::new(FaultPlan::reliable(3).with_error_rate(0.5));
        // With per-attempt independence, some key must fail on attempt 1
        // and succeed on attempt 2 (retry can make progress).
        let recovers = (0..200).any(|k| {
            inj.decide(k, 1) == Fault::TransientError && inj.decide(k, 2) == Fault::None
        });
        assert!(recovers, "no key ever recovered on retry");
    }
}
