//! Phase-structured seeded fault storms.
//!
//! A [`FaultStorm`] strings several [`FaultPlan`]s into a named
//! narrative — calm, then a disruption with a characteristic shape,
//! then recovery. Soak harnesses walk the phases in order, running one
//! unit of work per phase, so a storm describes *how a system degrades
//! and heals over time* rather than a single stationary failure rate.
//!
//! Everything is derived from the storm's root seed: phase `i` gets
//! the sub-seed `SplitMix64::mix(seed ^ i)`, so two storms built from
//! the same `(shape, seed)` drive bit-identical fault decisions. The
//! three shipped shapes mirror the outage taxonomy the resilience
//! lectures use:
//!
//! * **burst** — a short total outage: brief, very high failure rates,
//!   then a clean recovery.
//! * **brownout** — a long partial degradation: moderate error rates
//!   plus heavy latency inflation, stressing load shedding.
//! * **flapping** — a dependency that alternates between healthy and
//!   failing on a fixed attempt cadence, stressing breaker hysteresis.

use parc_util::rng::SplitMix64;

use crate::inject::FaultPlan;

/// One phase of a storm: a fault plan plus the load-model knobs the
/// serving layer should apply while the phase is active.
#[derive(Clone, Debug)]
pub struct StormPhase {
    /// Human-readable phase name (`"calm"`, `"peak"`, ...).
    pub label: &'static str,
    /// Faults injected while this phase is active.
    pub plan: FaultPlan,
    /// Multiplier on modelled request latency (1.0 = nominal).
    pub latency_factor: f64,
    /// Deadline budget (model milliseconds) used for load shedding:
    /// requests predicted to exceed it are shed rather than served.
    pub shed_budget_ms: f64,
}

/// A named, seeded sequence of [`StormPhase`]s.
#[derive(Clone, Debug)]
pub struct FaultStorm {
    /// Storm shape name (`"burst"`, `"brownout"`, `"flapping"`).
    pub name: &'static str,
    /// Root seed all phase sub-seeds derive from.
    pub seed: u64,
    /// Phases, walked in order by the harness.
    pub phases: Vec<StormPhase>,
}

impl FaultStorm {
    /// The sub-seed for phase `index`: a pure function of the storm
    /// seed, so phases are independent streams yet fully replayable.
    #[must_use]
    pub fn phase_seed(seed: u64, index: u64) -> u64 {
        SplitMix64::mix(seed ^ index)
    }

    /// A short total outage: one calm warm-up phase, one peak phase
    /// where most attempts fail outright, then a clean recovery.
    #[must_use]
    pub fn burst(seed: u64) -> Self {
        let phase = |i: u64| Self::phase_seed(seed, i);
        Self {
            name: "burst",
            seed,
            phases: vec![
                StormPhase {
                    label: "calm",
                    plan: FaultPlan::reliable(phase(0)),
                    latency_factor: 1.0,
                    shed_budget_ms: 250.0,
                },
                StormPhase {
                    label: "peak",
                    plan: FaultPlan::reliable(phase(1))
                        .with_error_rate(0.55)
                        .with_timeout_rate(0.15)
                        .with_panic_rate(0.05),
                    latency_factor: 2.0,
                    shed_budget_ms: 250.0,
                },
                StormPhase {
                    label: "recovery",
                    plan: FaultPlan::reliable(phase(2)).with_error_rate(0.05),
                    latency_factor: 1.0,
                    shed_budget_ms: 250.0,
                },
            ],
        }
    }

    /// A long partial degradation: two brownout phases with moderate
    /// error rates but heavy latency inflation and a tight shedding
    /// budget, bracketed by calm and recovery.
    #[must_use]
    pub fn brownout(seed: u64) -> Self {
        let phase = |i: u64| Self::phase_seed(seed, i);
        let dim = |s: u64| {
            FaultPlan::reliable(s)
                .with_error_rate(0.2)
                .with_timeout_rate(0.1)
                .with_latency_spikes(0.5, 120.0)
        };
        Self {
            name: "brownout",
            seed,
            phases: vec![
                StormPhase {
                    label: "calm",
                    plan: FaultPlan::reliable(phase(0)),
                    latency_factor: 1.0,
                    shed_budget_ms: 250.0,
                },
                StormPhase {
                    label: "dim",
                    plan: dim(phase(1)),
                    latency_factor: 4.0,
                    shed_budget_ms: 120.0,
                },
                StormPhase {
                    label: "dimmer",
                    plan: dim(phase(2)).with_error_rate(0.35),
                    latency_factor: 6.0,
                    shed_budget_ms: 80.0,
                },
                StormPhase {
                    label: "recovery",
                    plan: FaultPlan::reliable(phase(3)).with_error_rate(0.05),
                    latency_factor: 1.5,
                    shed_budget_ms: 250.0,
                },
            ],
        }
    }

    /// A flapping dependency: the peak phase gates its (high) failure
    /// rates through [`FaultPlan::with_flapping`], so retries land in
    /// alternating healthy and failing windows — the pattern that
    /// defeats single-probe circuit breakers.
    #[must_use]
    pub fn flapping(seed: u64) -> Self {
        let phase = |i: u64| Self::phase_seed(seed, i);
        Self {
            name: "flapping",
            seed,
            phases: vec![
                StormPhase {
                    label: "calm",
                    plan: FaultPlan::reliable(phase(0)),
                    latency_factor: 1.0,
                    shed_budget_ms: 250.0,
                },
                StormPhase {
                    label: "flap",
                    plan: FaultPlan::reliable(phase(1))
                        .with_error_rate(0.9)
                        .with_flapping(4, 2),
                    latency_factor: 1.5,
                    shed_budget_ms: 200.0,
                },
                StormPhase {
                    label: "flap-fast",
                    plan: FaultPlan::reliable(phase(2))
                        .with_error_rate(0.9)
                        .with_timeout_rate(0.2)
                        .with_flapping(2, 1),
                    latency_factor: 2.0,
                    shed_budget_ms: 150.0,
                },
                StormPhase {
                    label: "recovery",
                    plan: FaultPlan::reliable(phase(3)),
                    latency_factor: 1.0,
                    shed_budget_ms: 250.0,
                },
            ],
        }
    }

    /// Every shipped storm shape, all derived from `seed`.
    #[must_use]
    pub fn all(seed: u64) -> Vec<Self> {
        vec![Self::burst(seed), Self::brownout(seed), Self::flapping(seed)]
    }

    /// The phase active at `step` of a harness that walks `total`
    /// equally sized steps across the whole storm — how continuous
    /// load schedules (one step per traffic tick) overlay the phase
    /// narrative. Steps split evenly; the last phase absorbs any
    /// remainder, and out-of-range steps clamp to the final phase.
    ///
    /// # Panics
    /// If the storm has no phases (shipped shapes always do).
    #[must_use]
    pub fn phase_at(&self, step: usize, total: usize) -> &StormPhase {
        assert!(!self.phases.is_empty(), "storm has no phases");
        let n = self.phases.len();
        let total = total.max(1);
        let idx = (step.min(total - 1) * n) / total;
        &self.phases[idx.min(n - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{Fault, FaultInjector};

    #[test]
    fn same_seed_builds_identical_storms() {
        for (a, b) in FaultStorm::all(0xC0FFEE).into_iter().zip(FaultStorm::all(0xC0FFEE)) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.phases.len(), b.phases.len());
            for (pa, pb) in a.phases.iter().zip(&b.phases) {
                assert_eq!(pa.label, pb.label);
                assert_eq!(pa.plan.seed, pb.plan.seed);
                assert!((pa.latency_factor - pb.latency_factor).abs() < f64::EPSILON);
                assert!((pa.shed_budget_ms - pb.shed_budget_ms).abs() < f64::EPSILON);
                let ia = FaultInjector::new(pa.plan.clone());
                let ib = FaultInjector::new(pb.plan.clone());
                for key in 0..64 {
                    for attempt in 1..4 {
                        assert_eq!(ia.decide(key, attempt), ib.decide(key, attempt));
                    }
                }
            }
        }
    }

    #[test]
    fn phases_have_distinct_sub_seeds() {
        for storm in FaultStorm::all(7) {
            let mut seeds: Vec<u64> = storm.phases.iter().map(|p| p.plan.seed).collect();
            seeds.sort_unstable();
            seeds.dedup();
            assert_eq!(seeds.len(), storm.phases.len(), "{}: seed collision", storm.name);
        }
    }

    #[test]
    fn storms_start_calm_and_end_in_recovery() {
        for storm in FaultStorm::all(99) {
            assert!(storm.phases.len() >= 3, "{} too short", storm.name);
            let first = &storm.phases[0];
            assert_eq!(first.label, "calm");
            let calm = FaultInjector::new(first.plan.clone());
            assert!((0..100).all(|k| calm.decide(k, 1) == Fault::None));
            let last = storm.phases.last().unwrap();
            assert!(last.label.starts_with("recovery"), "{}", storm.name);
            assert!(last.plan.panic_rate == 0.0);
        }
    }

    #[test]
    fn peak_phases_actually_inject() {
        for storm in FaultStorm::all(123) {
            let worst = storm
                .phases
                .iter()
                .max_by(|a, b| {
                    let ra = a.plan.error_rate + a.plan.timeout_rate;
                    let rb = b.plan.error_rate + b.plan.timeout_rate;
                    ra.partial_cmp(&rb).unwrap()
                })
                .unwrap();
            let inj = FaultInjector::new(worst.plan.clone());
            let failures = (0..200)
                .filter(|&k| inj.decide(k, 1).is_failure())
                .count();
            assert!(failures > 20, "{}: peak phase barely faults", storm.name);
        }
    }

    #[test]
    fn phase_at_covers_every_phase_in_order() {
        for storm in FaultStorm::all(0xA11) {
            let total = 40;
            let mut seen = Vec::new();
            let mut last_idx = 0usize;
            for step in 0..total {
                let phase = storm.phase_at(step, total);
                let idx = storm
                    .phases
                    .iter()
                    .position(|p| std::ptr::eq(p, phase))
                    .unwrap();
                assert!(idx >= last_idx, "phases must advance monotonically");
                last_idx = idx;
                if seen.last() != Some(&idx) {
                    seen.push(idx);
                }
            }
            assert_eq!(
                seen,
                (0..storm.phases.len()).collect::<Vec<_>>(),
                "{}: every phase must get steps",
                storm.name
            );
            // Clamping: past-the-end steps stay in the final phase.
            assert_eq!(
                storm.phase_at(total + 5, total).label,
                storm.phases.last().unwrap().label
            );
        }
    }

    #[test]
    fn different_seeds_make_different_storms() {
        let a = FaultStorm::burst(1);
        let b = FaultStorm::burst(2);
        assert_ne!(a.phases[1].plan.seed, b.phases[1].plan.seed);
    }
}
