//! Sorted linked-list sets: coarse-grained vs hand-over-hand locking.
//!
//! The "Sets" row of project 9's collection comparison, implemented
//! the way the course teaches it: a sorted singly linked list with a
//! sentinel head, protected either by one coarse lock ([`CoarseSet`])
//! or by **lock coupling** ([`FineSet`], hand-over-hand: acquire the
//! successor's lock before releasing the predecessor's, so traversals
//! pipeline through the list and operations on different regions
//! proceed concurrently).

use std::ptr;

use parking_lot::{Mutex, MutexGuard};

/// Common interface for the set strategies.
pub trait ConcurrentSet<T>: Send + Sync {
    /// Insert; false if already present.
    fn insert(&self, value: T) -> bool;
    /// Remove; false if absent.
    fn remove(&self, value: &T) -> bool;
    /// Membership test.
    fn contains(&self, value: &T) -> bool;
    /// Number of elements (O(n); a racy snapshot under writers).
    fn len(&self) -> usize;
    /// True when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Strategy name for reports.
    fn strategy(&self) -> &'static str;
}

/// Coarse-grained: one mutex around a sorted `Vec` (binary search).
pub struct CoarseSet<T> {
    items: Mutex<Vec<T>>,
}

impl<T: Ord> CoarseSet<T> {
    /// New empty set.
    #[must_use]
    pub fn new() -> Self {
        Self {
            items: Mutex::new(Vec::new()),
        }
    }
}

impl<T: Ord> Default for CoarseSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Send> ConcurrentSet<T> for CoarseSet<T> {
    fn insert(&self, value: T) -> bool {
        let mut items = self.items.lock();
        match items.binary_search(&value) {
            Ok(_) => false,
            Err(pos) => {
                items.insert(pos, value);
                true
            }
        }
    }
    fn remove(&self, value: &T) -> bool {
        let mut items = self.items.lock();
        match items.binary_search(value) {
            Ok(pos) => {
                items.remove(pos);
                true
            }
            Err(_) => false,
        }
    }
    fn contains(&self, value: &T) -> bool {
        self.items.lock().binary_search(value).is_ok()
    }
    fn len(&self) -> usize {
        self.items.lock().len()
    }
    fn strategy(&self) -> &'static str {
        "coarse"
    }
}

/// A list node. `next` is protected by `lock`: it may only be read or
/// written while holding `lock`.
struct FNode<T> {
    lock: Mutex<()>,
    /// `None` only in the head sentinel.
    value: Option<T>,
    next: *mut FNode<T>,
}

/// Hand-over-hand (lock-coupling) sorted linked list.
///
/// # Safety argument
///
/// Traversal invariant: to learn a node's address you must hold its
/// predecessor's lock, and you acquire the node's own lock *before*
/// releasing the predecessor's. Therefore any thread holding a
/// reference to node `n` holds either `n`'s lock or its predecessor's.
/// Removal holds **both** the predecessor's and the target's locks, so
/// at unlink time no other thread can reference the target — it can be
/// freed immediately, no deferred reclamation needed. (This is the
/// textbook fine-grained list of Herlihy & Shavit §9.5, with the
/// garbage collector replaced by this argument.)
pub struct FineSet<T> {
    head: *mut FNode<T>,
}

// SAFETY: all shared state is reached through per-node mutexes per the
// traversal invariant above.
unsafe impl<T: Send> Send for FineSet<T> {}
unsafe impl<T: Send> Sync for FineSet<T> {}

impl<T: Ord> FineSet<T> {
    /// New empty set.
    #[must_use]
    pub fn new() -> Self {
        Self {
            head: Box::into_raw(Box::new(FNode {
                lock: Mutex::new(()),
                value: None,
                next: ptr::null_mut(),
            })),
        }
    }

}

impl<T: Ord> Default for FineSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Send> ConcurrentSet<T> for FineSet<T> {
    fn insert(&self, value: T) -> bool {
        unsafe {
            let mut pred = self.head;
            // SAFETY: head is valid for the set's lifetime.
            #[allow(unused_assignments)]
            let mut pred_guard: MutexGuard<'_, ()> = (*pred).lock.lock();
            loop {
                let curr = (*pred).next;
                if curr.is_null() {
                    // Insert at tail, under pred's lock.
                    (*pred).next = Box::into_raw(Box::new(FNode {
                        lock: Mutex::new(()),
                        value: Some(value),
                        next: ptr::null_mut(),
                    }));
                    return true;
                }
                // Couple: acquire curr before releasing pred.
                let curr_guard = (*curr).lock.lock();
                let cv = (*curr).value.as_ref().expect("non-sentinel");
                if *cv == value {
                    return false;
                }
                if *cv > value {
                    (*pred).next = Box::into_raw(Box::new(FNode {
                        lock: Mutex::new(()),
                        value: Some(value),
                        next: curr,
                    }));
                    return true;
                }
                // Advance: drop pred's guard (assignment), keep curr's.
                pred = curr;
                // The guard is held for its unlock-on-drop effect; the
                // assignment releases the old predecessor's lock.
                pred_guard = curr_guard;
                let _ = &pred_guard;
            }
        }
    }

    fn remove(&self, value: &T) -> bool {
        unsafe {
            let mut pred = self.head;
            #[allow(unused_assignments)]
            let mut pred_guard: MutexGuard<'_, ()> = (*pred).lock.lock();
            loop {
                let curr = (*pred).next;
                if curr.is_null() {
                    return false;
                }
                let curr_guard = (*curr).lock.lock();
                let cv = (*curr).value.as_ref().expect("non-sentinel");
                if *cv == *value {
                    // Unlink while holding BOTH locks: per the safety
                    // argument, no other thread references curr now.
                    (*pred).next = (*curr).next;
                    drop(curr_guard);
                    drop(Box::from_raw(curr));
                    return true;
                }
                if *cv > *value {
                    return false;
                }
                pred = curr;
                // The guard is held for its unlock-on-drop effect; the
                // assignment releases the old predecessor's lock.
                pred_guard = curr_guard;
                let _ = &pred_guard;
            }
        }
    }

    fn contains(&self, value: &T) -> bool {
        unsafe {
            let mut pred = self.head;
            #[allow(unused_assignments)]
            let mut pred_guard: MutexGuard<'_, ()> = (*pred).lock.lock();
            loop {
                let curr = (*pred).next;
                if curr.is_null() {
                    return false;
                }
                let curr_guard = (*curr).lock.lock();
                let cv = (*curr).value.as_ref().expect("non-sentinel");
                if *cv == *value {
                    return true;
                }
                if *cv > *value {
                    return false;
                }
                pred = curr;
                // The guard is held for its unlock-on-drop effect; the
                // assignment releases the old predecessor's lock.
                pred_guard = curr_guard;
                let _ = &pred_guard;
            }
        }
    }

    fn len(&self) -> usize {
        unsafe {
            let mut count = 0;
            let mut pred = self.head;
            #[allow(unused_assignments)]
            let mut pred_guard: MutexGuard<'_, ()> = (*pred).lock.lock();
            loop {
                let curr = (*pred).next;
                if curr.is_null() {
                    return count;
                }
                let curr_guard = (*curr).lock.lock();
                count += 1;
                pred = curr;
                // The guard is held for its unlock-on-drop effect; the
                // assignment releases the old predecessor's lock.
                pred_guard = curr_guard;
                let _ = &pred_guard;
            }
        }
    }

    fn strategy(&self) -> &'static str {
        "lock-coupling"
    }
}

impl<T> Drop for FineSet<T> {
    fn drop(&mut self) {
        // Exclusive access: free the whole chain including sentinel.
        unsafe {
            let mut cur = self.head;
            while !cur.is_null() {
                let node = Box::from_raw(cur);
                cur = node.next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn all_sets() -> Vec<Arc<dyn ConcurrentSet<u64>>> {
        vec![Arc::new(CoarseSet::new()), Arc::new(FineSet::new())]
    }

    #[test]
    fn insert_contains_remove_basics() {
        for set in all_sets() {
            let name = set.strategy();
            assert!(set.is_empty(), "{name}");
            assert!(set.insert(5));
            assert!(set.insert(1));
            assert!(set.insert(9));
            assert!(!set.insert(5), "{name}: duplicate insert");
            assert!(set.contains(&1) && set.contains(&5) && set.contains(&9));
            assert!(!set.contains(&7));
            assert_eq!(set.len(), 3);
            assert!(set.remove(&5));
            assert!(!set.remove(&5), "{name}: double remove");
            assert!(!set.contains(&5));
            assert_eq!(set.len(), 2);
        }
    }

    #[test]
    fn boundary_inserts_and_removes() {
        for set in all_sets() {
            assert!(set.insert(50));
            assert!(set.insert(10)); // new head position
            assert!(set.insert(90)); // new tail
            assert!(set.insert(30)); // middle
            assert_eq!(set.len(), 4);
            for v in [10, 30, 50, 90] {
                assert!(set.contains(&v));
            }
            assert!(set.remove(&10)); // remove first
            assert!(set.remove(&90)); // remove last
            assert_eq!(set.len(), 2);
            assert!(!set.contains(&10));
            assert!(set.contains(&30));
        }
    }

    #[test]
    fn remove_from_empty_and_missing() {
        for set in all_sets() {
            assert!(!set.remove(&1));
            set.insert(5);
            assert!(!set.remove(&4), "smaller missing value");
            assert!(!set.remove(&6), "larger missing value");
            assert_eq!(set.len(), 1);
        }
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        for set in all_sets() {
            let name = set.strategy();
            let mut joins = Vec::new();
            for t in 0..4u64 {
                let set = Arc::clone(&set);
                joins.push(thread::spawn(move || {
                    for i in 0..500 {
                        assert!(set.insert(t * 1000 + i));
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            assert_eq!(set.len(), 2000, "strategy {name}");
            assert!(set.contains(&3250));
            assert!(!set.contains(&999));
        }
    }

    #[test]
    fn concurrent_same_key_inserts_land_once() {
        for set in all_sets() {
            let name = set.strategy();
            let successes = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let mut joins = Vec::new();
            for _ in 0..4 {
                let set = Arc::clone(&set);
                let successes = Arc::clone(&successes);
                joins.push(thread::spawn(move || {
                    for i in 0..200u64 {
                        if set.insert(i % 50) {
                            successes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            assert_eq!(
                successes.load(std::sync::atomic::Ordering::Relaxed),
                50,
                "strategy {name}: each key inserted exactly once"
            );
            assert_eq!(set.len(), 50);
        }
    }

    #[test]
    fn concurrent_insert_remove_mix() {
        for set in all_sets() {
            for i in (0..1000u64).step_by(2) {
                set.insert(i);
            }
            let mut joins = Vec::new();
            for t in 0..2u64 {
                let set = Arc::clone(&set);
                joins.push(thread::spawn(move || {
                    for i in (0..1000u64).skip(t as usize).step_by(2) {
                        set.remove(&i);
                        set.insert(i | 1);
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            for i in (1..1000u64).step_by(2) {
                assert!(set.contains(&i), "odd {i} must be present");
            }
            for i in (0..1000u64).step_by(2) {
                assert!(!set.contains(&i), "even {i} must be gone");
            }
        }
    }

    #[test]
    fn fine_set_drop_frees_chain() {
        // Exercised under the test allocator / ASAN in CI; here we
        // just make sure drop with contents does not crash.
        let set = FineSet::new();
        for i in 0..100 {
            ConcurrentSet::insert(&set, i);
        }
        drop(set);
    }

    #[test]
    fn heap_payloads_work() {
        let set: FineSet<String> = FineSet::new();
        assert!(ConcurrentSet::insert(&set, "m".to_string()));
        assert!(ConcurrentSet::insert(&set, "a".to_string()));
        assert!(ConcurrentSet::insert(&set, "z".to_string()));
        assert!(ConcurrentSet::contains(&set, &"a".to_string()));
        assert!(ConcurrentSet::remove(&set, &"m".to_string()));
        assert_eq!(ConcurrentSet::len(&set), 2);
    }
}
