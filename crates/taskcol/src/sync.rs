//! Hand-built synchronisation primitives used as comparison strategies.
//!
//! The course's weeks 1–5 teach students what a lock *is* before they
//! benchmark library locks; this module keeps that pedagogy: a
//! test-and-test-and-set spinlock with exponential backoff, built only
//! from `AtomicBool`.

use std::cell::UnsafeCell;
use std::hint;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// A test-and-test-and-set spinlock with exponential backoff.
///
/// Appropriate only for very short critical sections (it burns CPU
/// while waiting); included as the "what if we spin?" strategy in the
/// collection benchmarks.
pub struct SpinLock<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock provides the exclusion needed to send/share T.
unsafe impl<T: Send> Send for SpinLock<T> {}
unsafe impl<T: Send> Sync for SpinLock<T> {}

/// RAII guard for [`SpinLock`].
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> SpinLock<T> {
    /// Wrap a value in a spinlock.
    #[must_use]
    pub fn new(value: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquire the lock, spinning with backoff until free.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        let mut spins: u32 = 0;
        loop {
            // Test-and-test-and-set: spin on a plain load first so the
            // cache line stays shared while contended.
            while self.locked.load(Ordering::Relaxed) {
                backoff(&mut spins);
            }
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return SpinGuard { lock: self };
            }
            backoff(&mut spins);
        }
    }

    /// Try to acquire without spinning.
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

fn backoff(spins: &mut u32) {
    *spins = (*spins + 1).min(10);
    if *spins <= 6 {
        for _ in 0..(1u32 << *spins) {
            hint::spin_loop();
        }
    } else {
        // Heavy contention (or a single-CPU host): yield so the lock
        // holder can run at all.
        std::thread::yield_now();
    }
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard existence proves exclusive ownership.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: guard existence proves exclusive ownership.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn guard_gives_mutable_access() {
        let lock = SpinLock::new(5);
        {
            let mut g = lock.lock();
            *g += 1;
        }
        assert_eq!(*lock.lock(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = SpinLock::new(());
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn no_lost_updates_under_contention() {
        let lock = Arc::new(SpinLock::new(0u64));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            joins.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    *lock.lock() += 1;
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(*lock.lock(), 40_000);
    }
}
