//! Read/write-mix workload driver for the collection comparisons
//! (experiment E9).
//!
//! Mirrors the student test programs: N threads perform a fixed number
//! of operations against one shared collection, with a configurable
//! read fraction and key range, and the driver reports wall time and
//! achieved throughput. Deterministic per seed.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parc_util::rng::Xoshiro256;

use crate::map::ConcurrentMap;
use crate::queue::ConcurrentQueue;

/// Parameters for a map workload run.
#[derive(Clone, Debug)]
pub struct MapWorkload {
    /// Worker thread count.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Fraction of operations that are reads (`get`), remainder split
    /// between inserts and removes 2:1.
    pub read_fraction: f64,
    /// Keys are drawn uniformly from `0..key_space`.
    pub key_space: u64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for MapWorkload {
    fn default() -> Self {
        Self {
            threads: 4,
            ops_per_thread: 10_000,
            read_fraction: 0.9,
            key_space: 1024,
            seed: 0xC0FFEE,
        }
    }
}

/// Result of one workload run.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Total wall time.
    pub elapsed: Duration,
    /// Total operations performed.
    pub total_ops: usize,
    /// Hits observed by readers (sanity signal, also defeats DCE).
    pub read_hits: usize,
}

impl WorkloadResult {
    /// Throughput in operations per second.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Drive a mixed read/write workload against `map`.
pub fn run_map_workload<M>(map: &Arc<M>, cfg: &MapWorkload) -> WorkloadResult
where
    M: ConcurrentMap<u64, u64> + 'static,
{
    assert!((0.0..=1.0).contains(&cfg.read_fraction), "bad read fraction");
    assert!(cfg.key_space > 0 && cfg.threads > 0);
    // Pre-populate half the key space so reads hit.
    for k in (0..cfg.key_space).step_by(2) {
        map.insert(k, k);
    }
    let start = Instant::now();
    let mut joins = Vec::new();
    for t in 0..cfg.threads {
        let map = Arc::clone(map);
        let cfg = cfg.clone();
        joins.push(thread::spawn(move || {
            let mut rng = Xoshiro256::seed_from_u64(cfg.seed).stream(t);
            let mut hits = 0usize;
            for _ in 0..cfg.ops_per_thread {
                let key = rng.next_below(cfg.key_space);
                let roll = rng.next_f64();
                if roll < cfg.read_fraction {
                    if map.get(&key).is_some() {
                        hits += 1;
                    }
                } else if roll < cfg.read_fraction + (1.0 - cfg.read_fraction) * 2.0 / 3.0 {
                    map.insert(key, key.wrapping_mul(3));
                } else {
                    map.remove(&key);
                }
            }
            hits
        }));
    }
    let read_hits = joins.into_iter().map(|j| j.join().unwrap()).sum();
    WorkloadResult {
        elapsed: start.elapsed(),
        total_ops: cfg.threads * cfg.ops_per_thread,
        read_hits,
    }
}

/// Drive a producer/consumer workload against `queue`: half the
/// threads push `items_per_producer` values, half pop until they have
/// consumed their share.
pub fn run_queue_workload<Q>(
    queue: &Arc<Q>,
    producers: usize,
    items_per_producer: usize,
) -> WorkloadResult
where
    Q: ConcurrentQueue<u64> + 'static,
{
    assert!(producers > 0 && items_per_producer > 0);
    let start = Instant::now();
    let mut joins = Vec::new();
    for p in 0..producers {
        let queue = Arc::clone(queue);
        joins.push(thread::spawn(move || {
            for i in 0..items_per_producer {
                queue.push((p * items_per_producer + i) as u64);
            }
            0usize
        }));
    }
    for _ in 0..producers {
        let queue = Arc::clone(queue);
        joins.push(thread::spawn(move || {
            let mut got = 0usize;
            while got < items_per_producer {
                if queue.pop().is_some() {
                    got += 1;
                } else {
                    thread::yield_now();
                }
            }
            got
        }));
    }
    let consumed: usize = joins.into_iter().map(|j| j.join().unwrap()).sum();
    WorkloadResult {
        elapsed: start.elapsed(),
        total_ops: 2 * producers * items_per_producer,
        read_hits: consumed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{MutexMap, RwLockMap, ShardedMap};
    use crate::queue::{MutexQueue, SegLockFreeQueue, TwoLockQueue};

    #[test]
    fn map_workload_runs_all_strategies() {
        let cfg = MapWorkload {
            threads: 3,
            ops_per_thread: 2000,
            ..MapWorkload::default()
        };
        let mutex = Arc::new(MutexMap::new());
        let rw = Arc::new(RwLockMap::new());
        let sharded = Arc::new(ShardedMap::new(16));
        for result in [
            run_map_workload(&mutex, &cfg),
            run_map_workload(&rw, &cfg),
            run_map_workload(&sharded, &cfg),
        ] {
            assert_eq!(result.total_ops, 6000);
            assert!(result.read_hits > 0, "reads should hit the prefilled keys");
            assert!(result.ops_per_sec() > 0.0);
        }
    }

    #[test]
    fn queue_workload_conserves_items() {
        let mutex = Arc::new(MutexQueue::new());
        let twolock = Arc::new(TwoLockQueue::new());
        let lockfree = Arc::new(SegLockFreeQueue::new());
        for (consumed, q_empty) in [
            {
                let r = run_queue_workload(&mutex, 2, 1000);
                (r.read_hits, mutex.is_empty())
            },
            {
                let r = run_queue_workload(&twolock, 2, 1000);
                (r.read_hits, twolock.is_empty())
            },
            {
                let r = run_queue_workload(&lockfree, 2, 1000);
                (r.read_hits, lockfree.is_empty())
            },
        ] {
            assert_eq!(consumed, 2000);
            assert!(q_empty);
        }
    }

    #[test]
    #[should_panic(expected = "bad read fraction")]
    fn rejects_bad_fraction() {
        let cfg = MapWorkload {
            read_fraction: 1.5,
            ..MapWorkload::default()
        };
        let m = Arc::new(MutexMap::new());
        let _ = run_map_workload(&m, &cfg);
    }

    #[test]
    fn deterministic_hits_per_seed() {
        let cfg = MapWorkload {
            threads: 1,
            ops_per_thread: 5000,
            seed: 42,
            ..MapWorkload::default()
        };
        let a = {
            let m = Arc::new(MutexMap::new());
            run_map_workload(&m, &cfg).read_hits
        };
        let b = {
            let m = Arc::new(MutexMap::new());
            run_map_workload(&m, &cfg).read_hits
        };
        assert_eq!(a, b, "single-threaded run must be deterministic");
    }
}
