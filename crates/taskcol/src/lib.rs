//! # taskcol — thread-safe and *task-safe* collections
//!
//! Two SoftEng 751 projects live in this crate:
//!
//! * **Project 9 — parallel use of collections**: "when more than one
//!   thread accesses a collection in parallel, synchronisation
//!   mechanisms are necessary … students implemented test programs to
//!   read/write in parallel to/from a collection, comparing the
//!   performance of the different approaches", across locking flavours
//!   (`synchronized`-style coarse mutexes, reader/writer locks,
//!   fair/unfair, atomics) and collection families. The concrete
//!   strategies here:
//!   [`counter`] (mutex / atomic / sharded counters),
//!   [`stack`] (coarse-locked, spinlocked, lock-free Treiber),
//!   [`queue`] (coarse-locked, two-lock Michael–Scott, segmented
//!   lock-free), and [`map`] (coarse mutex, `RwLock`, sharded).
//! * **Project 6 — task-aware libraries**: "using a 'thread-safe'
//!   class in a tasking environment does not necessarily equate to a
//!   correct solution" — a task that *blocks* on a collection wedges
//!   its worker, and with a bounded pool the producer it is waiting
//!   for may never be scheduled. [`task_safe`] provides blocking
//!   operations that **help** (run queued tasks) instead of parking
//!   the worker, plus tests demonstrating the deadlock they avoid.
//!
//! The workload driver used by experiment E9's benchmark lives in
//! [`workload`].

pub mod counter;
pub mod list;
pub mod map;
pub mod queue;
pub mod stack;
pub mod sync;
pub mod task_safe;
pub mod workload;

pub use counter::{AtomicCounter, MutexCounter, ShardedCounter, SharedCounter};
pub use list::{CoarseSet, ConcurrentSet, FineSet};
pub use map::{ConcurrentMap, MutexMap, RwLockMap, ShardedMap};
pub use queue::{ConcurrentQueue, MutexQueue, SegLockFreeQueue, TwoLockQueue};
pub use stack::{ConcurrentStack, MutexStack, SpinStack, TreiberStack};
pub use sync::SpinLock;
pub use task_safe::{TaskAwareQueue, TaskCell};
