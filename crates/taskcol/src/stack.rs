//! Concurrent stacks: coarse-locked, spinlocked and lock-free.
//!
//! The Treiber stack is built from scratch on `AtomicPtr` with
//! epoch-based reclamation from `crossbeam` handling the memory-safety
//! half that Java students get from the garbage collector for free —
//! the "ConcurrentLinkedDeque vs synchronized LinkedList" comparison
//! of project 9, transplanted.

use std::sync::atomic::Ordering;

use crossbeam::epoch::{self, Atomic, Owned};
use parking_lot::Mutex;

use crate::sync::SpinLock;

/// Common interface for the stack strategies.
pub trait ConcurrentStack<T>: Send + Sync {
    /// Push a value.
    fn push(&self, value: T);
    /// Pop the most recently pushed value, if any.
    fn pop(&self) -> Option<T>;
    /// True when (momentarily) empty.
    fn is_empty(&self) -> bool;
    /// Strategy name for reports.
    fn strategy(&self) -> &'static str;
}

/// `Mutex<Vec<T>>` — the `synchronized` baseline.
pub struct MutexStack<T> {
    items: Mutex<Vec<T>>,
}

impl<T> MutexStack<T> {
    /// New empty stack.
    #[must_use]
    pub fn new() -> Self {
        Self {
            items: Mutex::new(Vec::new()),
        }
    }
}

impl<T> Default for MutexStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> ConcurrentStack<T> for MutexStack<T> {
    fn push(&self, value: T) {
        self.items.lock().push(value);
    }
    fn pop(&self) -> Option<T> {
        self.items.lock().pop()
    }
    fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }
    fn strategy(&self) -> &'static str {
        "mutex"
    }
}

/// Spinlocked `Vec<T>` — short critical sections, busy waiting.
pub struct SpinStack<T> {
    items: SpinLock<Vec<T>>,
}

impl<T> SpinStack<T> {
    /// New empty stack.
    #[must_use]
    pub fn new() -> Self {
        Self {
            items: SpinLock::new(Vec::new()),
        }
    }
}

impl<T> Default for SpinStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> ConcurrentStack<T> for SpinStack<T> {
    fn push(&self, value: T) {
        self.items.lock().push(value);
    }
    fn pop(&self) -> Option<T> {
        self.items.lock().pop()
    }
    fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }
    fn strategy(&self) -> &'static str {
        "spin"
    }
}

struct Node<T> {
    value: Option<T>,
    next: Atomic<Node<T>>,
}

/// Treiber's lock-free stack: CAS on the head pointer, epoch-based
/// reclamation for popped nodes.
pub struct TreiberStack<T> {
    head: Atomic<Node<T>>,
}

impl<T> TreiberStack<T> {
    /// New empty stack.
    #[must_use]
    pub fn new() -> Self {
        Self {
            head: Atomic::null(),
        }
    }
}

impl<T> Default for TreiberStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Sync> ConcurrentStack<T> for TreiberStack<T> {
    fn push(&self, value: T) {
        let guard = epoch::pin();
        let mut node = Owned::new(Node {
            value: Some(value),
            next: Atomic::null(),
        });
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            node.next.store(head, Ordering::Relaxed);
            match self
                .head
                .compare_exchange(head, node, Ordering::Release, Ordering::Relaxed, &guard)
            {
                Ok(_) => return,
                Err(e) => node = e.new,
            }
        }
    }

    fn pop(&self) -> Option<T> {
        let guard = epoch::pin();
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            let node = unsafe { head.as_ref() }?;
            let next = node.next.load(Ordering::Acquire, &guard);
            if self
                .head
                .compare_exchange(head, next, Ordering::Release, Ordering::Relaxed, &guard)
                .is_ok()
            {
                // SAFETY: we won the CAS, so we exclusively own the
                // node; taking the value is fine because nobody else
                // will (concurrent readers only follow `next`).
                let value = unsafe { (*(head.as_raw() as *mut Node<T>)).value.take() };
                // SAFETY: unlinked; destroy once all pins drain.
                unsafe {
                    guard.defer_destroy(head);
                }
                return value;
            }
        }
    }

    fn is_empty(&self) -> bool {
        let guard = epoch::pin();
        self.head.load(Ordering::Acquire, &guard).is_null()
    }

    fn strategy(&self) -> &'static str {
        "treiber"
    }
}

impl<T> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        // Exclusive access: walk and free remaining nodes.
        let guard = unsafe { epoch::unprotected() };
        let mut cur = self.head.load(Ordering::Relaxed, guard);
        while let Some(node) = unsafe { cur.as_ref() } {
            let next = node.next.load(Ordering::Relaxed, guard);
            drop(unsafe { cur.into_owned() });
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::thread;

    fn all_stacks() -> Vec<Arc<dyn ConcurrentStack<u64>>> {
        vec![
            Arc::new(MutexStack::new()),
            Arc::new(SpinStack::new()),
            Arc::new(TreiberStack::new()),
        ]
    }

    #[test]
    fn lifo_single_thread() {
        for stack in all_stacks() {
            stack.push(1);
            stack.push(2);
            stack.push(3);
            assert_eq!(stack.pop(), Some(3), "{}", stack.strategy());
            assert_eq!(stack.pop(), Some(2));
            assert_eq!(stack.pop(), Some(1));
            assert_eq!(stack.pop(), None);
            assert!(stack.is_empty());
        }
    }

    #[test]
    fn concurrent_push_pop_loses_nothing() {
        for stack in all_stacks() {
            let name = stack.strategy();
            let producers = 3;
            let per = 2000u64;
            let mut joins = Vec::new();
            for p in 0..producers {
                let s = Arc::clone(&stack);
                joins.push(thread::spawn(move || {
                    for i in 0..per {
                        s.push(p * per + i);
                    }
                }));
            }
            let popped = Arc::new(Mutex::new(HashSet::new()));
            let mut consumers = Vec::new();
            for _ in 0..2 {
                let s = Arc::clone(&stack);
                let seen = Arc::clone(&popped);
                consumers.push(thread::spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        match s.pop() {
                            Some(v) => local.push(v),
                            None => {
                                if local.len() > 100 {
                                    // Keep draining until producers
                                    // are plausibly done.
                                }
                                std::thread::yield_now();
                                // Exit heuristic handled below by
                                // final drain.
                                if local.len() as u64 >= producers * per {
                                    break;
                                }
                                break;
                            }
                        }
                    }
                    seen.lock().extend(local);
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            for c in consumers {
                c.join().unwrap();
            }
            // Drain whatever remains after all producers finished.
            while let Some(v) = stack.pop() {
                popped.lock().insert(v);
            }
            let seen = popped.lock();
            assert_eq!(seen.len() as u64, producers * per, "strategy {name}");
        }
    }

    #[test]
    fn treiber_drop_frees_remaining() {
        let stack = TreiberStack::new();
        for i in 0..100 {
            ConcurrentStack::push(&stack, i);
        }
        drop(stack); // must not leak or double-free (run under ASAN in CI)
    }

    #[test]
    fn treiber_values_with_heap_payloads() {
        let stack = TreiberStack::new();
        for i in 0..50 {
            ConcurrentStack::push(&stack, format!("value-{i}"));
        }
        let mut got = Vec::new();
        while let Some(v) = ConcurrentStack::pop(&stack) {
            got.push(v);
        }
        assert_eq!(got.len(), 50);
        assert_eq!(got[0], "value-49");
    }
}
