//! Task-safe wrappers (project 6): why thread-safe is not enough.
//!
//! In a *threading* model a consumer may block on an empty queue: the
//! OS will eventually schedule the producer. In a *tasking* model on a
//! bounded worker pool, a blocking consumer wedges its worker; if every
//! worker is a blocked consumer, the producer task sitting in the
//! scheduler queue can never run — deadlock *through a perfectly
//! thread-safe collection*. This is exactly the pitfall SoftEng 751's
//! project 6 asked students to explore and fix.
//!
//! The fix: blocking operations must keep the runtime moving. The
//! task-aware types here take a [`partask::RuntimeHandle`] and
//! alternate the wait condition with [`RuntimeHandle::help_once`],
//! executing queued tasks on the waiting worker.
//!
//! [`RuntimeHandle::help_once`]: partask::RuntimeHandle::help_once

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use partask::RuntimeHandle;

/// A single-assignment cell whose `get_wait` is safe to call from
/// inside a task.
pub struct TaskCell<T> {
    slot: Mutex<Option<T>>,
    cv: Condvar,
}

impl<T: Clone> TaskCell<T> {
    /// New empty cell.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Store the value. Panics if already set (single assignment).
    pub fn set(&self, value: T) {
        let mut slot = self.slot.lock();
        assert!(slot.is_none(), "TaskCell set twice");
        *slot = Some(value);
        drop(slot);
        self.cv.notify_all();
    }

    /// Non-blocking read.
    #[must_use]
    pub fn try_get(&self) -> Option<T> {
        self.slot.lock().clone()
    }

    /// Task-aware blocking read: helps the runtime while the cell is
    /// empty, so the setter task can run even on a saturated pool.
    pub fn get_wait(&self, rt: &RuntimeHandle) -> T {
        loop {
            if let Some(v) = self.slot.lock().clone() {
                return v;
            }
            if !rt.help_once() {
                // Nothing to help with; short timed wait for the set.
                let mut slot = self.slot.lock();
                if let Some(v) = slot.clone() {
                    return v;
                }
                let _ = self.cv.wait_for(&mut slot, Duration::from_micros(200));
            }
        }
    }

    /// Blocking read with a deadline; `None` on timeout.
    pub fn get_wait_timeout(&self, rt: &RuntimeHandle, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(v) = self.slot.lock().clone() {
                return Some(v);
            }
            if Instant::now() >= deadline {
                return None;
            }
            if !rt.help_once() {
                std::thread::yield_now();
            }
        }
    }
}

impl<T: Clone> Default for TaskCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// An unbounded FIFO whose blocking pop is task-aware.
pub struct TaskAwareQueue<T> {
    items: Mutex<VecDeque<T>>,
    cv: Condvar,
}

impl<T> TaskAwareQueue<T> {
    /// New empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            items: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    /// Enqueue a value.
    pub fn push(&self, value: T) {
        self.items.lock().push_back(value);
        self.cv.notify_one();
    }

    /// Non-blocking dequeue.
    #[must_use]
    pub fn try_pop(&self) -> Option<T> {
        self.items.lock().pop_front()
    }

    /// Task-aware blocking dequeue: helps the runtime while empty.
    pub fn pop_wait(&self, rt: &RuntimeHandle) -> T {
        loop {
            if let Some(v) = self.items.lock().pop_front() {
                return v;
            }
            if !rt.help_once() {
                let mut items = self.items.lock();
                if let Some(v) = items.pop_front() {
                    return v;
                }
                let _ = self.cv.wait_for(&mut items, Duration::from_micros(200));
            }
        }
    }

    /// **The hazard** (for demonstration and tests): a naive blocking
    /// pop that parks the worker outright, like calling
    /// `BlockingQueue.take()` from inside a task. With a deadline so
    /// the demonstration terminates; returns `None` when it would have
    /// deadlocked past the deadline.
    pub fn pop_blocking_naive(&self, deadline: Duration) -> Option<T> {
        let end = Instant::now() + deadline;
        let mut items = self.items.lock();
        loop {
            if let Some(v) = items.pop_front() {
                return Some(v);
            }
            if Instant::now() >= end {
                return None;
            }
            let _ = self.cv.wait_until(&mut items, end);
        }
    }

    /// Current length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }
}

impl<T> Default for TaskAwareQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    use partask::TaskRuntime;

    #[test]
    fn task_cell_set_and_get() {
        let rt = TaskRuntime::builder().workers(1).build();
        let cell = TaskCell::new();
        cell.set(42);
        assert_eq!(cell.try_get(), Some(42));
        assert_eq!(cell.get_wait(&rt.handle()), 42);
        rt.shutdown();
    }

    #[test]
    #[should_panic(expected = "set twice")]
    fn task_cell_single_assignment() {
        let cell = TaskCell::new();
        cell.set(1);
        cell.set(2);
    }

    #[test]
    fn get_wait_helps_the_producer_run() {
        // ONE worker. The consumer task waits on the cell that only a
        // *later* task sets. A naive block would deadlock forever; the
        // task-aware wait executes the producer itself.
        let rt = TaskRuntime::builder().workers(1).build();
        let h = rt.handle();
        let cell = Arc::new(TaskCell::new());
        let consumer = {
            let cell = Arc::clone(&cell);
            let h = h.clone();
            rt.spawn(move || {
                // Spawn the producer *from inside* the consumer so it
                // is queued behind us on the single worker.
                let producer_cell = Arc::clone(&cell);
                let _producer = h.spawn(move || producer_cell.set(123));
                cell.get_wait(&h)
            })
        };
        assert_eq!(consumer.join().unwrap(), 123);
        rt.shutdown();
    }

    #[test]
    fn naive_blocking_pop_deadlocks_on_saturated_pool() {
        // The demonstration from the project write-up: with one worker
        // the blocking consumer never lets the producer run, and only
        // the deadline rescues it.
        let rt = TaskRuntime::builder().workers(1).build();
        let h = rt.handle();
        let queue: Arc<TaskAwareQueue<u32>> = Arc::new(TaskAwareQueue::new());
        let consumer = {
            let queue = Arc::clone(&queue);
            rt.spawn(move || {
                let q2 = Arc::clone(&queue);
                let _producer = h.spawn(move || q2.push(7));
                queue.pop_blocking_naive(Duration::from_millis(100))
            })
        };
        // Poll instead of joining: `join()` from this thread would
        // *help* — run the queued producer here — and rescue the
        // deadlock we are demonstrating.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !consumer.is_done() {
            assert!(std::time::Instant::now() < deadline, "demo wedged");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(
            consumer.join().unwrap(),
            None,
            "the naive block must starve the producer on a 1-worker pool"
        );
        rt.shutdown();
    }

    #[test]
    fn task_aware_pop_succeeds_on_same_scenario() {
        let rt = TaskRuntime::builder().workers(1).build();
        let h = rt.handle();
        let queue: Arc<TaskAwareQueue<u32>> = Arc::new(TaskAwareQueue::new());
        let consumer = {
            let queue = Arc::clone(&queue);
            let h2 = h.clone();
            rt.spawn(move || {
                let q2 = Arc::clone(&queue);
                let _producer = h2.spawn(move || q2.push(7));
                queue.pop_wait(&h2)
            })
        };
        assert_eq!(consumer.join().unwrap(), 7);
        rt.shutdown();
    }

    #[test]
    fn queue_fifo_and_len() {
        let q = TaskAwareQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn get_wait_timeout_expires() {
        let rt = TaskRuntime::builder().workers(1).build();
        let cell: TaskCell<u8> = TaskCell::new();
        let out = cell.get_wait_timeout(&rt.handle(), Duration::from_millis(20));
        assert_eq!(out, None);
        rt.shutdown();
    }

    #[test]
    fn pop_wait_from_external_thread() {
        let rt = TaskRuntime::builder().workers(2).build();
        let q = Arc::new(TaskAwareQueue::new());
        let q2 = Arc::clone(&q);
        let _t = rt.spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.push(99);
        });
        assert_eq!(q.pop_wait(&rt.handle()), 99);
        rt.shutdown();
    }
}
