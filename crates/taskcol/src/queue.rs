//! Concurrent FIFO queues under three strategies.
//!
//! * [`MutexQueue`] — one lock around a `VecDeque` (the
//!   `Collections.synchronizedList` analogue).
//! * [`TwoLockQueue`] — the Michael & Scott two-lock queue: separate
//!   head and tail locks let one producer and one consumer proceed
//!   concurrently.
//! * [`SegLockFreeQueue`] — `crossbeam`'s segmented lock-free queue as
//!   the `ConcurrentLinkedQueue` stand-in.

use std::collections::VecDeque;

use crossbeam::queue::SegQueue;
use parking_lot::Mutex;

/// Common interface for the queue strategies.
pub trait ConcurrentQueue<T>: Send + Sync {
    /// Enqueue at the tail.
    fn push(&self, value: T);
    /// Dequeue from the head, if non-empty.
    fn pop(&self) -> Option<T>;
    /// True when (momentarily) empty.
    fn is_empty(&self) -> bool;
    /// Strategy name for reports.
    fn strategy(&self) -> &'static str;
}

/// Coarse-locked queue.
pub struct MutexQueue<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> MutexQueue<T> {
    /// New empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            items: Mutex::new(VecDeque::new()),
        }
    }
}

impl<T> Default for MutexQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> ConcurrentQueue<T> for MutexQueue<T> {
    fn push(&self, value: T) {
        self.items.lock().push_back(value);
    }
    fn pop(&self) -> Option<T> {
        self.items.lock().pop_front()
    }
    fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }
    fn strategy(&self) -> &'static str {
        "mutex"
    }
}

/// Michael & Scott's two-lock queue: a linked list with a permanent
/// dummy node; producers contend only on the tail lock, consumers only
/// on the head lock.
pub struct TwoLockQueue<T> {
    head: Mutex<*mut TlNode<T>>,
    tail: Mutex<*mut TlNode<T>>,
}

struct TlNode<T> {
    value: Option<T>,
    next: *mut TlNode<T>,
}

// SAFETY: raw pointers are only dereferenced under the appropriate
// lock; values are Send.
unsafe impl<T: Send> Send for TwoLockQueue<T> {}
unsafe impl<T: Send> Sync for TwoLockQueue<T> {}

impl<T> TwoLockQueue<T> {
    /// New empty queue (allocates the dummy node).
    #[must_use]
    pub fn new() -> Self {
        let dummy = Box::into_raw(Box::new(TlNode {
            value: None,
            next: std::ptr::null_mut(),
        }));
        Self {
            head: Mutex::new(dummy),
            tail: Mutex::new(dummy),
        }
    }
}

impl<T> Default for TwoLockQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> ConcurrentQueue<T> for TwoLockQueue<T> {
    fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(TlNode {
            value: Some(value),
            next: std::ptr::null_mut(),
        }));
        let mut tail = self.tail.lock();
        // SAFETY: *tail is valid (dummy or last node), we hold the
        // tail lock.
        unsafe {
            (**tail).next = node;
        }
        *tail = node;
    }

    fn pop(&self) -> Option<T> {
        let mut head = self.head.lock();
        // SAFETY: *head is the dummy node; its `next` (if any) holds
        // the first real value. We hold the head lock.
        unsafe {
            let next = (**head).next;
            if next.is_null() {
                return None;
            }
            let value = (*next).value.take();
            let old_dummy = *head;
            *head = next; // `next` becomes the new dummy
            drop(Box::from_raw(old_dummy));
            value
        }
    }

    fn is_empty(&self) -> bool {
        let head = self.head.lock();
        // SAFETY: head valid under lock.
        unsafe { (**head).next.is_null() }
    }

    fn strategy(&self) -> &'static str {
        "two-lock"
    }
}

impl<T> Drop for TwoLockQueue<T> {
    fn drop(&mut self) {
        let mut cur = *self.head.lock();
        while !cur.is_null() {
            // SAFETY: exclusive access in drop; nodes form a chain.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next;
        }
    }
}

/// `crossbeam::queue::SegQueue` — the library lock-free comparator.
pub struct SegLockFreeQueue<T> {
    inner: SegQueue<T>,
}

impl<T> SegLockFreeQueue<T> {
    /// New empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: SegQueue::new(),
        }
    }
}

impl<T> Default for SegLockFreeQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> ConcurrentQueue<T> for SegLockFreeQueue<T> {
    fn push(&self, value: T) {
        self.inner.push(value);
    }
    fn pop(&self) -> Option<T> {
        self.inner.pop()
    }
    fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
    fn strategy(&self) -> &'static str {
        "lock-free"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn all_queues() -> Vec<Arc<dyn ConcurrentQueue<u64>>> {
        vec![
            Arc::new(MutexQueue::new()),
            Arc::new(TwoLockQueue::new()),
            Arc::new(SegLockFreeQueue::new()),
        ]
    }

    #[test]
    fn fifo_single_thread() {
        for q in all_queues() {
            assert!(q.is_empty());
            q.push(1);
            q.push(2);
            q.push(3);
            assert!(!q.is_empty());
            assert_eq!(q.pop(), Some(1), "{}", q.strategy());
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), Some(3));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn spsc_preserves_order() {
        for q in all_queues() {
            let name = q.strategy();
            let producer = {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..5000u64 {
                        q.push(i);
                    }
                })
            };
            let consumer = {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut expected = 0u64;
                    while expected < 5000 {
                        if let Some(v) = q.pop() {
                            assert_eq!(v, expected, "order violated on {name}");
                            expected += 1;
                        } else {
                            thread::yield_now();
                        }
                    }
                })
            };
            producer.join().unwrap();
            consumer.join().unwrap();
        }
    }

    #[test]
    fn mpmc_conserves_items() {
        for q in all_queues() {
            let name = q.strategy();
            let producers = 3;
            let per = 3000u64;
            let mut joins = Vec::new();
            for p in 0..producers {
                let q = Arc::clone(&q);
                joins.push(thread::spawn(move || {
                    for i in 0..per {
                        q.push(p * per + i);
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            let mut seen = Vec::new();
            while let Some(v) = q.pop() {
                seen.push(v);
            }
            seen.sort_unstable();
            assert_eq!(seen.len() as u64, producers * per, "strategy {name}");
            seen.dedup();
            assert_eq!(seen.len() as u64, producers * per, "dups on {name}");
        }
    }

    #[test]
    fn two_lock_drop_with_items_does_not_leak() {
        let q = TwoLockQueue::new();
        for i in 0..100 {
            ConcurrentQueue::push(&q, format!("s{i}"));
        }
        let _ = ConcurrentQueue::pop(&q);
        drop(q);
    }
}
