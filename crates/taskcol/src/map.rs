//! Concurrent maps under three locking strategies.
//!
//! The heart of project 9's read/write-mix comparison: a coarse
//! mutex map (all operations serialise), an `RwLock` map (readers
//! proceed concurrently) and a sharded map (the `ConcurrentHashMap`
//! striped-locking analogue).

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};

use parking_lot::{Mutex, RwLock};

/// Common interface for the map strategies.
pub trait ConcurrentMap<K, V>: Send + Sync {
    /// Insert, returning the previous value for the key if any.
    fn insert(&self, key: K, value: V) -> Option<V>;
    /// Clone of the value for `key` (clone keeps the lock short).
    fn get(&self, key: &K) -> Option<V>;
    /// Remove, returning the value if present.
    fn remove(&self, key: &K) -> Option<V>;
    /// True when the key is present.
    fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }
    /// Number of entries (aggregated; may race with writers).
    fn len(&self) -> usize;
    /// True when no entries exist.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Strategy name for reports.
    fn strategy(&self) -> &'static str;
}

/// Coarse mutex map — the `Collections.synchronizedMap` analogue.
pub struct MutexMap<K, V> {
    inner: Mutex<HashMap<K, V>>,
}

impl<K, V> MutexMap<K, V> {
    /// New empty map.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(HashMap::new()),
        }
    }
}

impl<K, V> Default for MutexMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> ConcurrentMap<K, V> for MutexMap<K, V>
where
    K: Eq + Hash + Send,
    V: Clone + Send,
{
    fn insert(&self, key: K, value: V) -> Option<V> {
        self.inner.lock().insert(key, value)
    }
    fn get(&self, key: &K) -> Option<V> {
        self.inner.lock().get(key).cloned()
    }
    fn remove(&self, key: &K) -> Option<V> {
        self.inner.lock().remove(key)
    }
    fn len(&self) -> usize {
        self.inner.lock().len()
    }
    fn strategy(&self) -> &'static str {
        "mutex"
    }
}

/// Reader/writer-locked map: concurrent readers, exclusive writers.
pub struct RwLockMap<K, V> {
    inner: RwLock<HashMap<K, V>>,
}

impl<K, V> RwLockMap<K, V> {
    /// New empty map.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: RwLock::new(HashMap::new()),
        }
    }
}

impl<K, V> Default for RwLockMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> ConcurrentMap<K, V> for RwLockMap<K, V>
where
    K: Eq + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    fn insert(&self, key: K, value: V) -> Option<V> {
        self.inner.write().insert(key, value)
    }
    fn get(&self, key: &K) -> Option<V> {
        self.inner.read().get(key).cloned()
    }
    fn remove(&self, key: &K) -> Option<V> {
        self.inner.write().remove(key)
    }
    fn len(&self) -> usize {
        self.inner.read().len()
    }
    fn strategy(&self) -> &'static str {
        "rwlock"
    }
}

/// Sharded (striped) map: the key's hash selects one of `2^k`
/// independently locked shards, so operations on different shards
/// never contend — the `ConcurrentHashMap` design.
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    hasher: RandomState,
}

impl<K: Hash, V> ShardedMap<K, V> {
    /// Map with the given shard count (rounded up to a power of two).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let idx = (self.hasher.hash_one(key) as usize) & (self.shards.len() - 1);
        &self.shards[idx]
    }
}

impl<K, V> ConcurrentMap<K, V> for ShardedMap<K, V>
where
    K: Eq + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard_for(&key).write().insert(key, value)
    }
    fn get(&self, key: &K) -> Option<V> {
        self.shard_for(key).read().get(key).cloned()
    }
    fn remove(&self, key: &K) -> Option<V> {
        self.shard_for(key).write().remove(key)
    }
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
    fn strategy(&self) -> &'static str {
        "sharded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn all_maps() -> Vec<Arc<dyn ConcurrentMap<u64, u64>>> {
        vec![
            Arc::new(MutexMap::new()),
            Arc::new(RwLockMap::new()),
            Arc::new(ShardedMap::new(16)),
        ]
    }

    #[test]
    fn basic_crud() {
        for m in all_maps() {
            assert!(m.is_empty());
            assert_eq!(m.insert(1, 10), None);
            assert_eq!(m.insert(1, 11), Some(10));
            assert_eq!(m.get(&1), Some(11));
            assert!(m.contains(&1));
            assert_eq!(m.remove(&1), Some(11));
            assert_eq!(m.get(&1), None, "{}", m.strategy());
            assert!(!m.contains(&1));
        }
    }

    #[test]
    fn concurrent_disjoint_writers() {
        for m in all_maps() {
            let name = m.strategy();
            let mut joins = Vec::new();
            for t in 0..4u64 {
                let m = Arc::clone(&m);
                joins.push(thread::spawn(move || {
                    for i in 0..1000 {
                        m.insert(t * 1000 + i, i);
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            assert_eq!(m.len(), 4000, "strategy {name}");
            assert_eq!(m.get(&2500), Some(500));
        }
    }

    #[test]
    fn concurrent_same_key_last_writer_wins_consistently() {
        for m in all_maps() {
            let mut joins = Vec::new();
            for t in 0..4u64 {
                let m = Arc::clone(&m);
                joins.push(thread::spawn(move || {
                    for _ in 0..500 {
                        m.insert(7, t);
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            // The final value is one of the writers' values; the map
            // must not be corrupted.
            let v = m.get(&7).unwrap();
            assert!(v < 4);
            assert_eq!(m.len(), 1);
        }
    }

    #[test]
    fn readers_see_stable_snapshot_values() {
        for m in all_maps() {
            for i in 0..100 {
                m.insert(i, i * 2);
            }
            let readers: Vec<_> = (0..3)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || {
                        for i in 0..100 {
                            assert_eq!(m.get(&i), Some(i * 2));
                        }
                    })
                })
                .collect();
            for r in readers {
                r.join().unwrap();
            }
        }
    }

    #[test]
    fn sharded_shard_count_power_of_two() {
        let m: ShardedMap<u64, u64> = ShardedMap::new(10);
        assert_eq!(m.shard_count(), 16);
        let m: ShardedMap<u64, u64> = ShardedMap::new(0);
        assert_eq!(m.shard_count(), 1);
    }
}
