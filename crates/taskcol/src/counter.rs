//! Shared counters under three synchronisation strategies.
//!
//! The "hello world" of project 9: a counter incremented by many
//! threads. Strategies: a mutex (the `synchronized` analogue), a
//! single atomic (the `AtomicLong` analogue) and a sharded/striped
//! counter (the `LongAdder` analogue — distribute contention, pay at
//! read time).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Common interface so the benchmark harness can sweep strategies.
pub trait SharedCounter: Send + Sync {
    /// Add `n` to the counter.
    fn add(&self, n: u64);
    /// Read the current value. For sharded counters this is a full
    /// aggregation and may be slow relative to `add`.
    fn value(&self) -> u64;
    /// Strategy name for reports.
    fn strategy(&self) -> &'static str;
}

/// Mutex-protected counter (the `synchronized` baseline).
#[derive(Default)]
pub struct MutexCounter {
    value: Mutex<u64>,
}

impl MutexCounter {
    /// New counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl SharedCounter for MutexCounter {
    fn add(&self, n: u64) {
        *self.value.lock() += n;
    }
    fn value(&self) -> u64 {
        *self.value.lock()
    }
    fn strategy(&self) -> &'static str {
        "mutex"
    }
}

/// Single atomic counter (`AtomicLong` analogue).
#[derive(Default)]
pub struct AtomicCounter {
    value: AtomicU64,
}

impl AtomicCounter {
    /// New counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl SharedCounter for AtomicCounter {
    fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }
    fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
    fn strategy(&self) -> &'static str {
        "atomic"
    }
}

/// Padding wrapper: one counter per cache line so shards do not
/// false-share.
#[repr(align(64))]
struct PaddedAtomic(AtomicU64);

/// Striped counter (`LongAdder` analogue): adds go to a per-thread
/// shard chosen by a thread-local slot; reads sum all shards.
pub struct ShardedCounter {
    shards: Vec<PaddedAtomic>,
}

impl ShardedCounter {
    /// Counter with the given number of stripes (rounded up to a
    /// power of two).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| PaddedAtomic(AtomicU64::new(0))).collect(),
        }
    }

    fn shard_index(&self) -> usize {
        use std::cell::Cell;
        use std::sync::atomic::AtomicUsize;
        thread_local! {
            static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
        }
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let slot = SLOT.with(|s| {
            let mut v = s.get();
            if v == usize::MAX {
                v = NEXT.fetch_add(1, Ordering::Relaxed);
                s.set(v);
            }
            v
        });
        slot & (self.shards.len() - 1)
    }
}

impl SharedCounter for ShardedCounter {
    fn add(&self, n: u64) {
        self.shards[self.shard_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }
    fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
    fn strategy(&self) -> &'static str {
        "sharded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn hammer(counter: Arc<dyn SharedCounter>, threads: usize, per_thread: u64) {
        let mut joins = Vec::new();
        for _ in 0..threads {
            let c = Arc::clone(&counter);
            joins.push(thread::spawn(move || {
                for _ in 0..per_thread {
                    c.add(1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn all_strategies_count_exactly() {
        let cases: Vec<Arc<dyn SharedCounter>> = vec![
            Arc::new(MutexCounter::new()),
            Arc::new(AtomicCounter::new()),
            Arc::new(ShardedCounter::new(8)),
        ];
        for counter in cases {
            let name = counter.strategy();
            hammer(Arc::clone(&counter), 4, 10_000);
            assert_eq!(counter.value(), 40_000, "strategy {name}");
        }
    }

    #[test]
    fn add_n_accumulates() {
        let c = AtomicCounter::new();
        c.add(5);
        c.add(7);
        assert_eq!(c.value(), 12);
    }

    #[test]
    fn sharded_rounds_to_power_of_two() {
        let c = ShardedCounter::new(5);
        assert_eq!(c.shards.len(), 8);
        let c = ShardedCounter::new(0);
        assert_eq!(c.shards.len(), 1);
    }

    #[test]
    fn strategy_names_distinct() {
        assert_ne!(MutexCounter::new().strategy(), AtomicCounter::new().strategy());
        assert_ne!(
            AtomicCounter::new().strategy(),
            ShardedCounter::new(2).strategy()
        );
    }
}
