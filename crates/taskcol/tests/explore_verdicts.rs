//! Deterministic race verdicts for the collection strategies.
//!
//! The crate's own tests exercise the *safe* collections natively and
//! can only demonstrate, not prove, that the unsynchronised designs
//! they replace are broken. These tests close that gap: the counter
//! and stack strategies are ported onto the `parc-explore` shims
//! (see `parc_explore::litmus`) and the explorer enumerates every
//! interleaving — the unsynchronised ports must have a witnessed
//! racing schedule, the mutex/atomic ports must be race-free over the
//! whole space.

use std::collections::BTreeSet;
use std::sync::Arc;

use parc_explore::{explore, litmus, Config};

fn report_for(name: &str) -> parc_explore::ExploreReport {
    let entry = litmus::by_name(name)
        .unwrap_or_else(|| panic!("litmus `{name}` missing from the catalogue"));
    let body = Arc::clone(&entry.body);
    let report = explore(Config::dfs(name), move || body());
    assert!(report.exhausted, "{name}: interleaving space not exhausted");
    report
}

#[test]
fn unsync_counter_races_with_witness() {
    let report = report_for("taskcol-counter/unsync");
    assert!(!report.race_free(), "the plain counter must race");
    let race = &report.races[0];
    assert_eq!(race.location, "count");
    // The witnessing schedule must also show a lost update.
    let outcomes = &report.observations["final"];
    assert!(outcomes.contains(&1), "lost update not witnessed: {outcomes:?}");
}

#[test]
fn atomic_counter_is_proved_race_free_and_exact() {
    let report = report_for("taskcol-counter/atomic");
    assert!(report.race_free(), "races: {:?}", report.races);
    assert_eq!(report.observations["final"], BTreeSet::from([2]));
}

#[test]
fn mutex_counter_is_proved_race_free_and_exact() {
    let report = report_for("taskcol-counter/mutex");
    assert!(report.race_free(), "races: {:?}", report.races);
    assert_eq!(report.observations["final"], BTreeSet::from([2]));
    assert_eq!(report.deadlocks, 0);
}

#[test]
fn racy_stack_push_races_on_top() {
    let report = report_for("taskcol-stack/racy");
    assert!(!report.race_free(), "the unsynchronised push must race");
    assert!(
        report.races.iter().any(|r| r.location == "top"),
        "expected a race on the stack cursor, got {:?}",
        report.races.iter().map(|r| r.location.clone()).collect::<Vec<_>>()
    );
    // Some schedule loses a push: top ends at 1.
    assert!(report.observations["top"].contains(&1));
}

#[test]
fn mutex_stack_is_proved_race_free_and_loses_nothing() {
    let report = report_for("taskcol-stack/mutex");
    assert!(report.race_free(), "races: {:?}", report.races);
    assert_eq!(report.observations["top"], BTreeSet::from([2]));
    assert_eq!(report.observations["sum"], BTreeSet::from([3]));
}
