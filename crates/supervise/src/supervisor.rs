//! Erlang-style supervision: restart policies, seeded restart budgets
//! with deterministic backoff, and escalation.
//!
//! A [`Supervisor`] owns a set of named children, each a closure run on
//! its own dedicated thread under a [`CancelToken`] that is a child of
//! the supervisor's token. When a child *fails* (returns an error,
//! panics, or exceeds its deadline) the supervisor restarts it — with a
//! backoff schedule taken from a [`faultsim::RetryPolicy`], so delays
//! are a pure function of `(seed, child, restart)` — until the child's
//! restart budget is exhausted, at which point the failure **escalates**:
//! the child is recorded as escalated, and when the supervisor is
//! nested as a subtree ([`SupervisorBuilder::child_tree`]) the parent
//! observes the escalation as an ordinary child failure, giving the
//! classic supervision-tree semantics.
//!
//! Every lifecycle step is emitted as a `parc-trace` mark
//! (`sup.child_start`, `sup.child_exit`, `sup.restart`,
//! `sup.escalate`) and recorded in the returned [`SupervisionReport`],
//! whose canonical event log is ordered by `(child, seq)` — per-child
//! sequences are deterministic under a seeded failure schedule even
//! though global completion order races.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use faultsim::RetryPolicy;
use parc_trace::{ChildTag, MarkKind, TraceHandle};
use parc_util::rng::SplitMix64;

use crate::token::CancelToken;

/// Which siblings a child failure takes down before restarting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Only the failed child is restarted; siblings are untouched.
    OneForOne,
    /// A child failure cancels every running sibling, then the failed
    /// child and all cancelled siblings are restarted together.
    AllForOne,
}

impl RestartPolicy {
    /// Stable label for reports and benchmarks.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RestartPolicy::OneForOne => "one_for_one",
            RestartPolicy::AllForOne => "all_for_one",
        }
    }
}

/// Why a child body did not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChildError {
    /// The child's work failed.
    Failed(String),
    /// The child observed its token and stopped cooperatively.
    Cancelled,
}

/// How one child incarnation exited.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChildOutcome {
    /// The body returned success; the child is done for good.
    Completed,
    /// The body returned [`ChildError::Failed`].
    Failed,
    /// The body panicked (contained by the supervisor).
    Panicked,
    /// The body stopped after observing cancellation.
    Cancelled,
    /// The body stopped because its per-incarnation deadline expired.
    TimedOut,
}

impl ChildOutcome {
    /// Does this exit count against the restart budget?
    #[must_use]
    pub fn is_failure(self) -> bool {
        matches!(
            self,
            ChildOutcome::Failed | ChildOutcome::Panicked | ChildOutcome::TimedOut
        )
    }

    /// Stable label for reports and benchmarks.
    #[must_use]
    pub fn name(self) -> &'static str {
        self.tag().name()
    }

    /// The trace tag for this outcome.
    #[must_use]
    pub fn tag(self) -> ChildTag {
        match self {
            ChildOutcome::Completed => ChildTag::Completed,
            ChildOutcome::Failed => ChildTag::Failed,
            ChildOutcome::Panicked => ChildTag::Panicked,
            ChildOutcome::Cancelled => ChildTag::Cancelled,
            ChildOutcome::TimedOut => ChildTag::TimedOut,
        }
    }
}

/// What a child body sees: its token, identity and incarnation.
#[derive(Clone, Debug)]
pub struct ChildCtx {
    /// Cancellation token for this incarnation (a child of the
    /// supervisor's token; carries the per-incarnation deadline).
    pub token: CancelToken,
    /// Supervisor-local child index.
    pub child: u32,
    /// 1-based incarnation number (restarts increment it).
    pub incarnation: u32,
}

type ChildBody = Arc<dyn Fn(&ChildCtx) -> Result<(), ChildError> + Send + Sync>;

#[derive(Clone)]
struct ChildSpec {
    name: String,
    body: ChildBody,
}

/// One entry of the canonical supervision event log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SupEventKind {
    /// An incarnation was started.
    Start {
        /// 1-based incarnation number.
        incarnation: u32,
    },
    /// An incarnation exited.
    Exit {
        /// 1-based incarnation number.
        incarnation: u32,
        /// How it exited.
        outcome: ChildOutcome,
    },
    /// The supervisor decided to restart the child.
    Restart {
        /// The incarnation about to start.
        incarnation: u32,
    },
    /// The child exhausted its restart budget.
    Escalate,
    /// A restart was due but the supervisor's token was cancelled (or
    /// its deadline expired) during the backoff; the child stays down
    /// without being charged or escalated.
    RestartAborted,
}

/// One supervision event, addressed by `(child, seq)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupEvent {
    /// Supervisor-local child index.
    pub child: u32,
    /// Per-child sequence number (0-based, dense).
    pub seq: u32,
    /// What happened.
    pub kind: SupEventKind,
}

impl SupEvent {
    /// Stable one-line rendering, used by the canonical log.
    #[must_use]
    pub fn render(&self, child_name: &str) -> String {
        match self.kind {
            SupEventKind::Start { incarnation } => {
                format!("{child_name}[{}] #{} start", self.child, incarnation)
            }
            SupEventKind::Exit { incarnation, outcome } => {
                format!("{child_name}[{}] #{} exit {}", self.child, incarnation, outcome.name())
            }
            SupEventKind::Restart { incarnation } => {
                format!("{child_name}[{}] #{} restart", self.child, incarnation)
            }
            SupEventKind::Escalate => {
                format!("{child_name}[{}] escalate", self.child)
            }
            SupEventKind::RestartAborted => {
                format!("{child_name}[{}] restart aborted (cancelled)", self.child)
            }
        }
    }
}

/// Final accounting for one supervised child.
#[derive(Clone, Debug)]
pub struct ChildReport {
    /// The child's name.
    pub name: String,
    /// Incarnations started (= restarts + 1).
    pub incarnations: u32,
    /// Restarts performed (own failures *and* all-for-one collective
    /// restarts; always `incarnations - 1`).
    pub restarts: u32,
    /// Failures charged against this child's own restart budget. Under
    /// one-for-one this equals `restarts`; under all-for-one a sibling
    /// taken down collectively is restarted without being charged.
    pub budget_used: u32,
    /// Exit outcome of every incarnation, in order.
    pub exits: Vec<ChildOutcome>,
    /// True when the child exhausted its budget and escalated.
    pub escalated: bool,
    /// True when a due restart was abandoned because the supervisor's
    /// token was cancelled (or its deadline expired) during the
    /// backoff — the child's last exit is then a failure even though
    /// it neither completed nor escalated.
    pub restart_aborted: bool,
}

impl ChildReport {
    /// The last incarnation's outcome.
    #[must_use]
    pub fn final_outcome(&self) -> ChildOutcome {
        *self.exits.last().expect("every child runs at least once")
    }
}

/// Everything a supervision run produced.
#[derive(Clone, Debug)]
pub struct SupervisionReport {
    /// The supervisor's name.
    pub name: String,
    /// The restart policy that ran.
    pub policy: RestartPolicy,
    /// Per-child accounting, by child index.
    pub children: Vec<ChildReport>,
    /// Canonical event log, ordered by `(child, seq)`.
    pub events: Vec<SupEvent>,
    /// Total restarts across children.
    pub restarts_total: u32,
    /// Children that exhausted their budget.
    pub escalations: u32,
    /// Child threads spawned over the whole run.
    pub threads_spawned: u32,
    /// Child threads joined (must equal spawned: no leaks).
    pub threads_joined: u32,
}

impl SupervisionReport {
    /// Did every child complete (no escalation, no cancellation)?
    #[must_use]
    pub fn all_completed(&self) -> bool {
        self.children
            .iter()
            .all(|c| c.final_outcome() == ChildOutcome::Completed)
    }

    /// Did any child exhaust its restart budget? Degradation logic
    /// keys off this directly instead of parsing the event log.
    #[must_use]
    pub fn has_escalations(&self) -> bool {
        self.escalations > 0
    }

    /// The children that exhausted their restart budget and escalated,
    /// in child-index order. Empty when the tree ran within budget.
    #[must_use]
    pub fn escalated_children(&self) -> Vec<&ChildReport> {
        self.children.iter().filter(|c| c.escalated).collect()
    }

    /// The canonical event log as text: one line per event, ordered by
    /// `(child, seq)`. Bit-identical across same-seed reruns.
    #[must_use]
    pub fn event_log(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.render(&self.children[ev.child as usize].name));
            out.push('\n');
        }
        out
    }

    /// Check the spawned-children conservation identity. Every child
    /// started must be accounted for:
    ///
    /// * incarnations = restarts + 1, and every incarnation has
    ///   exactly one recorded exit;
    /// * a non-final incarnation only ever exits by failure (that is
    ///   what triggered its restart) or cancellation (all-for-one
    ///   collective restart);
    /// * escalated children end in a failure outcome, non-escalated
    ///   ones in `Completed` or `Cancelled`;
    /// * every spawned child thread was joined (no leaks).
    ///
    /// Returns the list of violated identities (empty = conserved).
    #[must_use]
    pub fn conservation_violations(&self) -> Vec<String> {
        let mut bad = Vec::new();
        let mut check = |ok: bool, msg: String| {
            if !ok {
                bad.push(msg);
            }
        };
        let mut incarnations_total = 0u32;
        for (i, c) in self.children.iter().enumerate() {
            incarnations_total += c.incarnations;
            check(
                c.incarnations == c.restarts + 1,
                format!("child {i}: incarnations {} != restarts {} + 1", c.incarnations, c.restarts),
            );
            check(
                c.budget_used <= c.restarts,
                format!("child {i}: budget_used {} > restarts {}", c.budget_used, c.restarts),
            );
            check(
                c.exits.len() == c.incarnations as usize,
                format!("child {i}: {} exits for {} incarnations", c.exits.len(), c.incarnations),
            );
            for (k, exit) in c.exits.iter().enumerate() {
                let last = k + 1 == c.exits.len();
                if !last {
                    check(
                        exit.is_failure() || *exit == ChildOutcome::Cancelled,
                        format!("child {i}: non-final exit #{} was {}", k + 1, exit.name()),
                    );
                }
            }
            if c.escalated {
                check(
                    c.final_outcome().is_failure(),
                    format!("child {i}: escalated but final outcome {}", c.final_outcome().name()),
                );
            } else if c.restart_aborted {
                // A cancellation that lands during the backoff leaves
                // the child down with its failure exit on record; the
                // abort event accounts for the missing restart.
                check(
                    c.final_outcome().is_failure(),
                    format!(
                        "child {i}: restart aborted but final outcome {}",
                        c.final_outcome().name()
                    ),
                );
            } else {
                check(
                    matches!(c.final_outcome(), ChildOutcome::Completed | ChildOutcome::Cancelled),
                    format!(
                        "child {i}: not escalated yet final outcome {}",
                        c.final_outcome().name()
                    ),
                );
            }
        }
        check(
            self.restarts_total == self.children.iter().map(|c| c.restarts).sum::<u32>(),
            "restarts_total drifted from per-child records".to_string(),
        );
        check(
            self.escalations == self.children.iter().filter(|c| c.escalated).count() as u32,
            "escalations drifted from per-child records".to_string(),
        );
        check(
            self.threads_spawned == incarnations_total,
            format!(
                "threads_spawned {} != incarnations {}",
                self.threads_spawned, incarnations_total
            ),
        );
        check(
            self.threads_joined == self.threads_spawned,
            format!(
                "thread leak: spawned {} joined {}",
                self.threads_spawned, self.threads_joined
            ),
        );
        // The event log must mirror the per-child records exactly.
        for (i, c) in self.children.iter().enumerate() {
            let child = i as u32;
            let starts = self
                .events
                .iter()
                .filter(|e| e.child == child && matches!(e.kind, SupEventKind::Start { .. }))
                .count();
            let exits = self
                .events
                .iter()
                .filter(|e| e.child == child && matches!(e.kind, SupEventKind::Exit { .. }))
                .count();
            check(
                starts == c.incarnations as usize && exits == c.incarnations as usize,
                format!("child {i}: event log has {starts} starts / {exits} exits for {} incarnations", c.incarnations),
            );
        }
        bad
    }
}

/// Configures and runs a [`Supervisor`].
#[derive(Clone)]
pub struct SupervisorBuilder {
    name: String,
    policy: RestartPolicy,
    restart: RetryPolicy,
    backoff_seed: u64,
    backoff_time_scale: f64,
    child_deadline: Option<Duration>,
    trace: TraceHandle,
    children: Vec<ChildSpec>,
}

/// A supervisor ready to run; see the module docs. Obtain one through
/// [`Supervisor::builder`].
pub struct Supervisor;

impl Supervisor {
    /// Start configuring a supervisor.
    #[must_use]
    pub fn builder(name: &str) -> SupervisorBuilder {
        SupervisorBuilder {
            name: name.to_string(),
            policy: RestartPolicy::OneForOne,
            // Budget: max_attempts - 1 restarts; backoff from the same
            // policy's deterministic jitter schedule.
            restart: RetryPolicy::fixed(Duration::from_millis(1)).with_max_attempts(3),
            backoff_seed: 0,
            backoff_time_scale: 1.0,
            child_deadline: None,
            trace: TraceHandle::default(),
            children: Vec::new(),
        }
    }
}

impl SupervisorBuilder {
    /// The restart policy (default one-for-one).
    #[must_use]
    pub fn policy(mut self, policy: RestartPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Restart budget and backoff, expressed as a [`RetryPolicy`]: a
    /// child may be restarted `max_attempts - 1` times, waiting
    /// `delay_after(k, seed)` before restart `k` — the exact same
    /// deterministic schedule retries use.
    #[must_use]
    pub fn restart_policy(mut self, policy: RetryPolicy) -> Self {
        self.restart = policy;
        self
    }

    /// Seed for the backoff jitter stream (mixed per child).
    #[must_use]
    pub fn backoff_seed(mut self, seed: u64) -> Self {
        self.backoff_seed = seed;
        self
    }

    /// Scale factor applied to backoff sleeps (tests and simulations
    /// use small factors to run fast; the schedule itself — and thus
    /// the report — is unaffected).
    #[must_use]
    pub fn backoff_time_scale(mut self, scale: f64) -> Self {
        assert!(scale >= 0.0, "time scale must be non-negative");
        self.backoff_time_scale = scale;
        self
    }

    /// Give every child incarnation this execution budget: its token's
    /// deadline is set, and an incarnation that stops because the
    /// budget elapsed is classified [`ChildOutcome::TimedOut`] (a
    /// failure, charged against the restart budget).
    #[must_use]
    pub fn child_deadline(mut self, deadline: Duration) -> Self {
        self.child_deadline = Some(deadline);
        self
    }

    /// Emit supervision events through `trace` on a track named after
    /// the supervisor.
    #[must_use]
    pub fn trace(mut self, trace: &TraceHandle) -> Self {
        self.trace = trace.clone();
        self
    }

    /// Add a supervised child. The body is re-invoked on every
    /// restart with a fresh [`ChildCtx`].
    #[must_use]
    pub fn child(
        mut self,
        name: &str,
        body: impl Fn(&ChildCtx) -> Result<(), ChildError> + Send + Sync + 'static,
    ) -> Self {
        self.children.push(ChildSpec {
            name: name.to_string(),
            body: Arc::new(body),
        });
        self
    }

    /// Add a whole supervisor as a child subtree: the nested
    /// supervisor runs under the child's token, and any escalation
    /// inside it surfaces here as a child failure — the parent then
    /// restarts the subtree (up to its own budget) or escalates
    /// further. This is how failures travel *up the tree*.
    #[must_use]
    pub fn child_tree(self, name: &str, subtree: SupervisorBuilder) -> Self {
        let subtree = Arc::new(subtree);
        self.child(name, move |ctx| {
            let report = subtree.as_ref().clone().run_under(&ctx.token);
            if report.escalations > 0 {
                let names: Vec<&str> = report
                    .children
                    .iter()
                    .filter(|c| c.escalated)
                    .map(|c| c.name.as_str())
                    .collect();
                return Err(ChildError::Failed(format!(
                    "subtree escalated: {}",
                    names.join(", ")
                )));
            }
            if report.children.iter().any(|c| c.final_outcome() == ChildOutcome::Cancelled) {
                return Err(ChildError::Cancelled);
            }
            Ok(())
        })
    }

    /// Run the supervision tree to completion under a fresh root token
    /// and return the full report.
    #[must_use]
    pub fn run(self) -> SupervisionReport {
        let root = CancelToken::new();
        self.run_under(&root)
    }

    /// Run under `parent`: cancelling `parent` cancels the supervisor
    /// and (transitively) every child incarnation.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn run_under(self, parent: &CancelToken) -> SupervisionReport {
        assert!(!self.children.is_empty(), "a supervisor needs at least one child");
        let sup_token = parent.child();
        let pid = self.trace.register_track(&self.name);
        let budget = self.restart.max_attempts().saturating_sub(1);
        let (tx, rx) = mpsc::channel::<(usize, ExitClass)>();

        struct ChildState {
            incarnation: u32,
            restarts: u32,
            budget_used: u32,
            exits: Vec<ChildOutcome>,
            events: Vec<SupEventKind>,
            escalated: bool,
            restart_aborted: bool,
            running: bool,
            token: CancelToken,
            handle: Option<thread::JoinHandle<()>>,
        }
        let mut states: Vec<ChildState> = (0..self.children.len())
            .map(|_| ChildState {
                incarnation: 0,
                restarts: 0,
                budget_used: 0,
                exits: Vec::new(),
                events: Vec::new(),
                escalated: false,
                restart_aborted: false,
                running: false,
                token: sup_token.child(),
                handle: None,
            })
            .collect();
        let mut threads_spawned = 0u32;
        let mut threads_joined = 0u32;

        let spawn_child = |idx: usize,
                           st: &mut ChildState,
                           threads_spawned: &mut u32| {
            st.incarnation += 1;
            let token = match self.child_deadline {
                Some(d) => sup_token.child_with_deadline(d),
                None => sup_token.child(),
            };
            st.token = token.clone();
            st.running = true;
            st.events.push(SupEventKind::Start { incarnation: st.incarnation });
            self.trace.mark(
                pid,
                MarkKind::ChildStart { child: idx as u64, incarnation: st.incarnation },
            );
            let ctx = ChildCtx {
                token,
                child: idx as u32,
                incarnation: st.incarnation,
            };
            let body = Arc::clone(&self.children[idx].body);
            let tx = tx.clone();
            let thread_name =
                format!("{}-{}-{}", self.name, self.children[idx].name, st.incarnation);
            *threads_spawned += 1;
            st.handle = Some(
                thread::Builder::new()
                    .name(thread_name)
                    .spawn(move || {
                        let result = catch_unwind(AssertUnwindSafe(|| body(&ctx)));
                        let class = match result {
                            Ok(Ok(())) => ExitClass::Completed,
                            Ok(Err(ChildError::Failed(msg))) => ExitClass::Failed(msg),
                            Ok(Err(ChildError::Cancelled)) => {
                                // Deadline expiry and cooperative stop
                                // both surface as `Cancelled` from the
                                // body; the token's deadline tells the
                                // supervisor which one it was.
                                if ctx.token.remaining() == Some(Duration::ZERO) {
                                    ExitClass::TimedOut
                                } else {
                                    ExitClass::Cancelled
                                }
                            }
                            Err(payload) => ExitClass::Panicked(panic_text(&*payload)),
                        };
                        // The supervisor may already be gone on
                        // teardown races; a dead receiver is fine.
                        let _ = tx.send((idx, class));
                    })
                    .expect("failed to spawn supervised child"),
            );
        };

        // Start every child once.
        for (idx, st) in states.iter_mut().enumerate() {
            spawn_child(idx, st, &mut threads_spawned);
        }

        let record_exit = |idx: usize,
                           st: &mut ChildState,
                           outcome: ChildOutcome,
                           threads_joined: &mut u32| {
            st.running = false;
            st.exits.push(outcome);
            st.events.push(SupEventKind::Exit { incarnation: st.incarnation, outcome });
            self.trace.mark(
                pid,
                MarkKind::ChildExit {
                    child: idx as u64,
                    incarnation: st.incarnation,
                    outcome: outcome.tag(),
                },
            );
            if let Some(handle) = st.handle.take() {
                let _ = handle.join();
                *threads_joined += 1;
            }
        };

        while states.iter().any(|s| s.running) {
            let (idx, class) = rx.recv().expect("children hold a sender while running");
            let outcome = class.outcome();
            record_exit(idx, &mut states[idx], outcome, &mut threads_joined);

            if !outcome.is_failure() {
                continue;
            }
            if states[idx].budget_used >= budget {
                // Budget exhausted: escalate. Under all-for-one the
                // whole team is torn down with the escalating child.
                states[idx].escalated = true;
                states[idx].events.push(SupEventKind::Escalate);
                self.trace.mark(pid, MarkKind::ChildEscalate { child: idx as u64 });
                if self.policy == RestartPolicy::AllForOne {
                    sup_token.cancel();
                }
                continue;
            }
            // Deterministic backoff before the restart, from the retry
            // policy's seeded schedule (pure in (seed, child, k)).
            let k = states[idx].budget_used + 1;
            let child_seed = SplitMix64::mix(
                self.backoff_seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let delay = self.restart.delay_after(k, child_seed);
            if self.backoff_time_scale > 0.0 && delay > Duration::ZERO {
                // Sleep in short slices polling the supervisor token,
                // so a cancellation — or the token's deadline expiring
                // — interrupts a long backoff promptly instead of
                // holding the tree hostage for the full delay.
                let scaled =
                    Duration::from_secs_f64(delay.as_secs_f64() * self.backoff_time_scale);
                let wake = std::time::Instant::now() + scaled;
                while !sup_token.is_cancelled() {
                    let now = std::time::Instant::now();
                    if now >= wake {
                        break;
                    }
                    thread::sleep((wake - now).min(Duration::from_millis(5)));
                }
            }
            if sup_token.is_cancelled() {
                // Shut down while backing off: do not restart into a
                // cancelled tree; the child stays down with its
                // failure exit on record (not an escalation). The
                // abort is recorded so the report stays
                // conservation-clean.
                states[idx].restart_aborted = true;
                states[idx].events.push(SupEventKind::RestartAborted);
                continue;
            }

            match self.policy {
                RestartPolicy::OneForOne => {
                    states[idx].restarts += 1;
                    states[idx].budget_used += 1;
                    let next = states[idx].incarnation + 1;
                    states[idx].events.push(SupEventKind::Restart { incarnation: next });
                    self.trace.mark(
                        pid,
                        MarkKind::ChildRestart { child: idx as u64, incarnation: next },
                    );
                    spawn_child(idx, &mut states[idx], &mut threads_spawned);
                }
                RestartPolicy::AllForOne => {
                    // Take down every running sibling, drain their
                    // exits, then restart the failed child plus every
                    // sibling that was stopped (completed children
                    // stay done). Only the triggering child's budget
                    // is charged.
                    let mut to_restart = vec![idx];
                    for (s_idx, st) in states.iter().enumerate() {
                        if s_idx != idx && st.running {
                            st.token.cancel();
                        }
                    }
                    while states.iter().enumerate().any(|(s, st)| s != idx && st.running) {
                        let (s_idx, s_class) =
                            rx.recv().expect("siblings hold senders while running");
                        let s_outcome = s_class.outcome();
                        record_exit(s_idx, &mut states[s_idx], s_outcome, &mut threads_joined);
                        if s_outcome != ChildOutcome::Completed {
                            to_restart.push(s_idx);
                        }
                    }
                    to_restart.sort_unstable();
                    states[idx].budget_used += 1;
                    for r_idx in to_restart {
                        states[r_idx].restarts += 1;
                        let next = states[r_idx].incarnation + 1;
                        states[r_idx].events.push(SupEventKind::Restart { incarnation: next });
                        self.trace.mark(
                            pid,
                            MarkKind::ChildRestart { child: r_idx as u64, incarnation: next },
                        );
                        spawn_child(r_idx, &mut states[r_idx], &mut threads_spawned);
                    }
                }
            }
        }
        drop(tx);

        // Assemble the canonical report: per-child sequences flattened
        // in (child, seq) order.
        let mut events = Vec::new();
        for (idx, st) in states.iter().enumerate() {
            for (seq, kind) in st.events.iter().enumerate() {
                events.push(SupEvent { child: idx as u32, seq: seq as u32, kind: *kind });
            }
        }
        let children: Vec<ChildReport> = self
            .children
            .iter()
            .zip(&states)
            .map(|(spec, st)| ChildReport {
                name: spec.name.clone(),
                incarnations: st.incarnation,
                restarts: st.restarts,
                budget_used: st.budget_used,
                exits: st.exits.clone(),
                escalated: st.escalated,
                restart_aborted: st.restart_aborted,
            })
            .collect();
        let restarts_total = children.iter().map(|c| c.restarts).sum();
        let escalations = children.iter().filter(|c| c.escalated).count() as u32;
        SupervisionReport {
            name: self.name,
            policy: self.policy,
            children,
            events,
            restarts_total,
            escalations,
            threads_spawned,
            threads_joined,
        }
    }
}

/// Exit classification as sent over the child → supervisor channel.
enum ExitClass {
    Completed,
    Failed(#[allow(dead_code)] String),
    Panicked(#[allow(dead_code)] String),
    Cancelled,
    TimedOut,
}

impl ExitClass {
    fn outcome(&self) -> ChildOutcome {
        match self {
            ExitClass::Completed => ChildOutcome::Completed,
            ExitClass::Failed(_) => ChildOutcome::Failed,
            ExitClass::Panicked(_) => ChildOutcome::Panicked,
            ExitClass::Cancelled => ChildOutcome::Cancelled,
            ExitClass::TimedOut => ChildOutcome::TimedOut,
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn fast_restarts(max_attempts: u32) -> RetryPolicy {
        RetryPolicy::fixed(Duration::from_millis(1)).with_max_attempts(max_attempts)
    }

    #[test]
    fn completing_children_need_no_restarts() {
        let report = Supervisor::builder("sup")
            .restart_policy(fast_restarts(3))
            .child("a", |_| Ok(()))
            .child("b", |_| Ok(()))
            .run();
        assert!(report.all_completed());
        assert_eq!(report.restarts_total, 0);
        assert_eq!(report.escalations, 0);
        assert_eq!(report.threads_spawned, 2);
        assert!(report.conservation_violations().is_empty());
    }

    #[test]
    fn failing_child_restarts_then_completes() {
        let fails = Arc::new(AtomicU32::new(0));
        let report = Supervisor::builder("sup")
            .restart_policy(fast_restarts(4))
            .child("flaky", {
                let fails = Arc::clone(&fails);
                move |_ctx| {
                    if fails.fetch_add(1, Ordering::SeqCst) < 2 {
                        Err(ChildError::Failed("boom".into()))
                    } else {
                        Ok(())
                    }
                }
            })
            .run();
        let c = &report.children[0];
        assert_eq!(c.restarts, 2);
        assert_eq!(c.incarnations, 3);
        assert_eq!(c.final_outcome(), ChildOutcome::Completed);
        assert!(!c.escalated);
        assert!(report.conservation_violations().is_empty());
    }

    #[test]
    fn budget_exhaustion_escalates() {
        let report = Supervisor::builder("sup")
            .restart_policy(fast_restarts(3))
            .child("doomed", |_| Err(ChildError::Failed("always".into())))
            .run();
        let c = &report.children[0];
        assert!(c.escalated);
        assert_eq!(c.incarnations, 3, "initial + 2 restarts");
        assert_eq!(c.final_outcome(), ChildOutcome::Failed);
        assert_eq!(report.escalations, 1);
        assert!(report.conservation_violations().is_empty());
    }

    #[test]
    fn escalation_accessors_name_the_exhausted_children() {
        let report = Supervisor::builder("sup")
            .restart_policy(fast_restarts(2))
            .child("doomed", |_| Err(ChildError::Failed("always".into())))
            .child("fine", |_| Ok(()))
            .run();
        assert!(report.has_escalations());
        let escalated = report.escalated_children();
        assert_eq!(escalated.len(), 1);
        assert_eq!(escalated[0].name, "doomed");
        assert!(escalated[0].escalated);

        let clean = Supervisor::builder("sup")
            .restart_policy(fast_restarts(2))
            .child("fine", |_| Ok(()))
            .run();
        assert!(!clean.has_escalations());
        assert!(clean.escalated_children().is_empty());
    }

    #[test]
    fn panicking_child_is_contained_and_restarted() {
        faultsim::silence_injected_panics();
        let tries = Arc::new(AtomicU32::new(0));
        let report = Supervisor::builder("sup")
            .restart_policy(fast_restarts(3))
            .child("bomber", {
                let tries = Arc::clone(&tries);
                move |_ctx| {
                    if tries.fetch_add(1, Ordering::SeqCst) == 0 {
                        panic!("{} in child", faultsim::INJECTED_PANIC_PREFIX);
                    }
                    Ok(())
                }
            })
            .run();
        let c = &report.children[0];
        assert_eq!(c.exits[0], ChildOutcome::Panicked);
        assert_eq!(c.final_outcome(), ChildOutcome::Completed);
        assert_eq!(c.restarts, 1);
        assert!(report.conservation_violations().is_empty());
    }

    #[test]
    fn deadline_expiry_counts_as_timeout_failure() {
        let slow_once = Arc::new(AtomicU32::new(0));
        let report = Supervisor::builder("sup")
            .restart_policy(fast_restarts(3))
            .child_deadline(Duration::from_millis(20))
            .child("sluggish", {
                let slow_once = Arc::clone(&slow_once);
                move |ctx| {
                    if slow_once.fetch_add(1, Ordering::SeqCst) == 0 {
                        // First incarnation dawdles past its deadline,
                        // polling the token as a well-behaved child.
                        for _ in 0..100 {
                            thread::sleep(Duration::from_millis(2));
                            if ctx.token.is_cancelled() {
                                return Err(ChildError::Cancelled);
                            }
                        }
                    }
                    Ok(())
                }
            })
            .run();
        let c = &report.children[0];
        assert_eq!(c.exits[0], ChildOutcome::TimedOut);
        assert_eq!(c.final_outcome(), ChildOutcome::Completed);
        assert!(report.conservation_violations().is_empty());
    }

    #[test]
    fn all_for_one_restarts_running_siblings() {
        let a_runs = Arc::new(AtomicU32::new(0));
        let b_runs = Arc::new(AtomicU32::new(0));
        let report = Supervisor::builder("sup")
            .policy(RestartPolicy::AllForOne)
            .restart_policy(fast_restarts(3))
            .child("failer", {
                let a_runs = Arc::clone(&a_runs);
                move |_ctx| {
                    if a_runs.fetch_add(1, Ordering::SeqCst) == 0 {
                        thread::sleep(Duration::from_millis(5));
                        Err(ChildError::Failed("first run fails".into()))
                    } else {
                        Ok(())
                    }
                }
            })
            .child("bystander", {
                let b_runs = Arc::clone(&b_runs);
                move |ctx| {
                    b_runs.fetch_add(1, Ordering::SeqCst);
                    // Long-lived sibling: waits on its token.
                    for _ in 0..2000 {
                        if ctx.token.is_cancelled() {
                            return Err(ChildError::Cancelled);
                        }
                        thread::sleep(Duration::from_millis(1));
                    }
                    Ok(())
                }
            })
            .run();
        assert_eq!(report.children[0].budget_used, 1, "trigger charged");
        assert_eq!(report.children[1].budget_used, 0, "sibling not charged");
        assert!(report.children[1].restarts >= 1, "sibling was restarted");
        assert!(
            report.children[1].incarnations >= 2,
            "sibling was taken down and restarted"
        );
        assert!(b_runs.load(Ordering::SeqCst) >= 2);
        assert!(report.conservation_violations().is_empty());
    }

    #[test]
    fn external_cancel_stops_children_cooperatively() {
        let root = CancelToken::new();
        let trigger = root.clone();
        let canceller = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            trigger.cancel();
        });
        let report = Supervisor::builder("sup")
            .restart_policy(fast_restarts(3))
            .child("waiter", |ctx| {
                for _ in 0..2000 {
                    if ctx.token.is_cancelled() {
                        return Err(ChildError::Cancelled);
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                Ok(())
            })
            .run_under(&root);
        canceller.join().unwrap();
        assert_eq!(report.children[0].final_outcome(), ChildOutcome::Cancelled);
        assert_eq!(report.restarts_total, 0, "cancellation is not a failure");
        assert!(report.conservation_violations().is_empty());
    }

    #[test]
    fn nested_tree_escalation_surfaces_as_parent_failure() {
        let inner = Supervisor::builder("inner")
            .restart_policy(fast_restarts(2))
            .child("doomed", |_| Err(ChildError::Failed("always".into())));
        let report = Supervisor::builder("outer")
            .restart_policy(fast_restarts(2))
            .child_tree("subtree", inner)
            .run();
        let c = &report.children[0];
        assert!(c.escalated, "subtree escalation must climb the tree");
        assert_eq!(c.incarnations, 2, "parent retried the whole subtree once");
        assert!(c.exits.iter().all(|e| *e == ChildOutcome::Failed));
        assert!(report.conservation_violations().is_empty());
    }

    #[test]
    fn supervision_events_are_traced() {
        let col = parc_trace::Collector::new();
        let report = Supervisor::builder("sup")
            .trace(&col.handle())
            .restart_policy(fast_restarts(2))
            .child("doomed", |_| Err(ChildError::Failed("always".into())))
            .run();
        assert!(report.children[0].escalated);
        let counts = col.snapshot().counts_by_name();
        assert_eq!(counts["sup.child_start"], 2);
        assert_eq!(counts["sup.child_exit"], 2);
        assert_eq!(counts["sup.restart"], 1);
        assert_eq!(counts["sup.escalate"], 1);
    }

    #[test]
    fn event_log_is_canonical_and_deterministic() {
        let run = || {
            Supervisor::builder("sup")
                .restart_policy(fast_restarts(3))
                .backoff_seed(42)
                .backoff_time_scale(0.001)
                .child("doomed", |_| Err(ChildError::Failed("always".into())))
                .child("fine", |_| Ok(()))
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.event_log(), b.event_log());
        assert!(a.event_log().contains("doomed[0] #3 exit failed"));
        assert!(a.event_log().contains("doomed[0] escalate"));
        assert!(a.event_log().contains("fine[1] #1 exit completed"));
    }
}
