//! Hierarchical cancellation tokens with deadline propagation.
//!
//! A [`CancelToken`] is a node in a cancellation *tree*: cancelling a
//! token cancels its whole subtree, while a child's cancellation never
//! affects its parent. Deadlines propagate at creation time — a child
//! can only tighten the effective deadline it inherits, never extend
//! it — so `is_cancelled` needs no upward walk: each node carries its
//! own flag plus a pre-computed effective deadline.
//!
//! Tokens are cheap to clone (one `Arc` bump; clones share the node)
//! and safe to poll from any thread. The API is a strict superset of
//! the flat token `partask` started with — `new` / `cancel` /
//! `is_cancelled` behave identically — so existing call sites keep
//! working via re-export.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Error returned by [`CancelToken::checkpoint`] once cancellation has
/// been requested (directly, via an ancestor, or by deadline expiry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "operation was cancelled")
    }
}

impl std::error::Error for Cancelled {}

struct TokenNode {
    cancelled: AtomicBool,
    /// Effective deadline: `min` of this node's own deadline and every
    /// ancestor's, computed once at creation. `None` = unbounded.
    deadline: Option<Instant>,
    /// Children to cascade a `cancel` into. Weak: a dropped subtree
    /// must not be kept alive by its parent.
    children: Mutex<Vec<Weak<TokenNode>>>,
}

impl TokenNode {
    fn new(deadline: Option<Instant>) -> Arc<Self> {
        Arc::new(Self {
            cancelled: AtomicBool::new(false),
            deadline,
            children: Mutex::new(Vec::new()),
        })
    }
}

/// Cooperative cancellation token forming a tree; see the module docs.
#[derive(Clone)]
pub struct CancelToken {
    node: Arc<TokenNode>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.node.deadline)
            .finish()
    }
}

impl CancelToken {
    /// Fresh root token: un-cancelled, no deadline.
    #[must_use]
    pub fn new() -> Self {
        Self { node: TokenNode::new(None) }
    }

    /// Fresh root token that auto-cancels when `budget` elapses.
    #[must_use]
    pub fn with_deadline(budget: Duration) -> Self {
        Self {
            node: TokenNode::new(Some(Instant::now() + budget)),
        }
    }

    /// A child token: cancelling `self` cancels the child (and its own
    /// subtree), while cancelling the child leaves `self` untouched.
    /// The child inherits this token's effective deadline.
    #[must_use]
    pub fn child(&self) -> Self {
        self.child_node(self.node.deadline)
    }

    /// A child token with an additional deadline of `budget` from now.
    /// The child's effective deadline is the *minimum* of the parent's
    /// and its own — a child can tighten its budget, never extend it.
    #[must_use]
    pub fn child_with_deadline(&self, budget: Duration) -> Self {
        let own = Instant::now() + budget;
        let effective = match self.node.deadline {
            Some(parent) => Some(parent.min(own)),
            None => Some(own),
        };
        self.child_node(effective)
    }

    fn child_node(&self, deadline: Option<Instant>) -> Self {
        let child = TokenNode::new(deadline);
        {
            let mut children = self.node.children.lock();
            // Prune dead subtrees opportunistically so long-lived roots
            // (a runtime's token spawning many short tasks) do not leak.
            if children.len() >= 32 {
                children.retain(|w| w.strong_count() > 0);
            }
            children.push(Arc::downgrade(&child));
        }
        // Re-check after linking: a concurrent `cancel` that walked the
        // children list before our push must not leave this child
        // un-cancelled forever.
        if self.node.cancelled.load(Ordering::Acquire) {
            child.cancelled.store(true, Ordering::Release);
        }
        Self { node: child }
    }

    /// Request cancellation of this token and its whole subtree.
    pub fn cancel(&self) {
        // Iterative DFS: collect each node's live children under its
        // lock, flag outside the lock. No recursion, no lock nesting.
        let mut stack = vec![Arc::clone(&self.node)];
        while let Some(node) = stack.pop() {
            if node.cancelled.swap(true, Ordering::AcqRel) {
                // Already cancelled: its subtree was (or is being)
                // flagged by a previous walk.
                continue;
            }
            let children = node.children.lock();
            for weak in children.iter() {
                if let Some(child) = weak.upgrade() {
                    stack.push(child);
                }
            }
        }
    }

    /// Has cancellation been requested (directly, via an ancestor's
    /// `cancel`, or by deadline expiry)?
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.node.cancelled.load(Ordering::Acquire)
            || self
                .node
                .deadline
                .is_some_and(|due| Instant::now() >= due)
    }

    /// This token's effective deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.node.deadline
    }

    /// Time left until the effective deadline: `None` when unbounded,
    /// `Some(ZERO)` once expired.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.node
            .deadline
            .map(|due| due.saturating_duration_since(Instant::now()))
    }

    /// Cancellation checkpoint for task bodies: `Err(Cancelled)` once
    /// cancellation has been requested, `Ok(())` otherwise. Lets long
    /// loops bail out with `?`.
    pub fn checkpoint(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }

    /// Do these two tokens share the same tree node (i.e. are they
    /// clones of each other rather than parent/child)?
    #[must_use]
    pub fn same_node(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.node, &other.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.checkpoint().is_ok());
        assert_eq!(t.deadline(), None);
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn cancel_flips_clones_too() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(t.is_cancelled());
        assert!(c.is_cancelled(), "clones share the node");
        assert_eq!(c.checkpoint(), Err(Cancelled));
    }

    #[test]
    fn parent_cancel_reaches_whole_subtree() {
        let root = CancelToken::new();
        let a = root.child();
        let b = root.child();
        let aa = a.child();
        root.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
        assert!(aa.is_cancelled(), "cancellation must cascade transitively");
    }

    #[test]
    fn child_cancel_does_not_escape_upward_or_sideways() {
        let root = CancelToken::new();
        let a = root.child();
        let b = root.child();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!root.is_cancelled(), "child cancel must not reach the parent");
        assert!(!b.is_cancelled(), "child cancel must not reach siblings");
    }

    #[test]
    fn child_created_after_cancel_starts_cancelled() {
        let root = CancelToken::new();
        root.cancel();
        let late = root.child();
        assert!(late.is_cancelled());
        let later = late.child();
        assert!(later.is_cancelled());
    }

    #[test]
    fn deadline_expiry_cancels() {
        let t = CancelToken::with_deadline(Duration::from_millis(5));
        assert!(!t.is_cancelled());
        std::thread::sleep(Duration::from_millis(10));
        assert!(t.is_cancelled(), "expired deadline must read as cancelled");
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn child_inherits_and_tightens_deadline() {
        let root = CancelToken::with_deadline(Duration::from_secs(60));
        let inherited = root.child();
        assert_eq!(inherited.deadline(), root.deadline(), "child inherits");

        let tightened = root.child_with_deadline(Duration::from_millis(1));
        assert!(tightened.deadline().unwrap() < root.deadline().unwrap());

        // A "longer" child budget is clamped to the parent's deadline.
        let clamped = root.child_with_deadline(Duration::from_secs(3600));
        assert_eq!(clamped.deadline(), root.deadline(), "cannot extend past parent");
    }

    #[test]
    fn deep_trees_cancel_without_recursion_limits() {
        let root = CancelToken::new();
        let mut leaf = root.clone();
        let mut path = Vec::new();
        for _ in 0..10_000 {
            leaf = leaf.child();
            path.push(leaf.clone());
        }
        root.cancel();
        assert!(path.iter().all(CancelToken::is_cancelled));
    }

    #[test]
    fn dead_children_get_pruned() {
        let root = CancelToken::new();
        for _ in 0..10_000 {
            let _short_lived = root.child();
        }
        // After many create/drop cycles the child list must stay
        // bounded (pruned at the 32-entry threshold), not grow 10k.
        assert!(root.node.children.lock().len() <= 64);
    }

    #[test]
    fn concurrent_cancel_and_child_creation_never_loses_a_child() {
        for _ in 0..50 {
            let root = CancelToken::new();
            let r2 = root.clone();
            let spawner = std::thread::spawn(move || {
                let mut kids = Vec::new();
                for _ in 0..100 {
                    kids.push(r2.child());
                }
                kids
            });
            root.cancel();
            let kids = spawner.join().unwrap();
            // Every child created around the cancel must observe it.
            assert!(kids.iter().all(CancelToken::is_cancelled));
        }
    }
}
