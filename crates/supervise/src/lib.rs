//! `parc-supervise` — structured cancellation and supervision trees.
//!
//! Two layers, both deterministic under a fixed seed:
//!
//! * [`CancelToken`] — hierarchical cancellation with deadline
//!   propagation. Tokens form a tree: cancelling a parent cancels the
//!   whole subtree; a child inherits (and can only tighten) its
//!   parent's deadline. Tokens are cheap to clone and poll, and
//!   `partask` / `pyjama` accept them so task bodies and parallel
//!   regions can stop cooperatively.
//! * [`Supervisor`] — Erlang-style restart supervision. Children run
//!   on dedicated threads under child tokens; a failed, panicked, or
//!   timed-out child is restarted with a deterministic seeded backoff
//!   (the same [`faultsim::RetryPolicy`] schedule retries use) until
//!   its budget is exhausted, at which point the failure *escalates* —
//!   observable from the parent when the supervisor is nested as a
//!   subtree. Every lifecycle step is recorded both in trace marks and
//!   in a canonical [`SupervisionReport`] whose event log is
//!   bit-identical across same-seed reruns (for one-for-one trees).
//!
//! The teaching goal (see the course material in `softeng751`): the
//! same determinism discipline the workspace applies to *speedup*
//! experiments extends to *robustness* experiments — a fault storm with
//! a fixed seed produces the same restarts, the same escalations, and
//! the same supervision event log every run, so resilience behaviour
//! can be asserted in CI rather than eyeballed.

#![warn(missing_docs)]

mod supervisor;
mod token;

pub use supervisor::{
    ChildCtx, ChildError, ChildOutcome, ChildReport, RestartPolicy, SupEvent, SupEventKind,
    SupervisionReport, Supervisor, SupervisorBuilder,
};
pub use token::{CancelToken, Cancelled};
