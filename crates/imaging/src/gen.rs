//! Deterministic synthetic image generators (the "folder of images"
//! substitution).

use parc_util::rng::Xoshiro256;

use crate::image::Image;

/// What kind of content a synthetic image has.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// Horizontal/vertical colour gradient.
    Gradient,
    /// Checkerboard with an 8-pixel cell.
    Checkerboard,
    /// Per-pixel uniform noise.
    Noise,
    /// Smooth plasma (sum of sines) — the most photo-like.
    Plasma,
}

/// Generate one image.
#[must_use]
pub fn generate(pattern: Pattern, width: u32, height: u32, seed: u64) -> Image {
    let mut img = Image::new(width, height);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let (p1, p2) = (rng.next_f64() * 0.1 + 0.02, rng.next_f64() * 0.1 + 0.02);
    for y in 0..height {
        for x in 0..width {
            let rgba = match pattern {
                Pattern::Gradient => {
                    let r = (255 * x / width.max(1)) as u8;
                    let g = (255 * y / height.max(1)) as u8;
                    [r, g, 128, 255]
                }
                Pattern::Checkerboard => {
                    let on = ((x / 8) + (y / 8)) % 2 == 0;
                    if on {
                        [230, 230, 230, 255]
                    } else {
                        [25, 25, 25, 255]
                    }
                }
                Pattern::Noise => [
                    rng.next_below(256) as u8,
                    rng.next_below(256) as u8,
                    rng.next_below(256) as u8,
                    255,
                ],
                Pattern::Plasma => {
                    let fx = f64::from(x);
                    let fy = f64::from(y);
                    let v = (fx * p1).sin() + (fy * p2).sin() + ((fx + fy) * p1 * 0.7).sin();
                    let scale = |ph: f64| (((v + ph).sin() + 1.0) * 127.5) as u8;
                    [scale(0.0), scale(2.0), scale(4.0), 255]
                }
            };
            img.set(x, y, rgba);
        }
    }
    img
}

/// Generate a deterministic "folder": `count` images with varied
/// patterns and sizes in `[min_side, max_side]`.
#[must_use]
pub fn generate_folder(count: usize, min_side: u32, max_side: u32, seed: u64) -> Vec<Image> {
    assert!(min_side > 0 && min_side <= max_side);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let patterns = [
        Pattern::Gradient,
        Pattern::Checkerboard,
        Pattern::Noise,
        Pattern::Plasma,
    ];
    (0..count)
        .map(|i| {
            let w = rng.gen_range_u64(u64::from(min_side)..u64::from(max_side) + 1) as u32;
            let h = rng.gen_range_u64(u64::from(min_side)..u64::from(max_side) + 1) as u32;
            generate(patterns[i % patterns.len()], w, h, rng.next_u64())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        for p in [
            Pattern::Gradient,
            Pattern::Checkerboard,
            Pattern::Noise,
            Pattern::Plasma,
        ] {
            let a = generate(p, 16, 16, 9);
            let b = generate(p, 16, 16, 9);
            assert_eq!(a.content_hash(), b.content_hash(), "{p:?}");
        }
    }

    #[test]
    fn patterns_differ() {
        let g = generate(Pattern::Gradient, 32, 32, 1);
        let c = generate(Pattern::Checkerboard, 32, 32, 1);
        let n = generate(Pattern::Noise, 32, 32, 1);
        assert_ne!(g.content_hash(), c.content_hash());
        assert_ne!(c.content_hash(), n.content_hash());
    }

    #[test]
    fn checkerboard_cells() {
        let img = generate(Pattern::Checkerboard, 32, 32, 0);
        assert_eq!(img.get(0, 0), [230, 230, 230, 255]);
        assert_eq!(img.get(8, 0), [25, 25, 25, 255]);
        assert_eq!(img.get(8, 8), [230, 230, 230, 255]);
    }

    #[test]
    fn folder_respects_bounds_and_count() {
        let folder = generate_folder(10, 8, 24, 42);
        assert_eq!(folder.len(), 10);
        for img in &folder {
            assert!((8..=24).contains(&img.width()));
            assert!((8..=24).contains(&img.height()));
        }
    }

    #[test]
    fn folder_deterministic_per_seed() {
        let a = generate_folder(5, 8, 16, 7);
        let b = generate_folder(5, 8, 16, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.content_hash(), y.content_hash());
        }
    }
}
