//! Image resizing filters.
//!
//! Three quality/cost tiers, as the project brief's "existing
//! functions/libraries to scale the images" would offer: nearest
//! neighbour, bilinear interpolation and box (area-average) filtering
//! — the right choice for thumbnail *downscaling*.

use crate::image::Image;

/// Resampling filter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Filter {
    /// Nearest neighbour: fastest, blockiest.
    Nearest,
    /// Bilinear interpolation of the four surrounding pixels.
    Bilinear,
    /// Area average over the source footprint of each target pixel;
    /// the standard thumbnail filter.
    BoxAverage,
}

/// Resize `src` to `dst_w × dst_h` with the given filter.
#[must_use]
pub fn resize(src: &Image, dst_w: u32, dst_h: u32, filter: Filter) -> Image {
    assert!(dst_w > 0 && dst_h > 0, "target dimensions must be positive");
    let mut dst = Image::new(dst_w, dst_h);
    match filter {
        Filter::Nearest => {
            for y in 0..dst_h {
                let sy = (u64::from(y) * u64::from(src.height()) / u64::from(dst_h)) as u32;
                for x in 0..dst_w {
                    let sx = (u64::from(x) * u64::from(src.width()) / u64::from(dst_w)) as u32;
                    dst.set(x, y, src.get(sx, sy));
                }
            }
        }
        Filter::Bilinear => {
            let fx = f64::from(src.width()) / f64::from(dst_w);
            let fy = f64::from(src.height()) / f64::from(dst_h);
            for y in 0..dst_h {
                let sy = (f64::from(y) + 0.5) * fy - 0.5;
                let y0 = sy.floor().max(0.0) as u32;
                let y1 = (y0 + 1).min(src.height() - 1);
                let wy = (sy - f64::from(y0)).clamp(0.0, 1.0);
                for x in 0..dst_w {
                    let sx = (f64::from(x) + 0.5) * fx - 0.5;
                    let x0 = sx.floor().max(0.0) as u32;
                    let x1 = (x0 + 1).min(src.width() - 1);
                    let wx = (sx - f64::from(x0)).clamp(0.0, 1.0);
                    let p00 = src.get(x0, y0);
                    let p10 = src.get(x1, y0);
                    let p01 = src.get(x0, y1);
                    let p11 = src.get(x1, y1);
                    let mut out = [0u8; 4];
                    for c in 0..4 {
                        let top = f64::from(p00[c]) * (1.0 - wx) + f64::from(p10[c]) * wx;
                        let bot = f64::from(p01[c]) * (1.0 - wx) + f64::from(p11[c]) * wx;
                        out[c] = (top * (1.0 - wy) + bot * wy).round() as u8;
                    }
                    dst.set(x, y, out);
                }
            }
        }
        Filter::BoxAverage => {
            for y in 0..dst_h {
                let sy0 = (u64::from(y) * u64::from(src.height()) / u64::from(dst_h)) as u32;
                let sy1 = (((u64::from(y) + 1) * u64::from(src.height())).div_ceil(u64::from(dst_h))
                    as u32)
                    .clamp(sy0 + 1, src.height());
                for x in 0..dst_w {
                    let sx0 = (u64::from(x) * u64::from(src.width()) / u64::from(dst_w)) as u32;
                    let sx1 = (((u64::from(x) + 1) * u64::from(src.width()))
                        .div_ceil(u64::from(dst_w)) as u32)
                        .clamp(sx0 + 1, src.width());
                    let mut acc = [0.0f64; 4];
                    let mut count = 0.0;
                    for sy in sy0..sy1 {
                        for sx in sx0..sx1 {
                            let p = src.get(sx, sy);
                            for c in 0..4 {
                                acc[c] += f64::from(p[c]);
                            }
                            count += 1.0;
                        }
                    }
                    let out = acc.map(|v| (v / count).round() as u8);
                    dst.set(x, y, out);
                }
            }
        }
    }
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Pattern};

    #[test]
    fn output_dimensions() {
        let src = generate(Pattern::Gradient, 40, 30, 1);
        for f in [Filter::Nearest, Filter::Bilinear, Filter::BoxAverage] {
            let t = resize(&src, 10, 5, f);
            assert_eq!((t.width(), t.height()), (10, 5), "{f:?}");
        }
    }

    #[test]
    fn identity_resize_nearest_is_exact() {
        let src = generate(Pattern::Noise, 16, 16, 2);
        let same = resize(&src, 16, 16, Filter::Nearest);
        assert_eq!(src.content_hash(), same.content_hash());
    }

    #[test]
    fn uniform_image_stays_uniform_under_all_filters() {
        let mut src = Image::new(20, 20);
        for y in 0..20 {
            for x in 0..20 {
                src.set(x, y, [77, 88, 99, 255]);
            }
        }
        for f in [Filter::Nearest, Filter::Bilinear, Filter::BoxAverage] {
            let t = resize(&src, 7, 7, f);
            for y in 0..7 {
                for x in 0..7 {
                    assert_eq!(t.get(x, y), [77, 88, 99, 255], "{f:?} at ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn box_average_preserves_mean_brightness() {
        let src = generate(Pattern::Plasma, 64, 64, 3);
        let thumb = resize(&src, 16, 16, Filter::BoxAverage);
        let src_mean = src.mean_rgba();
        let thumb_mean = thumb.mean_rgba();
        for c in 0..3 {
            assert!(
                (src_mean[c] - thumb_mean[c]).abs() < 3.0,
                "channel {c}: {} vs {}",
                src_mean[c],
                thumb_mean[c]
            );
        }
    }

    #[test]
    fn box_average_of_checkerboard_is_grey() {
        // 8-px cells averaged over 16-px footprints -> mid grey.
        let src = generate(Pattern::Checkerboard, 64, 64, 0);
        let thumb = resize(&src, 4, 4, Filter::BoxAverage);
        let mean = thumb.mean_rgba();
        assert!((mean[0] - 127.5).abs() < 2.0, "got {}", mean[0]);
    }

    #[test]
    fn nearest_of_checkerboard_aliases() {
        // Nearest sampling every 16th pixel of an 8-cell checkerboard
        // hits the same cell colour each time: fully aliased output.
        let src = generate(Pattern::Checkerboard, 64, 64, 0);
        let thumb = resize(&src, 4, 4, Filter::Nearest);
        let first = thumb.get(0, 0);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(thumb.get(x, y), first);
            }
        }
    }

    #[test]
    fn upscale_bilinear_interpolates_between_pixels() {
        let mut src = Image::new(2, 1);
        src.set(0, 0, [0, 0, 0, 255]);
        src.set(1, 0, [200, 200, 200, 255]);
        let up = resize(&src, 4, 1, Filter::Bilinear);
        // Interior pixels must be strictly between the endpoints.
        let mid = up.get(1, 0)[0];
        assert!(mid > 0 && mid < 200, "mid = {mid}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_target_rejected() {
        let src = Image::new(4, 4);
        let _ = resize(&src, 0, 4, Filter::Nearest);
    }
}
