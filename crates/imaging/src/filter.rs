//! Pixel filters beyond resizing: grayscale, brightness, box blur,
//! Sobel edges, flips and rotation.
//!
//! Each filter has a sequential form plus a pyjama-parallel form that
//! workshares the output rows — the same disjoint-write pattern as
//! the thumbnail pipeline, giving project 1's "image processing"
//! extension a richer operation set (and the E1 bench more shapes).

use pyjama::{Schedule, Team};

use crate::image::Image;

/// A pure per-image operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Filter2D {
    /// Luma grayscale (BT.601 weights).
    Grayscale,
    /// Additive brightness (clamped); the parameter is the delta.
    Brighten(i16),
    /// Box blur with the given radius.
    BoxBlur(u8),
    /// Sobel edge magnitude (output is grayscale edges).
    SobelEdges,
    /// Horizontal mirror.
    FlipHorizontal,
    /// Vertical mirror.
    FlipVertical,
    /// Rotate 90° clockwise (swaps dimensions).
    Rotate90,
}

impl Filter2D {
    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Filter2D::Grayscale => "grayscale".into(),
            Filter2D::Brighten(d) => format!("brighten({d})"),
            Filter2D::BoxBlur(r) => format!("box-blur({r})"),
            Filter2D::SobelEdges => "sobel".into(),
            Filter2D::FlipHorizontal => "flip-h".into(),
            Filter2D::FlipVertical => "flip-v".into(),
            Filter2D::Rotate90 => "rotate90".into(),
        }
    }
}

/// Output dimensions of applying `f` to a `w × h` image.
#[must_use]
pub fn output_dims(f: Filter2D, w: u32, h: u32) -> (u32, u32) {
    match f {
        Filter2D::Rotate90 => (h, w),
        _ => (w, h),
    }
}

fn luma(p: [u8; 4]) -> u8 {
    // BT.601: 0.299 R + 0.587 G + 0.114 B, in fixed point.
    ((299 * u32::from(p[0]) + 587 * u32::from(p[1]) + 114 * u32::from(p[2])) / 1000) as u8
}

/// Compute one output row of `f` applied to `src`.
fn filter_row(src: &Image, f: Filter2D, y: u32, out_w: u32) -> Vec<[u8; 4]> {
    let (w, h) = (src.width(), src.height());
    (0..out_w)
        .map(|x| match f {
            Filter2D::Grayscale => {
                let p = src.get(x, y);
                let g = luma(p);
                [g, g, g, p[3]]
            }
            Filter2D::Brighten(d) => {
                let p = src.get(x, y);
                let adj = |c: u8| (i32::from(c) + i32::from(d)).clamp(0, 255) as u8;
                [adj(p[0]), adj(p[1]), adj(p[2]), p[3]]
            }
            Filter2D::BoxBlur(r) => {
                let r = u32::from(r);
                let x0 = x.saturating_sub(r);
                let x1 = (x + r + 1).min(w);
                let y0 = y.saturating_sub(r);
                let y1 = (y + r + 1).min(h);
                let mut acc = [0u32; 4];
                let mut n = 0u32;
                for sy in y0..y1 {
                    for sx in x0..x1 {
                        let p = src.get(sx, sy);
                        for c in 0..4 {
                            acc[c] += u32::from(p[c]);
                        }
                        n += 1;
                    }
                }
                [
                    (acc[0] / n) as u8,
                    (acc[1] / n) as u8,
                    (acc[2] / n) as u8,
                    (acc[3] / n) as u8,
                ]
            }
            Filter2D::SobelEdges => {
                if x == 0 || y == 0 || x + 1 >= w || y + 1 >= h {
                    return [0, 0, 0, 255];
                }
                let g = |dx: i32, dy: i32| {
                    i32::from(luma(src.get(
                        (x as i32 + dx) as u32,
                        (y as i32 + dy) as u32,
                    )))
                };
                let gx = -g(-1, -1) - 2 * g(-1, 0) - g(-1, 1) + g(1, -1) + 2 * g(1, 0) + g(1, 1);
                let gy = -g(-1, -1) - 2 * g(0, -1) - g(1, -1) + g(-1, 1) + 2 * g(0, 1) + g(1, 1);
                let mag = (((gx * gx + gy * gy) as f64).sqrt()).min(255.0) as u8;
                [mag, mag, mag, 255]
            }
            Filter2D::FlipHorizontal => src.get(w - 1 - x, y),
            Filter2D::FlipVertical => src.get(x, h - 1 - y),
            Filter2D::Rotate90 => src.get(y, h - 1 - x),
        })
        .collect()
}

/// Apply a filter sequentially.
#[must_use]
pub fn apply_seq(src: &Image, f: Filter2D) -> Image {
    let (ow, oh) = output_dims(f, src.width(), src.height());
    let mut out = Image::new(ow, oh);
    for y in 0..oh {
        for (x, px) in filter_row(src, f, y, ow).into_iter().enumerate() {
            out.set(x as u32, y, px);
        }
    }
    out
}

/// Apply a filter with a pyjama worksharing loop over output rows.
#[must_use]
pub fn apply_par(team: &Team, src: &Image, f: Filter2D) -> Image {
    let (ow, oh) = output_dims(f, src.width(), src.height());
    let rows: Vec<parking_lot::Mutex<Vec<[u8; 4]>>> =
        (0..oh).map(|_| parking_lot::Mutex::new(Vec::new())).collect();
    let rows_ref = &rows;
    team.for_each(0..oh as usize, Schedule::Dynamic(8), move |y| {
        *rows_ref[y].lock() = filter_row(src, f, y as u32, ow);
    });
    let mut out = Image::new(ow, oh);
    for (y, row) in rows.into_iter().enumerate() {
        for (x, px) in row.into_inner().into_iter().enumerate() {
            out.set(x as u32, y as u32, px);
        }
    }
    out
}

/// Apply a chain of filters (a small processing pipeline).
#[must_use]
pub fn apply_pipeline(team: &Team, src: &Image, filters: &[Filter2D]) -> Image {
    let mut img = src.clone();
    for &f in filters {
        img = apply_par(team, &img, f);
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Pattern};

    fn sample() -> Image {
        generate(Pattern::Plasma, 24, 18, 7)
    }

    #[test]
    fn parallel_matches_sequential_for_all_filters() {
        let team = Team::new(3);
        let src = sample();
        for f in [
            Filter2D::Grayscale,
            Filter2D::Brighten(40),
            Filter2D::Brighten(-40),
            Filter2D::BoxBlur(2),
            Filter2D::SobelEdges,
            Filter2D::FlipHorizontal,
            Filter2D::FlipVertical,
            Filter2D::Rotate90,
        ] {
            let seq = apply_seq(&src, f);
            let par = apply_par(&team, &src, f);
            assert_eq!(seq.content_hash(), par.content_hash(), "{}", f.label());
        }
    }

    #[test]
    fn grayscale_channels_equal() {
        let out = apply_seq(&sample(), Filter2D::Grayscale);
        for y in 0..out.height() {
            for x in 0..out.width() {
                let p = out.get(x, y);
                assert_eq!(p[0], p[1]);
                assert_eq!(p[1], p[2]);
            }
        }
    }

    #[test]
    fn brighten_clamps() {
        let out = apply_seq(&sample(), Filter2D::Brighten(300_i16.min(255)));
        for y in 0..out.height() {
            for x in 0..out.width() {
                let p = out.get(x, y);
                assert!(p[0] >= sample().get(x, y)[0]);
            }
        }
        let dark = apply_seq(&sample(), Filter2D::Brighten(-255));
        assert_eq!(dark.mean_rgba()[0], 0.0);
    }

    #[test]
    fn double_flip_is_identity() {
        let src = sample();
        let hh = apply_seq(&apply_seq(&src, Filter2D::FlipHorizontal), Filter2D::FlipHorizontal);
        assert_eq!(src.content_hash(), hh.content_hash());
        let vv = apply_seq(&apply_seq(&src, Filter2D::FlipVertical), Filter2D::FlipVertical);
        assert_eq!(src.content_hash(), vv.content_hash());
    }

    #[test]
    fn four_rotations_are_identity() {
        let src = sample();
        let mut img = src.clone();
        for _ in 0..4 {
            img = apply_seq(&img, Filter2D::Rotate90);
        }
        assert_eq!(src.content_hash(), img.content_hash());
    }

    #[test]
    fn rotate_swaps_dimensions() {
        let src = sample(); // 24 x 18
        let rot = apply_seq(&src, Filter2D::Rotate90);
        assert_eq!((rot.width(), rot.height()), (18, 24));
        assert_eq!(output_dims(Filter2D::Rotate90, 24, 18), (18, 24));
        assert_eq!(output_dims(Filter2D::Grayscale, 24, 18), (24, 18));
    }

    #[test]
    fn blur_preserves_mean_roughly() {
        let src = sample();
        let out = apply_seq(&src, Filter2D::BoxBlur(1));
        let (a, b) = (src.mean_rgba(), out.mean_rgba());
        for c in 0..3 {
            assert!((a[c] - b[c]).abs() < 4.0, "channel {c}: {} vs {}", a[c], b[c]);
        }
    }

    #[test]
    fn sobel_flat_image_is_black_interior() {
        let mut flat = Image::new(10, 10);
        for y in 0..10 {
            for x in 0..10 {
                flat.set(x, y, [120, 120, 120, 255]);
            }
        }
        let edges = apply_seq(&flat, Filter2D::SobelEdges);
        for y in 1..9 {
            for x in 1..9 {
                assert_eq!(edges.get(x, y)[0], 0);
            }
        }
    }

    #[test]
    fn sobel_detects_vertical_edge() {
        let mut img = Image::new(10, 10);
        for y in 0..10 {
            for x in 0..10 {
                let v = if x < 5 { 0 } else { 255 };
                img.set(x, y, [v, v, v, 255]);
            }
        }
        let edges = apply_seq(&img, Filter2D::SobelEdges);
        // Strong response at the boundary column, none far away.
        assert!(edges.get(5, 5)[0] > 200 || edges.get(4, 5)[0] > 200);
        assert_eq!(edges.get(2, 5)[0], 0);
    }

    #[test]
    fn pipeline_composes() {
        let team = Team::new(2);
        let src = sample();
        let out = apply_pipeline(
            &team,
            &src,
            &[Filter2D::Grayscale, Filter2D::BoxBlur(1), Filter2D::Rotate90],
        );
        assert_eq!((out.width(), out.height()), (18, 24));
        let p = out.get(3, 3);
        assert_eq!(p[0], p[1]);
    }
}
