//! RGBA image buffer.

/// An 8-bit RGBA image, row-major.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Image {
    width: u32,
    height: u32,
    /// RGBA bytes, `4 * width * height` of them.
    pixels: Vec<u8>,
}

impl Image {
    /// A black, fully opaque image.
    #[must_use]
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        let mut pixels = vec![0u8; (width * height * 4) as usize];
        // Opaque alpha.
        for a in pixels.iter_mut().skip(3).step_by(4) {
            *a = 255;
        }
        Self {
            width,
            height,
            pixels,
        }
    }

    /// Width in pixels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw RGBA bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.pixels
    }

    fn offset(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height, "pixel out of bounds");
        ((y * self.width + x) * 4) as usize
    }

    /// Read pixel `(x, y)` as `[r, g, b, a]`.
    #[must_use]
    pub fn get(&self, x: u32, y: u32) -> [u8; 4] {
        let o = self.offset(x, y);
        [
            self.pixels[o],
            self.pixels[o + 1],
            self.pixels[o + 2],
            self.pixels[o + 3],
        ]
    }

    /// Write pixel `(x, y)`.
    pub fn set(&mut self, x: u32, y: u32, rgba: [u8; 4]) {
        let o = self.offset(x, y);
        self.pixels[o..o + 4].copy_from_slice(&rgba);
    }

    /// Mean channel values across the image — cheap content
    /// fingerprint used by the tests to compare resize filters.
    #[must_use]
    pub fn mean_rgba(&self) -> [f64; 4] {
        let mut acc = [0.0f64; 4];
        for px in self.pixels.chunks_exact(4) {
            for c in 0..4 {
                acc[c] += f64::from(px[c]);
            }
        }
        let n = (self.width * self.height) as f64;
        acc.map(|v| v / n)
    }

    /// A 64-bit FNV-style content hash (deterministic fingerprint).
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.pixels {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ (u64::from(self.width) << 32 | u64::from(self.height))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_image_is_black_opaque() {
        let img = Image::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.get(0, 0), [0, 0, 0, 255]);
        assert_eq!(img.get(3, 2), [0, 0, 0, 255]);
        assert_eq!(img.bytes().len(), 48);
    }

    #[test]
    fn set_then_get_roundtrip() {
        let mut img = Image::new(2, 2);
        img.set(1, 0, [10, 20, 30, 40]);
        assert_eq!(img.get(1, 0), [10, 20, 30, 40]);
        assert_eq!(img.get(0, 0), [0, 0, 0, 255]);
    }

    #[test]
    fn mean_of_uniform_image() {
        let mut img = Image::new(3, 3);
        for y in 0..3 {
            for x in 0..3 {
                img.set(x, y, [100, 150, 200, 255]);
            }
        }
        let mean = img.mean_rgba();
        assert_eq!(mean, [100.0, 150.0, 200.0, 255.0]);
    }

    #[test]
    fn content_hash_distinguishes() {
        let a = Image::new(4, 4);
        let mut b = Image::new(4, 4);
        b.set(2, 2, [1, 2, 3, 255]);
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(a.content_hash(), Image::new(4, 4).content_hash());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        let _ = Image::new(0, 5);
    }
}
