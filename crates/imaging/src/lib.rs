//! # imaging — synthetic images, resize filters and the thumbnail
//! gallery pipeline
//!
//! SoftEng 751 **project 1**: "a small GUI application in which the
//! user could open a folder of images with thumbnails being displayed
//! for each image … the resizing of the images be done in parallel and
//! the GUI remains fully responsive", with one group "comparing the
//! performance across a number of Java parallelisation strategies …
//! investigating different ways to schedule the workload, and using
//! different image input sizes".
//!
//! Substitution (documented in DESIGN.md): no image corpus exists in
//! this container, so [`gen`] synthesises deterministic RGBA images;
//! the resize arithmetic in [`resize`] and the parallel structure in
//! [`gallery`] are the real thing.

pub mod filter;
pub mod gallery;
pub mod gen;
pub mod image;
pub mod resize;

pub use filter::{apply_par, apply_pipeline, apply_seq, Filter2D};
pub use gallery::{render_gallery, GalleryConfig, GalleryReport, Strategy};
pub use image::Image;
pub use resize::{resize, Filter};
