//! The thumbnail-gallery pipeline under interchangeable
//! parallelisation strategies (the heart of project 1).
//!
//! A "folder" of images is thumbnailed with one of:
//!
//! * [`Strategy::Sequential`] — the baseline;
//! * [`Strategy::TaskPerImage`] — one partask task per image (the
//!   Parallel Task `TASK` phrasing);
//! * [`Strategy::MultiTask`] — a `TASK(n)` multi-task striding the
//!   gallery (fewer, bigger tasks);
//! * [`Strategy::PyjamaDynamic`] / [`Strategy::PyjamaStatic`] —
//!   worksharing loops (the Pyjama phrasing), dynamic matching the
//!   skew from mixed image sizes.
//!
//! Finished thumbnails can be streamed through an
//! [`partask::InterimSender`] as they complete — in the GUI example
//! that sender forwards to the event-dispatch thread, reproducing the
//! "thumbnails appear while the user scrolls" behaviour.

use std::sync::Arc;

use parking_lot::Mutex;
use partask::{InterimSender, TaskRuntime};
use pyjama::{Schedule, Team};

use crate::image::Image;
use crate::resize::{resize, Filter};

/// Parallelisation strategy for the gallery render.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// One thread, in order.
    Sequential,
    /// One partask task per image.
    TaskPerImage,
    /// A multi-task of `n` instances, instance `i` handling images
    /// `i, i+n, i+2n, …`.
    MultiTask(usize),
    /// Pyjama worksharing loop, dynamic schedule with given chunk.
    PyjamaDynamic(usize),
    /// Pyjama worksharing loop, static schedule.
    PyjamaStatic,
}

impl Strategy {
    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Strategy::Sequential => "sequential".into(),
            Strategy::TaskPerImage => "task-per-image".into(),
            Strategy::MultiTask(n) => format!("multi-task({n})"),
            Strategy::PyjamaDynamic(c) => format!("pyjama-dynamic({c})"),
            Strategy::PyjamaStatic => "pyjama-static".into(),
        }
    }
}

/// Gallery parameters.
#[derive(Clone, Debug)]
pub struct GalleryConfig {
    /// Thumbnail width.
    pub thumb_w: u32,
    /// Thumbnail height.
    pub thumb_h: u32,
    /// Resampling filter.
    pub filter: Filter,
    /// Parallelisation strategy.
    pub strategy: Strategy,
}

impl Default for GalleryConfig {
    fn default() -> Self {
        Self {
            thumb_w: 128,
            thumb_h: 128,
            filter: Filter::BoxAverage,
            strategy: Strategy::Sequential,
        }
    }
}

/// Outcome of a gallery render.
#[derive(Debug)]
pub struct GalleryReport {
    /// Thumbnails in the input order.
    pub thumbnails: Vec<Image>,
    /// Strategy label used.
    pub strategy: String,
}

/// Render thumbnails for every image in the folder. Completed
/// thumbnails are additionally streamed (index + thumbnail) through
/// `on_thumb` if provided — in completion order, which for the
/// parallel strategies is *not* input order.
#[must_use]
pub fn render_gallery(
    images: &Arc<Vec<Image>>,
    cfg: &GalleryConfig,
    rt: &TaskRuntime,
    team: &Team,
    on_thumb: Option<&InterimSender<(usize, Image)>>,
) -> GalleryReport {
    let n = images.len();
    let (w, h, filter) = (cfg.thumb_w, cfg.thumb_h, cfg.filter);
    let thumbnails: Vec<Image> = match cfg.strategy {
        Strategy::Sequential => images
            .iter()
            .enumerate()
            .map(|(i, img)| {
                let t = resize(img, w, h, filter);
                if let Some(tx) = on_thumb {
                    tx.send((i, t.clone()));
                }
                t
            })
            .collect(),
        Strategy::TaskPerImage => {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let images = Arc::clone(images);
                    let tx = on_thumb.cloned();
                    rt.spawn(move || {
                        let t = resize(&images[i], w, h, filter);
                        if let Some(tx) = &tx {
                            tx.send((i, t.clone()));
                        }
                        t
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("thumbnail task"))
                .collect()
        }
        Strategy::MultiTask(k) => {
            let k = k.clamp(1, n.max(1));
            let images2 = Arc::clone(images);
            let tx = on_thumb.cloned();
            let multi = rt.spawn_multi(k, move |inst| {
                let mut out = Vec::new();
                let mut i = inst;
                while i < images2.len() {
                    let t = resize(&images2[i], w, h, filter);
                    if let Some(tx) = &tx {
                        tx.send((i, t.clone()));
                    }
                    out.push((i, t));
                    i += k;
                }
                out
            });
            let mut slots: Vec<Option<Image>> = (0..n).map(|_| None).collect();
            for batch in multi.join_all().expect("multi-task") {
                for (i, t) in batch {
                    slots[i] = Some(t);
                }
            }
            slots.into_iter().map(|s| s.expect("all rendered")).collect()
        }
        Strategy::PyjamaDynamic(chunk) => {
            render_pyjama(images, cfg, team, Schedule::Dynamic(chunk.max(1)), on_thumb)
        }
        Strategy::PyjamaStatic => render_pyjama(images, cfg, team, Schedule::Static, on_thumb),
    };
    GalleryReport {
        thumbnails,
        strategy: cfg.strategy.label(),
    }
}

fn render_pyjama(
    images: &Arc<Vec<Image>>,
    cfg: &GalleryConfig,
    team: &Team,
    schedule: Schedule,
    on_thumb: Option<&InterimSender<(usize, Image)>>,
) -> Vec<Image> {
    let n = images.len();
    let (w, h, filter) = (cfg.thumb_w, cfg.thumb_h, cfg.filter);
    let slots: Vec<Mutex<Option<Image>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let slots_ref = &slots;
    let images_ref = &images;
    team.for_each(0..n, schedule, move |i| {
        let t = resize(&images_ref[i], w, h, filter);
        if let Some(tx) = on_thumb {
            tx.send((i, t.clone()));
        }
        *slots_ref[i].lock() = Some(t);
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("all rendered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_folder;
    use partask::interim;

    fn engines() -> (TaskRuntime, Team) {
        (TaskRuntime::builder().workers(2).build(), Team::new(2))
    }

    fn all_strategies() -> Vec<Strategy> {
        vec![
            Strategy::Sequential,
            Strategy::TaskPerImage,
            Strategy::MultiTask(3),
            Strategy::PyjamaDynamic(2),
            Strategy::PyjamaStatic,
        ]
    }

    #[test]
    fn all_strategies_agree_bit_for_bit() {
        let (rt, team) = engines();
        let images = Arc::new(generate_folder(9, 16, 48, 5));
        let mut reference: Option<Vec<u64>> = None;
        for strategy in all_strategies() {
            let cfg = GalleryConfig {
                thumb_w: 12,
                thumb_h: 12,
                strategy,
                ..GalleryConfig::default()
            };
            let report = render_gallery(&images, &cfg, &rt, &team, None);
            assert_eq!(report.thumbnails.len(), 9);
            let hashes: Vec<u64> = report.thumbnails.iter().map(Image::content_hash).collect();
            match &reference {
                None => reference = Some(hashes),
                Some(r) => assert_eq!(r, &hashes, "strategy {}", report.strategy),
            }
        }
        rt.shutdown();
    }

    #[test]
    fn thumbnails_have_requested_size() {
        let (rt, team) = engines();
        let images = Arc::new(generate_folder(4, 20, 40, 6));
        let cfg = GalleryConfig {
            thumb_w: 10,
            thumb_h: 7,
            strategy: Strategy::TaskPerImage,
            ..GalleryConfig::default()
        };
        let report = render_gallery(&images, &cfg, &rt, &team, None);
        for t in &report.thumbnails {
            assert_eq!((t.width(), t.height()), (10, 7));
        }
        rt.shutdown();
    }

    #[test]
    fn interim_stream_delivers_every_thumbnail_once() {
        let (rt, team) = engines();
        let images = Arc::new(generate_folder(8, 16, 24, 7));
        for strategy in all_strategies() {
            let (tx, rx) = interim::channel::<(usize, Image)>();
            let cfg = GalleryConfig {
                thumb_w: 8,
                thumb_h: 8,
                strategy,
                ..GalleryConfig::default()
            };
            let _ = render_gallery(&images, &cfg, &rt, &team, Some(&tx));
            let mut indices: Vec<usize> = rx.try_drain().into_iter().map(|(i, _)| i).collect();
            indices.sort_unstable();
            assert_eq!(indices, (0..8).collect::<Vec<_>>(), "{strategy:?}");
        }
        rt.shutdown();
    }

    #[test]
    fn multi_task_clamps_instance_count() {
        let (rt, team) = engines();
        let images = Arc::new(generate_folder(3, 16, 16, 8));
        let cfg = GalleryConfig {
            thumb_w: 4,
            thumb_h: 4,
            strategy: Strategy::MultiTask(64), // more instances than images
            ..GalleryConfig::default()
        };
        let report = render_gallery(&images, &cfg, &rt, &team, None);
        assert_eq!(report.thumbnails.len(), 3);
        rt.shutdown();
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(Strategy::Sequential.label(), "sequential");
        assert_eq!(Strategy::MultiTask(4).label(), "multi-task(4)");
        assert_eq!(Strategy::PyjamaDynamic(8).label(), "pyjama-dynamic(8)");
    }
}
