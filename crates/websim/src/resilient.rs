//! Graceful degradation: admission control, load shedding, breakers
//! and a stale-metadata cache layered over the fault-tolerant crawler.
//!
//! [`fetcher::try_fetch_all`](crate::fetcher::try_fetch_all) keeps
//! retrying until budgets run out — correct when faults are rare, but
//! under a storm it amplifies load exactly when the server can least
//! afford it. [`ResilientCrawler`] trades completeness for
//! predictability instead:
//!
//! * **Load shedding** — a page whose *predicted* cost
//!   (`model_duration_ms × latency_factor`) exceeds the phase's
//!   deadline budget is shed without touching the server
//!   ([`RequestError::Shed`]).
//! * **Admission control** — at most `max_in_flight` requests are on
//!   the simulated wire at once; excess connections block at the gate.
//!   The gate shapes *timing* only, never outcomes, so reports stay
//!   deterministic.
//! * **Per-connection breakers** — a [`Breaker`] per connection stops
//!   hammering a failing server; while it is open, pages are served
//!   degraded instead of retried.
//! * **Degraded serving** — every page the crawler cannot fetch fresh
//!   is answered from the epoch-stamped [`ResilientCrawler`] cache
//!   when possible, with an explicit staleness age; only uncached
//!   pages become unavailable.
//!
//! Determinism is preserved by *static partitioning*: connection `c`
//! owns pages `c, c + k, c + 2k, …` in ascending order, so breaker
//! state, retry seeds and cache contents are pure functions of the
//! seeds and the epoch — never of thread interleaving. Two crawls of
//! equal-seeded servers produce equal [`ResilientReport`]s on any
//! worker count (`tests/supervise.rs` pins this).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use faultsim::{Breaker, RetryPolicy};
use parc_util::rng::SplitMix64;
use parking_lot::{Condvar, Mutex};
use partask::TaskRuntime;

use crate::server::{RequestError, SimServer};

/// Knobs of the resilient crawl. `connections` is part of the
/// determinism contract: it fixes the page partition, so compare runs
/// only at equal connection counts (worker counts may differ freely).
#[derive(Clone, Debug)]
pub struct ResilientConfig {
    /// Parallel connections (also the page-partition stride).
    pub connections: usize,
    /// Maximum requests in flight at once (admission gate width).
    pub max_in_flight: usize,
    /// Per-page retry schedule for admitted requests.
    pub retry: RetryPolicy,
    /// Consecutive failures before a connection's breaker trips.
    pub breaker_threshold: u32,
    /// Denied calls before a tripped breaker half-opens.
    pub breaker_cooldown: u32,
    /// Successful probes required to close a half-open breaker.
    pub probe_successes: u32,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        Self {
            connections: 4,
            max_in_flight: 8,
            retry: RetryPolicy::fixed(Duration::from_millis(5)).with_max_attempts(3),
            breaker_threshold: 3,
            breaker_cooldown: 4,
            probe_successes: 2,
        }
    }
}

/// How one page was answered by a resilient crawl.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResilientPage {
    /// The page id.
    pub page: usize,
    /// Server attempts spent (0 when shed or breaker-denied).
    pub attempts: u32,
    /// Was the page shed by the deadline predictor?
    pub shed: bool,
    /// Was the page denied by an open breaker?
    pub breaker_denied: bool,
    /// Kilobytes served — fetched fresh this epoch, or from the cache
    /// when [`ResilientPage::stale_age`] is set. `None` = unanswered.
    pub kb: Option<f64>,
    /// Cache age in epochs, when served stale instead of fresh.
    pub stale_age: Option<u64>,
}

impl ResilientPage {
    /// Was the page answered at all (fresh or stale)?
    #[must_use]
    pub fn served(&self) -> bool {
        self.kb.is_some() || self.stale_age.is_some()
    }
}

/// Deterministic accounting of one resilient crawl (one epoch).
///
/// Contains no wall-clock fields, so equal-seeded runs compare equal
/// with `==` regardless of scheduling.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilientReport {
    /// The crawl epoch this report describes (1-based).
    pub epoch: u64,
    /// Connections used (the partition stride).
    pub connections: usize,
    /// Per-page record, sorted by page id.
    pub pages: Vec<ResilientPage>,
    /// Pages fetched fresh this epoch.
    pub fresh: usize,
    /// Pages served from the stale cache.
    pub stale: usize,
    /// Pages shed by the deadline predictor (may still be stale-served).
    pub shed: usize,
    /// Pages denied by an open breaker (may still be stale-served).
    pub breaker_denied: usize,
    /// Pages neither fetched nor cached: the true losses.
    pub unavailable: usize,
    /// Server attempts across all pages.
    pub attempts_total: u64,
}

impl ResilientReport {
    /// Fraction of pages answered (fresh or stale), in `[0, 1]`.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.pages.is_empty() {
            return 1.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let served = (self.fresh + self.stale) as f64;
        #[allow(clippy::cast_precision_loss)]
        let total = self.pages.len() as f64;
        served / total
    }

    /// Mean cache age (in epochs) over stale-served pages; 0 when
    /// everything was fresh.
    #[must_use]
    pub fn staleness(&self) -> f64 {
        let ages: Vec<u64> = self.pages.iter().filter_map(|p| p.stale_age).collect();
        if ages.is_empty() {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let sum = ages.iter().sum::<u64>() as f64;
        #[allow(clippy::cast_precision_loss)]
        let n = ages.len() as f64;
        sum / n
    }

    /// One line for storm tables: `"fresh 180 stale 12 shed 5 …"`.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "fresh {} stale {} shed {} denied {} lost {} coverage {:.3} staleness {:.2}",
            self.fresh,
            self.stale,
            self.shed,
            self.breaker_denied,
            self.unavailable,
            self.coverage(),
            self.staleness(),
        )
    }
}

/// A counting semaphore bounding requests in flight. Purely a timing
/// valve: blocking here cannot change any fetch outcome.
struct AdmissionGate {
    width: usize,
    in_flight: Mutex<usize>,
    freed: Condvar,
}

impl AdmissionGate {
    fn new(width: usize) -> Self {
        Self { width: width.max(1), in_flight: Mutex::new(0), freed: Condvar::new() }
    }

    fn acquire(self: &Arc<Self>) -> GateSlot {
        let mut n = self.in_flight.lock();
        while *n >= self.width {
            self.freed.wait(&mut n);
        }
        *n += 1;
        GateSlot { gate: Arc::clone(self) }
    }
}

/// RAII in-flight slot; releasing wakes one blocked connection.
struct GateSlot {
    gate: Arc<AdmissionGate>,
}

impl Drop for GateSlot {
    fn drop(&mut self) {
        let mut n = self.gate.in_flight.lock();
        *n -= 1;
        drop(n);
        self.gate.freed.notify_one();
    }
}

#[derive(Clone, Copy)]
struct Cached {
    kb: f64,
    epoch: u64,
}

/// A crawler that survives fault storms by degrading instead of
/// failing: shed, deny, or serve stale — but always account for every
/// page and always terminate.
///
/// The crawler is stateful across epochs: each [`ResilientCrawler::crawl`]
/// advances the epoch and refreshes the cache with whatever it fetched,
/// so a calm phase warms the cache that a later storm phase serves
/// stale from.
pub struct ResilientCrawler {
    cfg: ResilientConfig,
    cache: Arc<Mutex<HashMap<usize, Cached>>>,
    epoch: u64,
}

impl ResilientCrawler {
    /// A fresh crawler with an empty cache at epoch 0.
    #[must_use]
    pub fn new(cfg: ResilientConfig) -> Self {
        Self { cfg, cache: Arc::new(Mutex::new(HashMap::new())), epoch: 0 }
    }

    /// Epochs crawled so far.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Pages currently cached (for degraded serving).
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.cache.lock().len()
    }

    /// Crawl every page of `server` once, degrading under pressure.
    ///
    /// `latency_factor` is the crawler's estimate of storm-induced
    /// latency inflation and `shed_budget_ms` the per-request deadline
    /// budget: pages with `model_duration_ms(page, connections) ×
    /// latency_factor > shed_budget_ms` are shed analytically. Both
    /// typically come from the active [`faultsim::StormPhase`].
    pub fn crawl(
        &mut self,
        rt: &TaskRuntime,
        server: &Arc<SimServer>,
        latency_factor: f64,
        shed_budget_ms: f64,
    ) -> ResilientReport {
        self.epoch += 1;
        let epoch = self.epoch;
        let cfg = self.cfg.clone();
        let connections = cfg.connections.max(1);
        let page_count = server.page_count();
        let gate = Arc::new(AdmissionGate::new(cfg.max_in_flight));
        let multi = rt.spawn_multi(connections, {
            let server = Arc::clone(server);
            let cache = Arc::clone(&self.cache);
            let cfg = cfg.clone();
            move |conn| {
                let breaker = Breaker::new(cfg.breaker_threshold, cfg.breaker_cooldown)
                    .with_probe_successes(cfg.probe_successes);
                let mut out = Vec::new();
                let mut page = conn;
                // Static partition: this connection owns every k-th
                // page, visited in ascending order — the breaker sees
                // a schedule-independent request stream.
                while page < page_count {
                    out.push(fetch_degradable(
                        &server,
                        &cache,
                        &gate,
                        &breaker,
                        &cfg,
                        page,
                        epoch,
                        connections,
                        latency_factor,
                        shed_budget_ms,
                    ));
                    page += connections;
                }
                out
            }
        });
        let mut pages = multi
            .join_reduce(Vec::new(), |mut acc: Vec<ResilientPage>, part| {
                acc.extend(part);
                acc
            })
            .unwrap_or_default();
        pages.sort_by_key(|p| p.page);
        let fresh = pages
            .iter()
            .filter(|p| p.kb.is_some() && p.stale_age.is_none())
            .count();
        let stale = pages.iter().filter(|p| p.stale_age.is_some()).count();
        let shed = pages.iter().filter(|p| p.shed).count();
        let breaker_denied = pages.iter().filter(|p| p.breaker_denied).count();
        let unavailable = pages.iter().filter(|p| !p.served()).count();
        let attempts_total = pages.iter().map(|p| u64::from(p.attempts)).sum();
        ResilientReport {
            epoch,
            connections,
            pages,
            fresh,
            stale,
            shed,
            breaker_denied,
            unavailable,
            attempts_total,
        }
    }
}

/// Fetch one page fresh if admission allows, else answer degraded.
#[allow(clippy::too_many_arguments)]
fn fetch_degradable(
    server: &Arc<SimServer>,
    cache: &Arc<Mutex<HashMap<usize, Cached>>>,
    gate: &Arc<AdmissionGate>,
    breaker: &Breaker,
    cfg: &ResilientConfig,
    page: usize,
    epoch: u64,
    connections: usize,
    latency_factor: f64,
    shed_budget_ms: f64,
) -> ResilientPage {
    // 1. Deadline-aware shedding: predicted cost under the storm's
    //    latency inflation, at this crawl's own concurrency. Analytic,
    //    so the shed set is identical on every rerun.
    let predicted_ms = server.model_duration_ms(page, connections) * latency_factor;
    if predicted_ms > shed_budget_ms {
        // The canonical verdict for this path is `RequestError::Shed`
        // with `ShedReason::Deadline`; the report encodes it as the
        // `shed` flag.
        return degrade(cache, page, epoch, 0, true, false);
    }
    // 2. Breaker: while this connection's dependency view is open,
    //    serve degraded rather than pile on. The denial advances the
    //    cooldown, deterministically, because this connection's page
    //    stream is fixed.
    if !breaker.allow() {
        return degrade(cache, page, epoch, 0, false, true);
    }
    // 3. Admitted: retry under the policy, panics contained per
    //    attempt, holding a gate slot only while on the wire.
    let time_scale = server.config().time_scale;
    let page_seed =
        SplitMix64::mix(server.config().seed ^ (page as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let sleep_scaled = |d: Duration| {
        let sim_ms = d.as_secs_f64() * 1e3;
        std::thread::sleep(Duration::from_secs_f64(sim_ms * time_scale));
    };
    let result = cfg.retry.execute_with(page_seed, sleep_scaled, |attempt| {
        let _slot = gate.acquire();
        match catch_unwind(AssertUnwindSafe(|| server.try_request(page, attempt))) {
            Ok(Ok(kb)) => Ok(kb),
            Ok(Err(err)) => Err(err),
            Err(_panic) => Err(RequestError::Transient { page, attempt }),
        }
    });
    match result {
        Ok(done) => {
            breaker.record_success();
            cache.lock().insert(page, Cached { kb: done.value, epoch });
            ResilientPage {
                page,
                attempts: done.attempts,
                shed: false,
                breaker_denied: false,
                kb: Some(done.value),
                stale_age: None,
            }
        }
        Err(err) => {
            breaker.record_failure();
            degrade(cache, page, epoch, err.attempts(), false, false)
        }
    }
}

/// Answer `page` from the stale cache if possible.
fn degrade(
    cache: &Arc<Mutex<HashMap<usize, Cached>>>,
    page: usize,
    epoch: u64,
    attempts: u32,
    shed: bool,
    breaker_denied: bool,
) -> ResilientPage {
    let cached = cache.lock().get(&page).copied();
    ResilientPage {
        page,
        attempts,
        shed,
        breaker_denied,
        kb: cached.map(|c| c.kb),
        stale_age: cached.map(|c| epoch - c.epoch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use faultsim::{FaultInjector, FaultPlan, FaultStorm};

    fn quick_config(pages: usize) -> ServerConfig {
        ServerConfig { pages, time_scale: 2e-6, ..ServerConfig::default() }
    }

    fn reliable_server(pages: usize) -> Arc<SimServer> {
        Arc::new(SimServer::new(quick_config(pages)))
    }

    #[test]
    fn calm_crawl_is_all_fresh() {
        let rt = TaskRuntime::builder().workers(4).build();
        let mut crawler = ResilientCrawler::new(ResilientConfig::default());
        let server = reliable_server(30);
        let report = crawler.crawl(&rt, &server, 1.0, 1e9);
        assert_eq!(report.fresh, 30);
        assert_eq!(report.shed + report.breaker_denied + report.unavailable, 0);
        assert!((report.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(report.staleness(), 0.0);
        assert_eq!(crawler.cache_len(), 30);
        rt.shutdown();
    }

    #[test]
    fn tight_budget_sheds_and_serves_stale_from_warm_cache() {
        let rt = TaskRuntime::builder().workers(4).build();
        let mut crawler = ResilientCrawler::new(ResilientConfig::default());
        let server = reliable_server(30);
        // Epoch 1 warms the cache; epoch 2 inflates latency 100× with
        // a tight budget, shedding expensive pages.
        let calm = crawler.crawl(&rt, &server, 1.0, 1e9);
        assert_eq!(calm.fresh, 30);
        let stormy = crawler.crawl(&rt, &server, 100.0, 250.0);
        assert!(stormy.shed > 0, "100× inflation must shed something");
        // Every shed page is served stale (cache is fully warm).
        for p in stormy.pages.iter().filter(|p| p.shed) {
            assert_eq!(p.attempts, 0, "shed pages never hit the server");
            assert_eq!(p.stale_age, Some(1), "warm cache, one epoch old");
        }
        assert!((stormy.coverage() - 1.0).abs() < 1e-12, "degraded, not lost");
        assert!(stormy.staleness() > 0.0);
        rt.shutdown();
    }

    #[test]
    fn cold_cache_sheds_become_unavailable() {
        let rt = TaskRuntime::builder().workers(2).build();
        let mut crawler = ResilientCrawler::new(ResilientConfig::default());
        let server = reliable_server(20);
        let report = crawler.crawl(&rt, &server, 100.0, 250.0);
        assert!(report.shed > 0);
        assert_eq!(report.stale, 0, "nothing cached yet");
        assert_eq!(report.unavailable, report.shed);
        assert!(report.coverage() < 1.0);
        rt.shutdown();
    }

    #[test]
    fn breaker_opens_under_forced_failures_and_cache_covers() {
        let rt = TaskRuntime::builder().workers(4).build();
        // One connection so every page shares one breaker; pages 0..8
        // always fail, tripping it quickly.
        let cfg = ResilientConfig {
            connections: 1,
            breaker_threshold: 2,
            breaker_cooldown: 3,
            retry: RetryPolicy::fixed(Duration::from_millis(1)).with_max_attempts(2),
            ..ResilientConfig::default()
        };
        let mut crawler = ResilientCrawler::new(cfg);
        let mut plan = FaultPlan::reliable(9);
        for page in 0..8 {
            plan = plan.fail_key_n_times(page, 999);
        }
        let reliable = Arc::new(SimServer::new(quick_config(24)));
        let faulty =
            Arc::new(SimServer::with_faults(quick_config(24), FaultInjector::new(plan)));
        let calm = crawler.crawl(&rt, &reliable, 1.0, 1e9);
        assert_eq!(calm.fresh, 24);
        let stormy = crawler.crawl(&rt, &faulty, 1.0, 1e9);
        assert!(stormy.breaker_denied > 0, "breaker must trip and deny");
        assert!((stormy.coverage() - 1.0).abs() < 1e-12, "cache covers denials");
        assert!(stormy.fresh > 0, "pages past the faulty prefix recover");
        rt.shutdown();
    }

    #[test]
    fn reports_are_deterministic_across_worker_counts() {
        let storm = FaultStorm::brownout(0xABCD);
        let mut reports = Vec::new();
        for workers in [2usize, 6] {
            let rt = TaskRuntime::builder().workers(workers).build();
            let mut crawler = ResilientCrawler::new(ResilientConfig::default());
            let mut per_phase = Vec::new();
            for phase in &storm.phases {
                let server = Arc::new(SimServer::with_faults(
                    quick_config(40),
                    FaultInjector::new(phase.plan.clone()),
                ));
                per_phase.push(crawler.crawl(
                    &rt,
                    &server,
                    phase.latency_factor,
                    phase.shed_budget_ms,
                ));
            }
            reports.push(per_phase);
            rt.shutdown();
        }
        assert_eq!(reports[0], reports[1], "worker count leaked into outcomes");
    }

    #[test]
    fn shed_error_renders_its_own_message() {
        use crate::server::ShedReason;
        let err = RequestError::Shed { page: 7, attempt: 1, reason: ShedReason::Deadline };
        assert_eq!(err.page(), 7);
        assert!(err.to_string().contains("shed by admission control"));
        assert!(err.to_string().contains("deadline"));
    }
}
