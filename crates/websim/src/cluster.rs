//! The sharded, fault-tolerant web tier: a load balancer over N
//! [`SimServer`] replicas with consistent-hash page partitioning,
//! R-way replication, health checks, hedged requests and end-to-end
//! backpressure.
//!
//! One [`SimServer`] behind [`crate::resilient`] degrades gracefully,
//! but a dead replica is still total data loss. [`Cluster`] is the
//! multi-node answer:
//!
//! * **Consistent-hash partitioning** — a seeded [`HashRing`] of
//!   virtual nodes maps every page to R distinct owner replicas;
//!   ejecting one replica remaps only that replica's pages to their
//!   ring successors (the property `tests/load.rs` pins).
//! * **Bounded queues + backpressure** — each replica accepts at most
//!   `queue_capacity` requests per tick; when every candidate's queue
//!   is full the balancer answers
//!   [`RequestError::Shed`]`{ reason: `[`ShedReason::QueueFull`]` }`
//!   instead of letting queues collapse. A global per-tick admission
//!   cap sheds with [`ShedReason::Admission`] before routing.
//! * **Per-replica breakers feeding the routing table** — a
//!   [`Breaker`] per replica (state advanced in deterministic request
//!   order) steers traffic to the next owner while open; if every
//!   owner is open the request is shed with [`ShedReason::Breaker`].
//! * **Deadline shedding** — requests whose *predicted* latency
//!   (queue wait + modelled service under the storm's inflation)
//!   exceeds the phase budget on every candidate are shed with
//!   [`ShedReason::Deadline`].
//! * **Hedged requests** — when the predicted latency exceeds a
//!   seeded quantile of the observed latency histogram, a backup copy
//!   is enqueued on the next owner; the first (modelled) success wins
//!   and the loser is deduplicated, never double-counted.
//! * **Health checks** — every `health_every` ticks the balancer
//!   ejects replicas whose failure ratio crossed `unhealthy_ratio`
//!   and readmits them after `eject_ticks`; kills are observed
//!   immediately.
//! * **Supervised replica restart** — a mid-storm kill wipes the
//!   replica's store; the restart runs under a [`parc_supervise`]
//!   supervisor (the guard child's failure *is* the kill), and the
//!   conservation check proves no acknowledged page was lost: every
//!   acked page stays readable from a surviving owner's store.
//!
//! Determinism: routing, fault decisions, breaker transitions, health
//! verdicts and the latency model are pure functions of the seeds and
//! the deterministic per-tick request order. Worker-pool size shapes
//! wall-clock only, so [`ClusterReport`]s compare equal with `==`
//! across pool sizes and reruns.

use std::collections::{BTreeSet, HashMap};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use faultsim::{Breaker, Fault, FaultInjector, FaultStorm, RetryPolicy, StormPhase};
use parc_supervise::{ChildError, Supervisor};
use parc_trace::LatencyHistogram;
use parc_util::rng::SplitMix64;
use partask::TaskRuntime;

use crate::server::{ServerConfig, ShedReason, SimServer};

/// A seeded consistent-hash ring of virtual nodes.
///
/// Each replica owns `vnodes` points on a 64-bit ring; a page is
/// assigned to the first `r` *distinct* replicas clockwise from its
/// hash. Removing a replica removes only its points, so pages whose
/// owners survive keep their assignment — the minimal-remapping
/// property that makes ejection cheap.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(position, replica)`, sorted by position.
    points: Vec<(u64, usize)>,
    replicas: usize,
    seed: u64,
}

impl HashRing {
    /// Build a ring of `replicas × vnodes` points from `seed`.
    ///
    /// # Panics
    /// If `replicas` or `vnodes` is zero.
    #[must_use]
    pub fn new(seed: u64, replicas: usize, vnodes: usize) -> Self {
        assert!(replicas > 0, "a ring needs at least one replica");
        assert!(vnodes > 0, "a ring needs at least one vnode per replica");
        let mut points = Vec::with_capacity(replicas * vnodes);
        for replica in 0..replicas {
            for v in 0..vnodes {
                let key = ((replica as u64) << 32) | v as u64;
                points.push((SplitMix64::mix(seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15)), replica));
            }
        }
        // Sort by (position, replica): ties (astronomically unlikely)
        // break deterministically.
        points.sort_unstable();
        Self { points, replicas, seed }
    }

    /// Number of replicas the ring was built for.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    fn page_point(&self, page: usize) -> u64 {
        SplitMix64::mix(self.seed ^ (page as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93))
    }

    /// The first `r` distinct replicas clockwise from `page`'s hash,
    /// considering only replicas marked eligible (`None` = all).
    fn owners_inner(&self, page: usize, r: usize, eligible: Option<&[bool]>) -> Vec<usize> {
        let target = self.page_point(page);
        let start = self.points.partition_point(|&(pos, _)| pos < target);
        let mut owners = Vec::with_capacity(r);
        for i in 0..self.points.len() {
            let (_, replica) = self.points[(start + i) % self.points.len()];
            if let Some(mask) = eligible {
                if !mask[replica] {
                    continue;
                }
            }
            if !owners.contains(&replica) {
                owners.push(replica);
                if owners.len() == r {
                    break;
                }
            }
        }
        owners
    }

    /// The `r` distinct owner replicas of `page`, primary first.
    #[must_use]
    pub fn owners(&self, page: usize, r: usize) -> Vec<usize> {
        self.owners_inner(page, r, None)
    }

    /// The owners of `page` among replicas marked `true` in
    /// `eligible` — how the balancer routes around ejected or dead
    /// replicas without rebuilding the ring.
    ///
    /// # Panics
    /// If `eligible.len()` differs from the ring's replica count.
    #[must_use]
    pub fn owners_among(&self, page: usize, r: usize, eligible: &[bool]) -> Vec<usize> {
        assert_eq!(eligible.len(), self.replicas, "eligibility mask size mismatch");
        self.owners_inner(page, r, Some(eligible))
    }

    /// The primary owner of `page` (all replicas eligible).
    #[must_use]
    pub fn primary(&self, page: usize) -> usize {
        self.owners_inner(page, 1, None)[0]
    }
}

/// Knobs of the sharded tier. Everything that shapes *outcomes* is
/// part of the determinism contract; worker-pool size is not a field
/// here precisely because it must not matter.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of replicas (N).
    pub replicas: usize,
    /// Copies of every page (R ≤ N). R ≥ 2 is what makes a single
    /// kill survivable.
    pub replication: usize,
    /// Virtual nodes per replica on the hash ring.
    pub vnodes: usize,
    /// Bounded queue: requests one replica accepts per tick.
    pub queue_capacity: usize,
    /// Concurrent service slots per replica (latency model width).
    pub service_width: usize,
    /// Global per-tick admission cap (requests routed per tick);
    /// beyond it requests shed with [`ShedReason::Admission`].
    pub tick_admission_cap: usize,
    /// Attempts per request on the serving replica before failover.
    pub max_attempts: u32,
    /// Consecutive failures before a replica's breaker opens.
    pub breaker_threshold: u32,
    /// Denied calls before an open breaker half-opens.
    pub breaker_cooldown: u32,
    /// Hedge when predicted latency exceeds this quantile of observed
    /// latencies (e.g. 0.95).
    pub hedge_quantile: f64,
    /// Observed samples required before hedging activates.
    pub hedge_min_samples: u64,
    /// Health-check cadence in ticks.
    pub health_every: usize,
    /// Window failure ratio that ejects a replica.
    pub unhealthy_ratio: f64,
    /// Minimum window samples before a health verdict.
    pub min_health_samples: u64,
    /// Ticks an ejected replica sits out before readmission.
    pub eject_ticks: usize,
    /// Simulated milliseconds per traffic tick.
    pub tick_ms: f64,
    /// Root seed for the ring and per-replica fault streams.
    pub seed: u64,
    /// Template for every replica's server. The seed is shared so all
    /// replicas serve identical page content (replicas are copies,
    /// not shards of *content*).
    pub server: ServerConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            replicas: 3,
            replication: 2,
            vnodes: 128,
            queue_capacity: 32,
            service_width: 4,
            tick_admission_cap: usize::MAX,
            max_attempts: 3,
            breaker_threshold: 4,
            breaker_cooldown: 6,
            hedge_quantile: 0.95,
            hedge_min_samples: 64,
            health_every: 4,
            unhealthy_ratio: 0.5,
            min_health_samples: 8,
            eject_ticks: 8,
            tick_ms: 100.0,
            seed: 0xC1_0AD,
            server: ServerConfig { time_scale: 5e-7, ..ServerConfig::default() },
        }
    }
}

/// A mid-storm replica outage script: kill at one tick, restart
/// (supervised) at a later tick.
#[derive(Clone, Copy, Debug)]
pub struct OutageScript {
    /// The replica to kill.
    pub replica: usize,
    /// Tick before which the kill happens.
    pub kill_tick: usize,
    /// Tick before which the supervised restart happens.
    pub restart_tick: usize,
}

/// One replica: a server, its R-way replicated page store, a breaker,
/// and health state.
struct Replica {
    server: Arc<SimServer>,
    injector: FaultInjector,
    store: HashMap<usize, f64>,
    breaker: Breaker,
    alive: bool,
    ejected_until: Option<usize>,
    window_requests: u64,
    window_failures: u64,
    served: u64,
}

/// Deterministic accounting of one storm-length cluster run. Contains
/// no wall-clock fields: equal-seeded runs compare equal with `==`
/// regardless of worker count or scheduling.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterReport {
    /// Traffic ticks walked.
    pub ticks: usize,
    /// Replica count (N).
    pub replicas: usize,
    /// Replication factor (R).
    pub replication: usize,
    /// Simulated milliseconds per tick.
    pub tick_ms: f64,
    /// Requests offered by the load schedule.
    pub issued: u64,
    /// Requests acknowledged to the client (exactly once each).
    pub acked: u64,
    /// Acks served by the replica chosen at routing time.
    pub served_primary: u64,
    /// Acks won by the hedged backup copy.
    pub served_hedge: u64,
    /// Acks recovered by post-failure failover to another owner.
    pub served_failover: u64,
    /// Requests answered by nobody (true losses, never acked).
    pub failed: u64,
    /// Shed before routing by the global admission cap.
    pub shed_admission: u64,
    /// Shed because predicted latency blew the phase deadline budget.
    pub shed_deadline: u64,
    /// Shed because every candidate's breaker was open.
    pub shed_breaker: u64,
    /// Shed because every candidate's bounded queue was full.
    pub shed_queue_full: u64,
    /// Hedged backup copies fired.
    pub hedges_fired: u64,
    /// Hedges where both copies succeeded (loser deduplicated).
    pub hedge_redundant: u64,
    /// Hedges whose backup failed (no win, no dedup needed).
    pub hedge_wasted: u64,
    /// Server attempts across all requests (incl. retries/failover).
    pub attempts_total: u64,
    /// Faults injected across all attempts.
    pub faults_seen: u64,
    /// Replicas ejected by health checks.
    pub ejections: u32,
    /// Replicas readmitted after ejection.
    pub readmissions: u32,
    /// Replicas killed by the outage script.
    pub kills: u32,
    /// Replicas restarted (supervised).
    pub restarts: u32,
    /// Restarts the supervision tree performed (one per kill).
    pub supervision_restarts: u32,
    /// Escalations in the supervision tree (must be zero).
    pub supervision_escalations: u32,
    /// Conservation violations reported by the supervision tree.
    pub supervision_violations: Vec<String>,
    /// Canonical health/outage event log, in tick order.
    pub events: Vec<String>,
    /// Latency of every acked request (modelled milliseconds).
    pub latency: LatencyHistogram,
    /// Total modelled busy milliseconds (max per replica per tick,
    /// summed over ticks).
    pub sim_ms_total: f64,
    /// Distinct pages acknowledged at least once.
    pub acked_pages: usize,
    /// Acked pages readable from their primary owner's store at the
    /// end of the run.
    pub durable_primary: usize,
    /// Acked pages readable only from a non-primary owner — the
    /// "re-served from replica" set that proves replication carried
    /// the kill.
    pub reserved_from_replica: usize,
    /// Acked pages readable from no surviving store (must be zero).
    pub lost_acked: usize,
    /// Acks served per replica.
    pub per_replica_served: Vec<u64>,
}

impl ClusterReport {
    /// Total requests shed, across all reasons.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed_admission + self.shed_deadline + self.shed_breaker + self.shed_queue_full
    }

    /// Offered load in requests per simulated second.
    #[must_use]
    pub fn offered_rps(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let secs = self.ticks as f64 * self.tick_ms / 1e3;
        if secs <= 0.0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let issued = self.issued as f64;
        issued / secs
    }

    /// Goodput in acknowledged requests per simulated second.
    #[must_use]
    pub fn acked_rps(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let secs = self.ticks as f64 * self.tick_ms / 1e3;
        if secs <= 0.0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let acked = self.acked as f64;
        acked / secs
    }

    /// Check every conservation identity of the run. Returns the list
    /// of violated identities (empty = conserved):
    ///
    /// * every issued request is accounted exactly once:
    ///   `issued == acked + shed + failed`;
    /// * every ack has exactly one server: `acked == served_primary +
    ///   served_hedge + served_failover` and the per-replica served
    ///   counts sum to `acked` (hedge dedup: a redundant winner is
    ///   counted once);
    /// * every hedge is accounted: `hedges_fired == served_hedge +
    ///   hedge_redundant + hedge_wasted`;
    /// * one latency sample per ack;
    /// * **zero acknowledged loss**: every acked page is still
    ///   readable from a surviving owner's store;
    /// * the supervision tree is conserved and never escalated.
    #[must_use]
    pub fn violations(&self) -> Vec<String> {
        let mut bad = Vec::new();
        let mut check = |ok: bool, msg: String| {
            if !ok {
                bad.push(msg);
            }
        };
        check(
            self.issued == self.acked + self.shed_total() + self.failed,
            format!(
                "request conservation: issued {} != acked {} + shed {} + failed {}",
                self.issued,
                self.acked,
                self.shed_total(),
                self.failed
            ),
        );
        check(
            self.acked == self.served_primary + self.served_hedge + self.served_failover,
            format!(
                "ack attribution: acked {} != primary {} + hedge {} + failover {}",
                self.acked, self.served_primary, self.served_hedge, self.served_failover
            ),
        );
        check(
            self.per_replica_served.iter().sum::<u64>() == self.acked,
            format!(
                "per-replica serve counts sum {} != acked {} (hedge double-count?)",
                self.per_replica_served.iter().sum::<u64>(),
                self.acked
            ),
        );
        check(
            self.hedges_fired == self.served_hedge + self.hedge_redundant + self.hedge_wasted,
            format!(
                "hedge accounting: fired {} != won {} + redundant {} + wasted {}",
                self.hedges_fired, self.served_hedge, self.hedge_redundant, self.hedge_wasted
            ),
        );
        check(
            self.latency.total() == self.acked,
            format!(
                "latency samples {} != acked {} (double-recorded hedge?)",
                self.latency.total(),
                self.acked
            ),
        );
        check(
            self.acked_pages == self.durable_primary + self.reserved_from_replica + self.lost_acked,
            format!(
                "durability partition: {} acked pages != {} primary + {} replica + {} lost",
                self.acked_pages, self.durable_primary, self.reserved_from_replica, self.lost_acked
            ),
        );
        check(
            self.lost_acked == 0,
            format!("{} acknowledged page(s) lost after replica kill", self.lost_acked),
        );
        check(self.kills == self.restarts, {
            format!("kills {} != restarts {}", self.kills, self.restarts)
        });
        check(
            self.supervision_restarts == self.kills,
            format!(
                "supervision restarts {} != kills {}",
                self.supervision_restarts, self.kills
            ),
        );
        check(
            self.supervision_escalations == 0,
            format!("supervision escalated {} time(s)", self.supervision_escalations),
        );
        for v in &self.supervision_violations {
            bad.push(format!("supervision: {v}"));
        }
        bad
    }

    /// Canonical multi-line fingerprint: every deterministic field,
    /// bit-identical across same-seed reruns and pool sizes. Used by
    /// the E-LOAD driver's determinism gate.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cluster n={} r={} ticks={} tick_ms={}\n",
            self.replicas, self.replication, self.ticks, self.tick_ms
        ));
        out.push_str(&format!(
            "issued={} acked={} primary={} hedge={} failover={} failed={}\n",
            self.issued,
            self.acked,
            self.served_primary,
            self.served_hedge,
            self.served_failover,
            self.failed
        ));
        out.push_str(&format!(
            "shed admission={} deadline={} breaker={} queue_full={}\n",
            self.shed_admission, self.shed_deadline, self.shed_breaker, self.shed_queue_full
        ));
        out.push_str(&format!(
            "hedges fired={} redundant={} wasted={}\n",
            self.hedges_fired, self.hedge_redundant, self.hedge_wasted
        ));
        out.push_str(&format!(
            "attempts={} faults={} sim_ms={:.6}\n",
            self.attempts_total, self.faults_seen, self.sim_ms_total
        ));
        out.push_str(&format!(
            "health ejections={} readmissions={} kills={} restarts={} sup_restarts={} sup_escal={}\n",
            self.ejections,
            self.readmissions,
            self.kills,
            self.restarts,
            self.supervision_restarts,
            self.supervision_escalations
        ));
        out.push_str(&format!(
            "durability pages={} primary={} replica={} lost={}\n",
            self.acked_pages, self.durable_primary, self.reserved_from_replica, self.lost_acked
        ));
        out.push_str(&format!(
            "latency {} p50={:.6} p99={:.6} p999={:.6} mean={:.6}\n",
            self.latency.total(),
            self.latency.p50(),
            self.latency.p99(),
            self.latency.p999(),
            self.latency.mean()
        ));
        out.push_str(&format!("served_per_replica={:?}\n", self.per_replica_served));
        out.push_str("events:\n");
        for e in &self.events {
            out.push_str("  ");
            out.push_str(e);
            out.push('\n');
        }
        out
    }

    /// One line for storm tables.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "acked {}/{} (p {} h {} f {}) shed {} failed {} p99 {:.0}ms",
            self.acked,
            self.issued,
            self.served_primary,
            self.served_hedge,
            self.served_failover,
            self.shed_total(),
            self.failed,
            self.latency.p99()
        )
    }
}

/// One queued unit of work on a replica for one tick.
#[derive(Clone, Copy)]
struct QueueEntry {
    /// Index of the request within the tick.
    req: usize,
    /// The page requested.
    page: usize,
    /// Is this the hedged backup copy?
    hedge: bool,
}

/// What one replica's execution produced for one queue entry.
#[derive(Clone, Copy)]
struct ExecResult {
    req: usize,
    hedge: bool,
    /// KB served on success.
    kb: Option<f64>,
    /// Modelled completion latency within the tick (queue wait +
    /// attempt costs), in simulated ms.
    latency_ms: f64,
    attempts: u32,
    faults: u64,
}

/// How one tick-request was routed.
enum Route {
    /// Enqueued on a replica (plus optionally a hedge on another).
    Queued {
        /// True when the serving replica was not the first live owner.
        diverted: bool,
        hedge_on: Option<usize>,
    },
    Shed(ShedReason),
    /// No live owner at all (total outage for this page).
    NoOwner,
}

/// The sharded web tier: N replicas behind a consistent-hash load
/// balancer. See the module docs for the full behaviour catalogue.
pub struct Cluster {
    cfg: ClusterConfig,
    ring: HashRing,
    replicas: Vec<Replica>,
}

impl Cluster {
    /// Build a cluster of `cfg.replicas` identical-content replicas.
    ///
    /// # Panics
    /// If `replication` is zero or exceeds the replica count.
    #[must_use]
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(
            cfg.replication >= 1 && cfg.replication <= cfg.replicas,
            "replication factor must be in [1, replicas]"
        );
        let ring = HashRing::new(cfg.seed, cfg.replicas, cfg.vnodes);
        let replicas = (0..cfg.replicas)
            .map(|i| Replica {
                server: Arc::new(SimServer::new(cfg.server.clone())),
                injector: FaultInjector::new(faultsim::FaultPlan::reliable(
                    SplitMix64::mix(cfg.seed ^ i as u64),
                )),
                store: HashMap::new(),
                breaker: Breaker::new(cfg.breaker_threshold, cfg.breaker_cooldown),
                alive: true,
                ejected_until: None,
                window_requests: 0,
                window_failures: 0,
                served: 0,
            })
            .collect();
        Self { cfg, ring, replicas }
    }

    /// The ring (exposed for partitioning tests and tooling).
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Give every replica the fault stream of `phase`, derived from
    /// the phase seed mixed per replica so replicas fail
    /// independently but reproducibly.
    fn set_phase(&mut self, phase: &StormPhase) {
        for (i, rep) in self.replicas.iter_mut().enumerate() {
            let mut plan = phase.plan.clone();
            plan.seed = SplitMix64::mix(plan.seed ^ (0xBEEF ^ (i as u64) << 8));
            rep.injector = FaultInjector::new(plan);
        }
    }

    /// Kill `replica`: mark it dead and wipe its store (data loss the
    /// replication factor must absorb).
    fn kill(&mut self, replica: usize) {
        let rep = &mut self.replicas[replica];
        rep.alive = false;
        rep.store.clear();
        rep.ejected_until = None;
        rep.window_requests = 0;
        rep.window_failures = 0;
    }

    /// Restart `replica`: alive again with an empty store, a fresh
    /// breaker and a clean health window.
    fn restart(&mut self, replica: usize) {
        let cfg_threshold = self.cfg.breaker_threshold;
        let cfg_cooldown = self.cfg.breaker_cooldown;
        let rep = &mut self.replicas[replica];
        rep.alive = true;
        rep.store.clear();
        rep.breaker = Breaker::new(cfg_threshold, cfg_cooldown);
        rep.window_requests = 0;
        rep.window_failures = 0;
    }

    /// Modelled cost of serving `page` on a replica during `phase`.
    fn service_ms(&self, page: usize, phase: &StormPhase) -> f64 {
        self.replicas[0].server.model_duration_ms(page, self.cfg.service_width)
            * phase.latency_factor
    }

    /// Run the whole `schedule` (one `Vec<page>` per tick) against
    /// the storm, with an optional supervised mid-storm replica
    /// outage. Deterministic: the report is a pure function of the
    /// seeds and the schedule.
    ///
    /// # Panics
    /// If the outage script is out of range or targets a dead
    /// replica, or if the supervision guard thread panics.
    #[allow(clippy::too_many_lines)]
    pub fn run_storm(
        &mut self,
        rt: &TaskRuntime,
        schedule: &[Vec<usize>],
        storm: &FaultStorm,
        outage: Option<OutageScript>,
    ) -> ClusterReport {
        if let Some(o) = outage {
            assert!(o.replica < self.replicas.len(), "outage replica out of range");
            assert!(o.kill_tick < o.restart_tick, "kill must precede restart");
            assert!(o.restart_tick < schedule.len(), "restart must land inside the run");
        }
        let mut guard = outage.map(OutageGuard::spawn);

        let ticks = schedule.len();
        let mut acc = RunAccounting::new(&self.cfg, ticks, self.replicas.len());
        let mut last_phase_label: Option<&'static str> = None;

        for (tick, requests) in schedule.iter().enumerate() {
            let phase = storm.phase_at(tick, ticks);
            if last_phase_label != Some(phase.label) {
                self.set_phase(phase);
                acc.events.push(format!("tick {tick:03} phase {}", phase.label));
                last_phase_label = Some(phase.label);
            }

            // Scripted outage: kill/supervised-restart between ticks.
            if let Some(g) = guard.as_mut() {
                if tick == g.script.kill_tick {
                    self.kill(g.script.replica);
                    acc.kills += 1;
                    acc.events.push(format!("tick {tick:03} replica {} killed", g.script.replica));
                    g.signal_kill();
                }
                if tick == g.script.restart_tick {
                    // Block until the supervisor has restarted the
                    // guard child — the replica's readmission is gated
                    // on its supervised incarnation being alive.
                    let incarnation = g.await_restart();
                    self.restart(g.script.replica);
                    acc.restarts += 1;
                    acc.events.push(format!(
                        "tick {tick:03} replica {} restarted (supervised incarnation {incarnation})",
                        g.script.replica
                    ));
                }
            }

            self.health_check(tick, &mut acc);
            self.run_tick(rt, tick, requests, phase, &mut acc);
        }

        // Durability audit: every acked page must still be readable
        // from a surviving owner's store.
        let mut durable_primary = 0usize;
        let mut reserved_from_replica = 0usize;
        let mut lost = 0usize;
        for &page in &acc.acked_pages {
            let owners = self.ring.owners(page, self.cfg.replication);
            let holder = owners
                .iter()
                .position(|&o| self.replicas[o].alive && self.replicas[o].store.contains_key(&page));
            match holder {
                Some(0) => durable_primary += 1,
                Some(_) => reserved_from_replica += 1,
                None => lost += 1,
            }
        }

        let (sup_restarts, sup_escalations, sup_violations) = match guard.take() {
            Some(g) => {
                let report = g.finish();
                (
                    report.restarts_total,
                    report.escalations,
                    report.conservation_violations(),
                )
            }
            None => (0, 0, Vec::new()),
        };

        ClusterReport {
            ticks,
            replicas: self.replicas.len(),
            replication: self.cfg.replication,
            tick_ms: self.cfg.tick_ms,
            issued: acc.issued,
            acked: acc.acked,
            served_primary: acc.served_primary,
            served_hedge: acc.served_hedge,
            served_failover: acc.served_failover,
            failed: acc.failed,
            shed_admission: acc.shed[0],
            shed_deadline: acc.shed[1],
            shed_breaker: acc.shed[2],
            shed_queue_full: acc.shed[3],
            hedges_fired: acc.hedges_fired,
            hedge_redundant: acc.hedge_redundant,
            hedge_wasted: acc.hedge_wasted,
            attempts_total: acc.attempts_total,
            faults_seen: acc.faults_seen,
            ejections: acc.ejections,
            readmissions: acc.readmissions,
            kills: acc.kills,
            restarts: acc.restarts,
            supervision_restarts: sup_restarts,
            supervision_escalations: sup_escalations,
            supervision_violations: sup_violations,
            events: acc.events,
            latency: acc.latency,
            sim_ms_total: acc.sim_ms_total,
            acked_pages: acc.acked_pages.len(),
            durable_primary,
            reserved_from_replica,
            lost_acked: lost,
            per_replica_served: self.replicas.iter().map(|r| r.served).collect(),
        }
    }

    /// Health check at tick boundaries: eject unhealthy live
    /// replicas, readmit ejected ones whose sentence elapsed.
    fn health_check(&mut self, tick: usize, acc: &mut RunAccounting) {
        // Readmissions happen on any tick (the sentence is absolute).
        for (i, rep) in self.replicas.iter_mut().enumerate() {
            if let Some(until) = rep.ejected_until {
                if tick >= until && rep.alive {
                    rep.ejected_until = None;
                    rep.window_requests = 0;
                    rep.window_failures = 0;
                    acc.readmissions += 1;
                    acc.events.push(format!("tick {tick:03} replica {i} readmitted"));
                }
            }
        }
        if self.cfg.health_every == 0 || !tick.is_multiple_of(self.cfg.health_every) {
            return;
        }
        let eject_ticks = self.cfg.eject_ticks;
        for (i, rep) in self.replicas.iter_mut().enumerate() {
            if !rep.alive || rep.ejected_until.is_some() {
                continue;
            }
            if rep.window_requests < self.cfg.min_health_samples {
                continue;
            }
            #[allow(clippy::cast_precision_loss)]
            let ratio = rep.window_failures as f64 / rep.window_requests as f64;
            if ratio >= self.cfg.unhealthy_ratio {
                rep.ejected_until = Some(tick + eject_ticks);
                acc.ejections += 1;
                acc.events.push(format!(
                    "tick {tick:03} replica {i} ejected ({}/{} failed in window)",
                    rep.window_failures, rep.window_requests
                ));
            }
            rep.window_requests = 0;
            rep.window_failures = 0;
        }
    }

    /// Route, execute and collect one tick of requests.
    #[allow(clippy::too_many_lines)]
    fn run_tick(
        &mut self,
        rt: &TaskRuntime,
        tick: usize,
        requests: &[usize],
        phase: &StormPhase,
        acc: &mut RunAccounting,
    ) {
        let n = self.replicas.len();
        acc.issued += requests.len() as u64;

        // The routing table this tick: alive and not ejected.
        let eligible: Vec<bool> = self
            .replicas
            .iter()
            .map(|r| r.alive && r.ejected_until.is_none())
            .collect();

        // Hedge threshold: a seeded quantile of the latencies observed
        // in *previous* ticks (deterministic snapshot at tick start).
        let hedge_threshold = if acc.latency.total() >= self.cfg.hedge_min_samples {
            acc.latency.quantile(self.cfg.hedge_quantile)
        } else {
            f64::INFINITY
        };

        // --- Route (sequential, deterministic request order) -------
        let mut queues: Vec<Vec<QueueEntry>> = vec![Vec::new(); n];
        // Predicted busy ms already enqueued per replica this tick.
        let mut pending_ms: Vec<f64> = vec![0.0; n];
        let mut routes: Vec<Route> = Vec::with_capacity(requests.len());
        let mut admitted = 0usize;
        #[allow(clippy::cast_precision_loss)]
        let width = self.cfg.service_width.max(1) as f64;

        for (req, &page) in requests.iter().enumerate() {
            if admitted >= self.cfg.tick_admission_cap {
                routes.push(Route::Shed(ShedReason::Admission));
                continue;
            }
            let owners = self.ring.owners_among(page, self.cfg.replication, &eligible);
            if owners.is_empty() {
                routes.push(Route::NoOwner);
                continue;
            }
            let service = self.service_ms(page, phase);
            // Candidates whose breaker admits the call, in owner
            // order. `allow()` advances cooldown state; calling it in
            // request order keeps breakers deterministic.
            let open: Vec<usize> = owners
                .iter()
                .copied()
                .filter(|&o| self.replicas[o].breaker.allow())
                .collect();
            if open.is_empty() {
                routes.push(Route::Shed(ShedReason::Breaker));
                continue;
            }
            // First candidate with queue room; queue-full propagates
            // to the next owner, and to the client when all are full.
            let routed = open
                .iter()
                .copied()
                .find(|&o| queues[o].len() < self.cfg.queue_capacity);
            let Some(replica) = routed else {
                routes.push(Route::Shed(ShedReason::QueueFull));
                continue;
            };
            let predicted = pending_ms[replica] / width + service;
            if predicted > phase.shed_budget_ms {
                // Try the least-loaded alternative before giving up.
                let alt = open
                    .iter()
                    .copied()
                    .filter(|&o| o != replica && queues[o].len() < self.cfg.queue_capacity)
                    .min_by(|&a, &b| {
                        pending_ms[a].partial_cmp(&pending_ms[b]).expect("no NaN")
                    });
                let best = alt
                    .map(|o| (o, pending_ms[o] / width + service))
                    .filter(|&(_, p)| p < predicted);
                match best {
                    Some((o, p)) if p <= phase.shed_budget_ms => {
                        queues[o].push(QueueEntry { req, page, hedge: false });
                        pending_ms[o] += service;
                        admitted += 1;
                        routes.push(Route::Queued { diverted: o != owners[0], hedge_on: None });
                        continue;
                    }
                    _ => {
                        routes.push(Route::Shed(ShedReason::Deadline));
                        continue;
                    }
                }
            }
            // Hedge: predicted latency beyond the seeded quantile and
            // a second owner has queue room.
            let hedge_on = if predicted > hedge_threshold {
                open.iter()
                    .copied()
                    .find(|&o| o != replica && queues[o].len() < self.cfg.queue_capacity)
            } else {
                None
            };
            queues[replica].push(QueueEntry { req, page, hedge: false });
            pending_ms[replica] += service;
            if let Some(h) = hedge_on {
                queues[h].push(QueueEntry { req, page, hedge: true });
                pending_ms[h] += service;
                acc.hedges_fired += 1;
            }
            admitted += 1;
            routes.push(Route::Queued { diverted: replica != owners[0], hedge_on });
        }

        // --- Execute (parallel across replicas, sequential within) -
        type ExecInput = (Vec<QueueEntry>, Arc<SimServer>, FaultInjector);
        let exec_inputs: Arc<Vec<ExecInput>> = Arc::new(
            queues
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    (q.clone(), Arc::clone(&self.replicas[i].server), self.replicas[i].injector.clone())
                })
                .collect(),
        );
        let width_slots = self.cfg.service_width.max(1);
        let max_attempts = self.cfg.max_attempts.max(1);
        let latency_factor = phase.latency_factor;
        let multi = rt.spawn_multi(n, {
            let inputs = Arc::clone(&exec_inputs);
            move |replica| {
                let (queue, server, injector) = &inputs[replica];
                execute_queue(queue, server, injector, width_slots, max_attempts, latency_factor)
            }
        });
        let per_replica: Vec<(Vec<ExecResult>, f64)> = multi
            .join_reduce(Vec::new(), |mut v: Vec<(Vec<ExecResult>, f64)>, part| {
                v.push(part);
                v
            })
            .unwrap_or_default();

        // Tick busy time: the slowest replica bounds the tick.
        let tick_busy = per_replica.iter().map(|(_, busy)| *busy).fold(0.0f64, f64::max);
        acc.sim_ms_total += tick_busy;

        // Index execution results by (req, hedge-flag); update breaker
        // and health windows in deterministic replica-then-queue order.
        let mut primary_result: HashMap<usize, (usize, ExecResult)> = HashMap::new();
        let mut hedge_result: HashMap<usize, (usize, ExecResult)> = HashMap::new();
        for (replica, (results, _)) in per_replica.iter().enumerate() {
            let rep = &mut self.replicas[replica];
            for r in results {
                acc.attempts_total += u64::from(r.attempts);
                acc.faults_seen += r.faults;
                rep.window_requests += 1;
                if r.kb.is_some() {
                    rep.breaker.record_success();
                } else {
                    rep.breaker.record_failure();
                    rep.window_failures += 1;
                }
                if r.hedge {
                    hedge_result.insert(r.req, (replica, *r));
                } else {
                    primary_result.insert(r.req, (replica, *r));
                }
            }
        }

        // --- Collect (sequential, deterministic request order) -----
        for (req, &page) in requests.iter().enumerate() {
            match &routes[req] {
                Route::Shed(reason) => {
                    let slot = match reason {
                        ShedReason::Admission => 0,
                        ShedReason::Deadline => 1,
                        ShedReason::Breaker => 2,
                        ShedReason::QueueFull => 3,
                    };
                    acc.shed[slot] += 1;
                }
                Route::NoOwner => acc.failed += 1,
                Route::Queued { diverted, hedge_on, .. } => {
                    let primary = primary_result.get(&req).copied();
                    let hedge = hedge_on.and_then(|_| hedge_result.get(&req).copied());
                    let (p_ok, h_ok) = (
                        primary.filter(|(_, r)| r.kb.is_some()),
                        hedge.filter(|(_, r)| r.kb.is_some()),
                    );
                    let winner = match (p_ok, h_ok) {
                        (Some(p), Some(h)) => {
                            acc.hedge_redundant += 1;
                            // First success wins: the lower modelled
                            // completion time; ties prefer primary.
                            if h.1.latency_ms < p.1.latency_ms {
                                acc.served_hedge += 1;
                                // The redundant hedge already counted;
                                // reclassify as a win, not redundant.
                                acc.hedge_redundant -= 1;
                                acc.hedge_primary_lost += 1;
                                Some(h)
                            } else {
                                Some(p)
                            }
                        }
                        (Some(p), None) => {
                            if hedge_on.is_some() {
                                acc.hedge_wasted += 1;
                            }
                            Some(p)
                        }
                        (None, Some(h)) => {
                            acc.served_hedge += 1;
                            Some(h)
                        }
                        (None, None) => {
                            if hedge_on.is_some() {
                                acc.hedge_wasted += 1;
                            }
                            None
                        }
                    };
                    match winner {
                        Some((replica, result)) => {
                            if result.hedge {
                                // attributed above as served_hedge
                            } else if *diverted {
                                acc.served_failover += 1;
                            } else {
                                acc.served_primary += 1;
                            }
                            self.ack(page, replica, result.latency_ms, acc);
                        }
                        None => {
                            // Failover pass: remaining live owners in
                            // ring order, one shot each.
                            let tried: Vec<usize> = primary
                                .iter()
                                .map(|(rep, _)| *rep)
                                .chain(hedge.iter().map(|(rep, _)| *rep))
                                .collect();
                            let carried = primary.map_or(0.0, |(_, r)| r.latency_ms);
                            match self.failover(page, &eligible, &tried, carried, phase, acc) {
                                Some((replica, latency)) => {
                                    acc.served_failover += 1;
                                    self.ack(page, replica, latency, acc);
                                }
                                None => acc.failed += 1,
                            }
                        }
                    }
                }
            }
        }
        let _ = tick;
    }

    /// Acknowledge `page`: record the latency sample, credit the
    /// serving replica, and replicate the content to every live
    /// owner's store (write-through, R copies).
    fn ack(&mut self, page: usize, replica: usize, latency_ms: f64, acc: &mut RunAccounting) {
        acc.acked += 1;
        acc.latency.record(latency_ms.max(0.01));
        acc.acked_pages.insert(page);
        self.replicas[replica].served += 1;
        let kb = self.replicas[replica].server.page(page).size_kb;
        for owner in self.ring.owners(page, self.cfg.replication) {
            if self.replicas[owner].alive {
                self.replicas[owner].store.insert(page, kb);
            }
        }
    }

    /// Post-failure failover: one attempt-sequence on each remaining
    /// live owner, in ring order. Returns the serving replica and the
    /// total modelled latency on success.
    fn failover(
        &mut self,
        page: usize,
        eligible: &[bool],
        tried: &[usize],
        carried_latency_ms: f64,
        phase: &StormPhase,
        acc: &mut RunAccounting,
    ) -> Option<(usize, f64)> {
        let owners = self.ring.owners_among(page, self.cfg.replication, eligible);
        let mut latency = carried_latency_ms;
        for owner in owners {
            if tried.contains(&owner) {
                continue;
            }
            if !self.replicas[owner].breaker.allow() {
                continue;
            }
            let queue = [QueueEntry { req: 0, page, hedge: false }];
            let (results, _busy) = execute_queue(
                &queue,
                &self.replicas[owner].server,
                &self.replicas[owner].injector,
                self.cfg.service_width.max(1),
                self.cfg.max_attempts.max(1),
                phase.latency_factor,
            );
            let r = results[0];
            acc.attempts_total += u64::from(r.attempts);
            acc.faults_seen += r.faults;
            let rep = &mut self.replicas[owner];
            rep.window_requests += 1;
            latency += r.latency_ms;
            if r.kb.is_some() {
                rep.breaker.record_success();
                return Some((owner, latency));
            }
            rep.breaker.record_failure();
            rep.window_failures += 1;
        }
        None
    }
}

/// Execute one replica's tick queue sequentially: a `width`-slot
/// deterministic queueing model for latency, the replica's seeded
/// fault stream for outcomes, and a real (scaled) server request per
/// successful attempt so the simulated tier does actual work.
/// Returns the per-entry results and the replica's busy ms this tick.
fn execute_queue(
    queue: &[QueueEntry],
    server: &Arc<SimServer>,
    injector: &FaultInjector,
    width: usize,
    max_attempts: u32,
    latency_factor: f64,
) -> (Vec<ExecResult>, f64) {
    let mut slots = vec![0.0f64; width];
    let mut out = Vec::with_capacity(queue.len());
    for entry in queue {
        // Earliest-free slot; ties resolve to the lowest index.
        let slot = (0..width)
            .min_by(|&a, &b| slots[a].partial_cmp(&slots[b]).expect("no NaN"))
            .expect("width >= 1");
        let start = slots[slot];
        let meta = server.page(entry.page);
        let service = server.model_duration_ms(entry.page, width) * latency_factor;
        let mut cost = 0.0f64;
        let mut kb = None;
        let mut attempts = 0u32;
        let mut faults = 0u64;
        for attempt in 1..=max_attempts {
            attempts = attempt;
            match injector.decide(entry.page as u64, attempt) {
                Fault::None => {
                    cost += service;
                    kb = Some(server.request(entry.page));
                    break;
                }
                Fault::LatencySpike { extra_ms } => {
                    cost += service + extra_ms;
                    kb = Some(server.request(entry.page));
                    break;
                }
                Fault::TransientError | Fault::Panic => {
                    // Connection died early: the round trip is burnt.
                    faults += 1;
                    cost += meta.rtt_ms * latency_factor;
                }
                Fault::Timeout => {
                    // Waited out the whole transfer before giving up.
                    faults += 1;
                    cost += service;
                }
            }
        }
        let end = start + cost;
        slots[slot] = end;
        out.push(ExecResult {
            req: entry.req,
            hedge: entry.hedge,
            kb,
            latency_ms: end,
            attempts,
            faults,
        });
    }
    let busy = slots.iter().copied().fold(0.0f64, f64::max);
    (out, busy)
}

/// Mutable run-wide accounting, local to one `run_storm` call.
struct RunAccounting {
    issued: u64,
    acked: u64,
    served_primary: u64,
    served_hedge: u64,
    served_failover: u64,
    failed: u64,
    /// Indexed by [`ShedReason::all`] order.
    shed: [u64; 4],
    hedges_fired: u64,
    hedge_redundant: u64,
    hedge_wasted: u64,
    /// Hedge races the primary lost (informational; the win is
    /// already counted in `served_hedge`).
    hedge_primary_lost: u64,
    attempts_total: u64,
    faults_seen: u64,
    ejections: u32,
    readmissions: u32,
    kills: u32,
    restarts: u32,
    events: Vec<String>,
    latency: LatencyHistogram,
    sim_ms_total: f64,
    acked_pages: BTreeSet<usize>,
}

impl RunAccounting {
    fn new(cfg: &ClusterConfig, _ticks: usize, _replicas: usize) -> Self {
        let _ = cfg;
        Self {
            issued: 0,
            acked: 0,
            served_primary: 0,
            served_hedge: 0,
            served_failover: 0,
            failed: 0,
            shed: [0; 4],
            hedges_fired: 0,
            hedge_redundant: 0,
            hedge_wasted: 0,
            hedge_primary_lost: 0,
            attempts_total: 0,
            faults_seen: 0,
            ejections: 0,
            readmissions: 0,
            kills: 0,
            restarts: 0,
            events: Vec::new(),
            latency: LatencyHistogram::new(0.1, 1e6, 36),
            sim_ms_total: 0.0,
            acked_pages: BTreeSet::new(),
        }
    }
}

/// Commands the storm loop sends the supervised replica guard.
enum GuardCmd {
    /// The replica died: the current incarnation must fail.
    Kill,
    /// The run is over: the current incarnation completes.
    Done,
}

/// The supervised outage: a `parc-supervise` supervisor owns a guard
/// child standing for the replica's process. The scripted kill fails
/// the child; the supervisor's restart (budgeted, backed off) gates
/// the replica's readmission — so "supervised restart" is literal.
struct OutageGuard {
    script: OutageScript,
    cmd_tx: mpsc::Sender<GuardCmd>,
    ready_rx: mpsc::Receiver<u32>,
    join: Option<thread::JoinHandle<parc_supervise::SupervisionReport>>,
}

impl OutageGuard {
    fn spawn(script: OutageScript) -> Self {
        let (cmd_tx, cmd_rx) = mpsc::channel::<GuardCmd>();
        let (ready_tx, ready_rx) = mpsc::channel::<u32>();
        let cmd_rx = Arc::new(parking_lot::Mutex::new(cmd_rx));
        let join = thread::Builder::new()
            .name("cluster-outage-supervisor".into())
            .spawn(move || {
                Supervisor::builder("cluster-outage")
                    .restart_policy(
                        RetryPolicy::fixed(Duration::from_millis(1)).with_max_attempts(3),
                    )
                    .backoff_time_scale(1e-3)
                    .child("replica-guard", move |ctx| {
                        // Announce this incarnation, then wait for the
                        // storm loop's verdict.
                        let _ = ready_tx.send(ctx.incarnation);
                        match cmd_rx.lock().recv() {
                            Ok(GuardCmd::Kill) => {
                                Err(ChildError::Failed("replica killed by storm".into()))
                            }
                            Ok(GuardCmd::Done) | Err(_) => Ok(()),
                        }
                    })
                    .run()
            })
            .expect("spawn outage supervisor thread");
        let guard = Self { script, cmd_tx, ready_rx, join: Some(join) };
        // Consume incarnation 1's ready signal so `await_restart`
        // blocks on the *restarted* incarnation.
        let first = guard.ready_rx.recv().expect("guard child must start");
        assert_eq!(first, 1, "first incarnation must announce itself");
        guard
    }

    fn signal_kill(&self) {
        self.cmd_tx.send(GuardCmd::Kill).expect("guard alive at kill");
    }

    /// Block until the supervisor has restarted the guard child;
    /// returns the new incarnation number.
    fn await_restart(&self) -> u32 {
        self.ready_rx.recv().expect("supervisor must restart the guard")
    }

    fn finish(mut self) -> parc_supervise::SupervisionReport {
        let _ = self.cmd_tx.send(GuardCmd::Done);
        self.join
            .take()
            .expect("finish called once")
            .join()
            .expect("outage supervisor thread must not panic")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ClusterConfig {
        ClusterConfig {
            server: ServerConfig { pages: 40, time_scale: 1e-7, ..ServerConfig::default() },
            ..ClusterConfig::default()
        }
    }

    fn steady_schedule(ticks: usize, per_tick: usize, pages: usize, seed: u64) -> Vec<Vec<usize>> {
        use parc_util::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..ticks)
            .map(|_| (0..per_tick).map(|_| rng.gen_range_usize(0..pages)).collect())
            .collect()
    }

    #[test]
    fn ring_owners_are_distinct_and_stable() {
        let ring = HashRing::new(7, 4, 64);
        for page in 0..200 {
            let owners = ring.owners(page, 3);
            assert_eq!(owners.len(), 3);
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "owners must be distinct replicas");
            assert_eq!(owners, HashRing::new(7, 4, 64).owners(page, 3), "seeded = stable");
            assert_eq!(owners[0], ring.primary(page));
        }
    }

    #[test]
    fn ring_ejection_remaps_only_the_ejected_replicas_pages() {
        let ring = HashRing::new(42, 4, 64);
        let all = vec![true; 4];
        let mut without2 = all.clone();
        without2[2] = false;
        for page in 0..300 {
            let before = ring.owners_among(page, 1, &all)[0];
            let after = ring.owners_among(page, 1, &without2)[0];
            if before == 2 {
                assert_ne!(after, 2, "ejected replica must lose its pages");
            } else {
                assert_eq!(after, before, "page {page}: surviving owner must keep its pages");
            }
        }
    }

    #[test]
    fn calm_run_acks_everything_and_conserves() {
        let rt = TaskRuntime::builder().workers(4).build();
        let mut cluster = Cluster::new(quick_cfg());
        let schedule = steady_schedule(12, 16, 40, 0xA1);
        let storm = FaultStorm::burst(0x5EED);
        // Calm phase only: slice the schedule into the calm third.
        let calm_only: Vec<Vec<usize>> = schedule[..4].to_vec();
        let report = cluster.run_storm(&rt, &calm_only, &storm, None);
        assert_eq!(report.violations(), Vec::<String>::new());
        assert_eq!(report.issued, 64);
        assert!(report.acked > 0);
        rt.shutdown();
    }

    #[test]
    fn storm_run_is_deterministic_across_worker_counts() {
        let storm = FaultStorm::brownout(0xABCD);
        let schedule = steady_schedule(20, 12, 40, 0xF00);
        let mut reports = Vec::new();
        for workers in [2usize, 6] {
            let rt = TaskRuntime::builder().workers(workers).build();
            let mut cluster = Cluster::new(quick_cfg());
            reports.push(cluster.run_storm(&rt, &schedule, &storm, None));
            rt.shutdown();
        }
        assert_eq!(reports[0], reports[1], "worker count leaked into outcomes");
        assert_eq!(reports[0].fingerprint(), reports[1].fingerprint());
    }

    #[test]
    fn killed_replica_loses_no_acked_pages_with_replication() {
        let rt = TaskRuntime::builder().workers(4).build();
        let mut cluster = Cluster::new(quick_cfg());
        let schedule = steady_schedule(24, 16, 40, 0xBEE);
        let storm = FaultStorm::burst(0x5EED);
        let outage = OutageScript { replica: 1, kill_tick: 8, restart_tick: 16 };
        let report = cluster.run_storm(&rt, &schedule, &storm, Some(outage));
        assert_eq!(report.kills, 1);
        assert_eq!(report.restarts, 1);
        assert_eq!(report.supervision_restarts, 1);
        assert_eq!(report.lost_acked, 0, "replication must cover the kill");
        assert!(report.reserved_from_replica > 0, "some pages must survive only on a replica");
        assert_eq!(report.violations(), Vec::<String>::new());
        rt.shutdown();
    }

    #[test]
    fn replication_one_loses_pages_and_the_check_catches_it() {
        // Negative control: with R=1 a kill MUST lose acked pages,
        // proving the conservation check actually detects loss.
        let rt = TaskRuntime::builder().workers(2).build();
        let cfg = ClusterConfig { replication: 1, ..quick_cfg() };
        let mut cluster = Cluster::new(cfg);
        let schedule = steady_schedule(24, 16, 40, 0xBEE);
        let storm = FaultStorm::burst(0x5EED);
        let outage = OutageScript { replica: 1, kill_tick: 8, restart_tick: 16 };
        let report = cluster.run_storm(&rt, &schedule, &storm, Some(outage));
        assert!(report.lost_acked > 0, "R=1 must lose the killed replica's pages");
        assert!(
            report.violations().iter().any(|v| v.contains("lost")),
            "violations must flag the loss"
        );
        rt.shutdown();
    }

    #[test]
    fn queue_full_backpressure_sheds_instead_of_collapsing() {
        let rt = TaskRuntime::builder().workers(2).build();
        let cfg = ClusterConfig { queue_capacity: 2, ..quick_cfg() };
        let mut cluster = Cluster::new(cfg);
        // One massive tick: far more requests than 3 replicas × 2 slots.
        let schedule = vec![steady_schedule(1, 64, 40, 0xCAFE).remove(0)];
        let storm = FaultStorm::burst(0x5EED);
        let report = cluster.run_storm(&rt, &schedule, &storm, None);
        assert!(report.shed_queue_full > 0, "bounded queues must shed");
        assert_eq!(report.violations(), Vec::<String>::new());
        rt.shutdown();
    }

    #[test]
    fn admission_cap_sheds_before_routing() {
        let rt = TaskRuntime::builder().workers(2).build();
        let cfg = ClusterConfig { tick_admission_cap: 8, ..quick_cfg() };
        let mut cluster = Cluster::new(cfg);
        let schedule = vec![steady_schedule(1, 32, 40, 0xCAFE).remove(0)];
        let storm = FaultStorm::burst(0x5EED);
        let report = cluster.run_storm(&rt, &schedule, &storm, None);
        assert_eq!(report.shed_admission, 32 - 8);
        assert_eq!(report.violations(), Vec::<String>::new());
        rt.shutdown();
    }

    #[test]
    fn hedges_fire_and_never_double_count() {
        let rt = TaskRuntime::builder().workers(4).build();
        // Hedge aggressively: median threshold, warm up quickly.
        let cfg = ClusterConfig {
            hedge_quantile: 0.5,
            hedge_min_samples: 16,
            ..quick_cfg()
        };
        let mut cluster = Cluster::new(cfg);
        let schedule = steady_schedule(16, 24, 40, 0xD1CE);
        let storm = FaultStorm::burst(0x5EED);
        let report = cluster.run_storm(&rt, &schedule, &storm, None);
        assert!(report.hedges_fired > 0, "median threshold must hedge");
        assert_eq!(
            report.hedges_fired,
            report.served_hedge + report.hedge_redundant + report.hedge_wasted,
            "every hedge accounted once"
        );
        assert_eq!(report.violations(), Vec::<String>::new());
        rt.shutdown();
    }
}
