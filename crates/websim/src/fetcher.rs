//! The concurrent page fetcher and the connection-count sweep.
//!
//! Two entry points: [`fetch_all`] is the original project-10 code
//! path (no faults expected, panics impossible by construction), and
//! [`try_fetch_all`] is the fault-tolerant crawler — per-page retries
//! under a [`RetryPolicy`], injected panics contained per attempt, and
//! a [`FetchOutcome`] recording exactly what happened to every page.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use faultsim::{RetryError, RetryPolicy};
use parc_trace::{FetchTag, MarkKind, SpanKind};
use parc_util::rng::SplitMix64;
use partask::TaskRuntime;

use crate::server::{RequestError, SimServer};

/// Result of downloading a page set.
#[derive(Clone, Debug)]
pub struct FetchReport {
    /// Number of pages fetched.
    pub pages: usize,
    /// Connection-pool size used.
    pub connections: usize,
    /// Wall-clock time of the whole download.
    pub elapsed: std::time::Duration,
    /// Total kilobytes transferred.
    pub total_kb: f64,
}

impl FetchReport {
    /// Achieved throughput in KB per wall-clock second.
    #[must_use]
    pub fn kb_per_sec(&self) -> f64 {
        self.total_kb / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// What happened to one page during a fault-tolerant crawl.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageOutcome {
    /// The page id.
    pub page: usize,
    /// Attempts spent on it (including the successful one, if any).
    pub attempts: u32,
    /// Kilobytes transferred, or `None` if the page permanently
    /// failed (attempts/deadline exhausted).
    pub kb: Option<f64>,
    /// Attempts on this page that failed with a transient error.
    pub transient_errors: u32,
    /// Attempts on this page that failed by timeout.
    pub timeouts: u32,
    /// Attempts on this page that failed by injected panic.
    pub panics: u32,
}

/// Full accounting of a [`try_fetch_all`] crawl.
///
/// With a deterministic fault plan this is reproducible: per-page
/// attempt counts, retry totals and the failed-page set are identical
/// across reruns with the same seeds, regardless of how connection
/// threads interleave (`tests/chaos.rs` asserts this bit-for-bit).
#[derive(Clone, Debug)]
pub struct FetchOutcome {
    /// Wall-time/throughput summary (`total_kb` counts successes only).
    pub report: FetchReport,
    /// Per-page record, sorted by page id.
    pub pages: Vec<PageOutcome>,
    /// Pages fetched successfully.
    pub succeeded: usize,
    /// Pages that exhausted their retry budget, sorted.
    pub failed_pages: Vec<usize>,
    /// Total attempts across all pages.
    pub attempts_total: u64,
    /// Attempts beyond each page's first (the retry overhead).
    pub retries: u64,
    /// Attempts that failed with a transient error. Derived from the
    /// per-page records, like every other aggregate here.
    pub transient_errors: u64,
    /// Attempts that failed by timeout.
    pub timeouts: u64,
    /// Attempts that failed by injected panic (contained per attempt).
    pub panics: u64,
    /// True only if the crawl was torn down externally (runtime
    /// cancellation) before accounting completed.
    pub aborted: bool,
}

impl FetchOutcome {
    /// Did every page come back?
    #[must_use]
    pub fn fully_succeeded(&self) -> bool {
        !self.aborted && self.failed_pages.is_empty()
    }
}

/// One attempt's failure, as seen by the retry loop.
enum AttemptError {
    Transient,
    Timeout,
    Panicked,
}

/// Download every page of `server` using `connections` parallel
/// connections. Each connection is one multi-task instance pulling
/// page ids from a shared work counter — the Parallel Task phrasing
/// of a download pool.
///
/// This is the original, fault-oblivious entry point, now a thin
/// wrapper over [`try_fetch_all`] with a single-attempt policy: on a
/// fault-free server it behaves exactly as before, and a faulty page
/// degrades the report instead of panicking the joining task.
#[must_use]
pub fn fetch_all(rt: &TaskRuntime, server: &Arc<SimServer>, connections: usize) -> FetchReport {
    let once = RetryPolicy::fixed(Duration::ZERO).with_max_attempts(1);
    try_fetch_all(rt, server, connections, &once).report
}

/// Download every page of `server` with `connections` parallel
/// connections, retrying each page under `policy`.
///
/// Resilience guarantees:
/// * every attempt (including its injected-panic outcome) is contained
///   to that attempt — a panic is caught, counted, and retried like
///   any other failure;
/// * a page that exhausts `policy` is recorded in
///   [`FetchOutcome::failed_pages`] rather than failing the crawl;
/// * backoff delays are interpreted as *simulated* milliseconds and
///   slept at the server's `time_scale`, with deterministic per-page
///   jitter seeds.
#[must_use]
pub fn try_fetch_all(
    rt: &TaskRuntime,
    server: &Arc<SimServer>,
    connections: usize,
    policy: &RetryPolicy,
) -> FetchOutcome {
    let connections = connections.max(1);
    let page_count = server.page_count();
    let next = Arc::new(AtomicUsize::new(0));
    let policy = *policy;
    let time_scale = server.config().time_scale;
    let seed = server.config().seed;
    let start = Instant::now();
    let crawl_span = server
        .trace
        .span(server.pid, SpanKind::Crawl { pages: page_count as u32 });
    let multi = rt.spawn_multi(connections, {
        let server = Arc::clone(server);
        let next = Arc::clone(&next);
        move |_conn| {
            let mut pages = Vec::new();
            loop {
                let page = next.fetch_add(1, Ordering::Relaxed);
                if page >= page_count {
                    break;
                }
                fetch_one(&server, page, &policy, seed, time_scale, &mut pages);
            }
            pages
        }
    });
    let (mut pages, aborted) = match multi.join_reduce(Vec::new(), |mut acc: Vec<PageOutcome>, part| {
        acc.extend(part);
        acc
    }) {
        Ok(p) => (p, false),
        // Only reachable if the runtime is cancelled externally:
        // connection bodies contain their own panics.
        Err(_) => (Vec::new(), true),
    };
    drop(crawl_span);
    pages.sort_by_key(|p| p.page);
    // Every aggregate below is derived from the per-page records —
    // there is exactly one source of truth for the tallies
    // (`fetcher::tests::aggregates_derive_from_page_records` pins the
    // cross-field identities).
    let failed_pages: Vec<usize> = pages.iter().filter(|p| p.kb.is_none()).map(|p| p.page).collect();
    let succeeded = pages.len() - failed_pages.len();
    let attempts_total: u64 = pages.iter().map(|p| u64::from(p.attempts)).sum();
    let retries = attempts_total - pages.len() as u64;
    let total_kb: f64 = pages.iter().filter_map(|p| p.kb).sum();
    let transient_errors: u64 = pages.iter().map(|p| u64::from(p.transient_errors)).sum();
    let timeouts: u64 = pages.iter().map(|p| u64::from(p.timeouts)).sum();
    let panics: u64 = pages.iter().map(|p| u64::from(p.panics)).sum();
    FetchOutcome {
        report: FetchReport {
            pages: page_count,
            connections,
            elapsed: start.elapsed(),
            total_kb,
        },
        pages,
        succeeded,
        failed_pages,
        attempts_total,
        retries,
        transient_errors,
        timeouts,
        panics,
        aborted,
    }
}

/// Fetch one page to completion or retry exhaustion, pushing its
/// [`PageOutcome`] (with per-page failure tallies) onto `out`.
fn fetch_one(
    server: &Arc<SimServer>,
    page: usize,
    policy: &RetryPolicy,
    seed: u64,
    time_scale: f64,
    out: &mut Vec<PageOutcome>,
) {
    let page_seed = SplitMix64::mix(seed ^ (page as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let sleep_scaled = |d: Duration| {
        // Policy delays are simulated milliseconds; convert to wall
        // time the same way the server scales its own sleeps.
        let sim_ms = d.as_secs_f64() * 1e3;
        std::thread::sleep(Duration::from_secs_f64(sim_ms * time_scale));
    };
    let mut transient_errors = 0u32;
    let mut timeouts = 0u32;
    let mut panics = 0u32;
    let result = policy.execute_with(page_seed, sleep_scaled, |attempt| {
        let _span = server.trace.span(
            server.pid,
            SpanKind::FetchAttempt { page: page as u32, attempt },
        );
        let (outcome, tag) =
            match catch_unwind(AssertUnwindSafe(|| server.try_request(page, attempt))) {
                Ok(Ok(kb)) => (Ok(kb), FetchTag::Ok),
                Ok(Err(RequestError::Transient { .. })) => {
                    transient_errors += 1;
                    (Err(AttemptError::Transient), FetchTag::Transient)
                }
                Ok(Err(RequestError::TimedOut { .. })) => {
                    timeouts += 1;
                    (Err(AttemptError::Timeout), FetchTag::TimedOut)
                }
                // The plain server never sheds (only the admission
                // layer in `crate::resilient` does); treat one like a
                // retryable transient if it ever surfaces here.
                Ok(Err(RequestError::Shed { .. })) => {
                    transient_errors += 1;
                    (Err(AttemptError::Transient), FetchTag::Transient)
                }
                Err(_panic_payload) => {
                    panics += 1;
                    (Err(AttemptError::Panicked), FetchTag::Panicked)
                }
            };
        server.trace.mark(
            server.pid,
            MarkKind::FetchResult { page: page as u32, attempt, result: tag },
        );
        outcome
    });
    out.push(match result {
        Ok(done) => PageOutcome {
            page,
            attempts: done.attempts,
            kb: Some(done.value),
            transient_errors,
            timeouts,
            panics,
        },
        Err(err @ (RetryError::Exhausted { .. } | RetryError::DeadlineExceeded { .. })) => {
            PageOutcome {
                page,
                attempts: err.attempts(),
                kb: None,
                transient_errors,
                timeouts,
                panics,
            }
        }
    });
}

/// One point of the connection sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Pool size.
    pub connections: usize,
    /// Measured wall time in milliseconds.
    pub wall_ms: f64,
    /// Analytic model prediction in *simulated* milliseconds.
    pub predicted_sim_ms: f64,
}

/// Measure the download time for each pool size in `sizes`. Also
/// returns the analytic prediction so the E10 report can show the
/// model curve next to the measured one.
///
/// The runtime must have at least `max(sizes)` workers — connections
/// spend their life sleeping in the simulator, so a worker per
/// connection is cheap and keeps the measured concurrency equal to
/// the nominal pool size.
#[must_use]
pub fn sweep_connections(
    rt: &TaskRuntime,
    server: &Arc<SimServer>,
    sizes: &[usize],
) -> Vec<SweepPoint> {
    let max_k = sizes.iter().copied().max().unwrap_or(1);
    assert!(
        rt.workers() >= max_k,
        "sweep needs >= {max_k} workers so every connection can run concurrently"
    );
    sizes
        .iter()
        .map(|&k| {
            let report = fetch_all(rt, server, k);
            SweepPoint {
                connections: k,
                wall_ms: report.elapsed.as_secs_f64() * 1e3,
                predicted_sim_ms: predict_fetch_sim_ms(server, k),
            }
        })
        .collect()
}

/// Analytic prediction of the total download time (simulated ms) with
/// `k` connections: pages are served in waves of `k`, each page
/// costing the model duration at concurrency `k`; the makespan is the
/// total work divided by `k` (fluid approximation).
#[must_use]
pub fn predict_fetch_sim_ms(server: &Arc<SimServer>, k: usize) -> f64 {
    let k = k.max(1);
    let total: f64 = (0..server.page_count())
        .map(|p| server.model_duration_ms(p, k))
        .sum();
    total / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;

    fn quick_server(pages: usize) -> Arc<SimServer> {
        Arc::new(SimServer::new(ServerConfig {
            pages,
            time_scale: 2e-6, // 2 µs per simulated ms: fast tests
            ..ServerConfig::default()
        }))
    }

    #[test]
    fn fetch_all_downloads_every_page_once() {
        let rt = TaskRuntime::builder().workers(4).build();
        let server = quick_server(40);
        let report = fetch_all(&rt, &server, 8);
        assert_eq!(report.pages, 40);
        assert_eq!(server.requests_served(), 40);
        let expected_kb: f64 = (0..40).map(|i| server.page(i).size_kb).sum();
        assert!((report.total_kb - expected_kb).abs() < 1e-9);
        assert!(report.kb_per_sec() > 0.0);
        rt.shutdown();
    }

    #[test]
    fn single_connection_is_serial() {
        let rt = TaskRuntime::builder().workers(2).build();
        let server = quick_server(10);
        let report = fetch_all(&rt, &server, 1);
        assert_eq!(report.connections, 1);
        assert_eq!(server.requests_served(), 10);
        rt.shutdown();
    }

    #[test]
    fn zero_connections_clamped() {
        let rt = TaskRuntime::builder().workers(1).build();
        let server = quick_server(4);
        let report = fetch_all(&rt, &server, 0);
        assert_eq!(report.connections, 1);
        rt.shutdown();
    }

    #[test]
    fn try_fetch_all_retries_through_transient_faults() {
        use faultsim::{FaultInjector, FaultPlan};
        let rt = TaskRuntime::builder().workers(4).build();
        let server = Arc::new(SimServer::with_faults(
            ServerConfig {
                pages: 30,
                time_scale: 2e-6,
                ..ServerConfig::default()
            },
            FaultInjector::new(
                FaultPlan::reliable(11)
                    .with_error_rate(0.3)
                    .fail_key_n_times(7, 2),
            ),
        ));
        let policy = RetryPolicy::fixed(Duration::from_millis(1)).with_max_attempts(6);
        let out = try_fetch_all(&rt, &server, 6, &policy);
        assert!(out.fully_succeeded(), "failed pages: {:?}", out.failed_pages);
        assert_eq!(out.succeeded, 30);
        assert!(out.retries > 0, "plan must have forced at least one retry");
        assert!(out.transient_errors > 0);
        let page7 = out.pages.iter().find(|p| p.page == 7).unwrap();
        assert!(page7.attempts >= 3, "page 7 fails twice before recovering");
        let expected_kb: f64 = (0..30).map(|i| server.page(i).size_kb).sum();
        assert!((out.report.total_kb - expected_kb).abs() < 1e-9);
        rt.shutdown();
    }

    #[test]
    fn exhausted_pages_degrade_instead_of_panicking() {
        use faultsim::{FaultInjector, FaultPlan};
        let rt = TaskRuntime::builder().workers(2).build();
        let server = Arc::new(SimServer::with_faults(
            ServerConfig {
                pages: 10,
                time_scale: 2e-6,
                ..ServerConfig::default()
            },
            FaultInjector::new(FaultPlan::reliable(3).fail_key_n_times(4, 99)),
        ));
        let policy = RetryPolicy::fixed(Duration::from_millis(1)).with_max_attempts(3);
        let out = try_fetch_all(&rt, &server, 4, &policy);
        assert_eq!(out.failed_pages, vec![4]);
        assert_eq!(out.succeeded, 9);
        let page4 = out.pages.iter().find(|p| p.page == 4).unwrap();
        assert_eq!(page4.attempts, 3);
        assert_eq!(page4.kb, None);
        // The old code path also no longer panics on a faulty server.
        let report = fetch_all(&rt, &server, 4);
        assert_eq!(report.pages, 10);
        rt.shutdown();
    }

    #[test]
    fn injected_panics_are_contained_and_retried() {
        use faultsim::{FaultInjector, FaultPlan};
        let rt = TaskRuntime::builder().workers(4).build();
        let server = Arc::new(SimServer::with_faults(
            ServerConfig {
                pages: 40,
                time_scale: 2e-6,
                ..ServerConfig::default()
            },
            FaultInjector::new(FaultPlan::reliable(23).with_panic_rate(0.15)),
        ));
        let policy = RetryPolicy::fixed(Duration::from_millis(1)).with_max_attempts(8);
        let out = try_fetch_all(&rt, &server, 6, &policy);
        assert!(out.panics > 0, "panic rate 0.15 over 40 pages must fire");
        assert!(out.fully_succeeded(), "failed pages: {:?}", out.failed_pages);
        rt.shutdown();
    }

    #[test]
    fn aggregates_derive_from_page_records() {
        // Regression guard for the old double-bookkeeping bug: the
        // outcome's totals were once tallied separately from the
        // per-page records and could drift. Now the per-page records
        // are the single source of truth; pin every identity.
        use faultsim::{FaultInjector, FaultPlan};
        let rt = TaskRuntime::builder().workers(4).build();
        let server = Arc::new(SimServer::with_faults(
            ServerConfig {
                pages: 25,
                time_scale: 2e-6,
                ..ServerConfig::default()
            },
            FaultInjector::new(
                FaultPlan::reliable(17)
                    .with_error_rate(0.25)
                    .with_timeout_rate(0.1)
                    .with_panic_rate(0.1)
                    .fail_key_n_times(3, 99),
            ),
        ));
        let policy = RetryPolicy::fixed(Duration::from_millis(1)).with_max_attempts(4);
        let out = try_fetch_all(&rt, &server, 5, &policy);
        assert_eq!(out.pages.len(), 25, "one record per page");
        let attempts: u64 = out.pages.iter().map(|p| u64::from(p.attempts)).sum();
        assert_eq!(out.attempts_total, attempts);
        assert_eq!(out.retries, attempts - 25);
        assert_eq!(
            out.transient_errors,
            out.pages.iter().map(|p| u64::from(p.transient_errors)).sum::<u64>()
        );
        assert_eq!(
            out.timeouts,
            out.pages.iter().map(|p| u64::from(p.timeouts)).sum::<u64>()
        );
        assert_eq!(
            out.panics,
            out.pages.iter().map(|p| u64::from(p.panics)).sum::<u64>()
        );
        assert_eq!(
            out.succeeded,
            out.pages.iter().filter(|p| p.kb.is_some()).count()
        );
        assert_eq!(
            out.failed_pages,
            out.pages.iter().filter(|p| p.kb.is_none()).map(|p| p.page).collect::<Vec<_>>()
        );
        // Per page, attempts account for every failure plus at most
        // one success.
        for p in &out.pages {
            let failures = p.transient_errors + p.timeouts + p.panics;
            let successes = u32::from(p.kb.is_some());
            assert_eq!(p.attempts, failures + successes, "page {}", p.page);
        }
        rt.shutdown();
    }

    #[test]
    fn prediction_has_interior_optimum() {
        // The analytic curve must fall from k=1, reach a minimum at a
        // moderate k, and rise again past the server's limit — the
        // paper project's research answer.
        let server = quick_server(100);
        let ks = [1usize, 2, 4, 8, 16, 24, 48, 96];
        let curve: Vec<f64> = ks
            .iter()
            .map(|&k| predict_fetch_sim_ms(&server, k))
            .collect();
        let best = curve
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(curve[0] > curve[best] * 2.0, "k=1 must be much slower");
        assert!(best > 0 && best < ks.len() - 1, "optimum must be interior");
        assert!(
            curve[ks.len() - 1] > curve[best],
            "over-subscription must hurt"
        );
    }

    #[test]
    fn measured_sweep_tracks_model_shape() {
        let rt = TaskRuntime::builder().workers(8).build();
        let server = quick_server(60);
        let points = sweep_connections(&rt, &server, &[1, 8]);
        assert_eq!(points.len(), 2);
        // Wall time with 8 connections must beat 1 connection by a
        // clear margin (sleeps overlap even on one CPU).
        assert!(
            points[1].wall_ms < points[0].wall_ms * 0.6,
            "k=8 {} ms vs k=1 {} ms",
            points[1].wall_ms,
            points[0].wall_ms
        );
        rt.shutdown();
    }
}
