//! The concurrent page fetcher and the connection-count sweep.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use partask::TaskRuntime;

use crate::server::SimServer;

/// Result of downloading a page set.
#[derive(Clone, Debug)]
pub struct FetchReport {
    /// Number of pages fetched.
    pub pages: usize,
    /// Connection-pool size used.
    pub connections: usize,
    /// Wall-clock time of the whole download.
    pub elapsed: std::time::Duration,
    /// Total kilobytes transferred.
    pub total_kb: f64,
}

impl FetchReport {
    /// Achieved throughput in KB per wall-clock second.
    #[must_use]
    pub fn kb_per_sec(&self) -> f64 {
        self.total_kb / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Download every page of `server` using `connections` parallel
/// connections. Each connection is one multi-task instance pulling
/// page ids from a shared work counter — the Parallel Task phrasing
/// of a download pool.
#[must_use]
pub fn fetch_all(rt: &TaskRuntime, server: &Arc<SimServer>, connections: usize) -> FetchReport {
    let connections = connections.max(1);
    let pages = server.page_count();
    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let multi = rt.spawn_multi(connections, {
        let server = Arc::clone(server);
        let next = Arc::clone(&next);
        move |_conn| {
            let mut kb = 0.0;
            loop {
                let page = next.fetch_add(1, Ordering::Relaxed);
                if page >= pages {
                    break;
                }
                kb += server.request(page);
            }
            kb
        }
    });
    let total_kb = multi
        .join_reduce(0.0, |acc, kb| acc + kb)
        .expect("fetch tasks");
    FetchReport {
        pages,
        connections,
        elapsed: start.elapsed(),
        total_kb,
    }
}

/// One point of the connection sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Pool size.
    pub connections: usize,
    /// Measured wall time in milliseconds.
    pub wall_ms: f64,
    /// Analytic model prediction in *simulated* milliseconds.
    pub predicted_sim_ms: f64,
}

/// Measure the download time for each pool size in `sizes`. Also
/// returns the analytic prediction so the E10 report can show the
/// model curve next to the measured one.
///
/// The runtime must have at least `max(sizes)` workers — connections
/// spend their life sleeping in the simulator, so a worker per
/// connection is cheap and keeps the measured concurrency equal to
/// the nominal pool size.
#[must_use]
pub fn sweep_connections(
    rt: &TaskRuntime,
    server: &Arc<SimServer>,
    sizes: &[usize],
) -> Vec<SweepPoint> {
    let max_k = sizes.iter().copied().max().unwrap_or(1);
    assert!(
        rt.workers() >= max_k,
        "sweep needs >= {max_k} workers so every connection can run concurrently"
    );
    sizes
        .iter()
        .map(|&k| {
            let report = fetch_all(rt, server, k);
            SweepPoint {
                connections: k,
                wall_ms: report.elapsed.as_secs_f64() * 1e3,
                predicted_sim_ms: predict_fetch_sim_ms(server, k),
            }
        })
        .collect()
}

/// Analytic prediction of the total download time (simulated ms) with
/// `k` connections: pages are served in waves of `k`, each page
/// costing the model duration at concurrency `k`; the makespan is the
/// total work divided by `k` (fluid approximation).
#[must_use]
pub fn predict_fetch_sim_ms(server: &Arc<SimServer>, k: usize) -> f64 {
    let k = k.max(1);
    let total: f64 = (0..server.page_count())
        .map(|p| server.model_duration_ms(p, k))
        .sum();
    total / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;

    fn quick_server(pages: usize) -> Arc<SimServer> {
        Arc::new(SimServer::new(ServerConfig {
            pages,
            time_scale: 2e-6, // 2 µs per simulated ms: fast tests
            ..ServerConfig::default()
        }))
    }

    #[test]
    fn fetch_all_downloads_every_page_once() {
        let rt = TaskRuntime::builder().workers(4).build();
        let server = quick_server(40);
        let report = fetch_all(&rt, &server, 8);
        assert_eq!(report.pages, 40);
        assert_eq!(server.requests_served(), 40);
        let expected_kb: f64 = (0..40).map(|i| server.page(i).size_kb).sum();
        assert!((report.total_kb - expected_kb).abs() < 1e-9);
        assert!(report.kb_per_sec() > 0.0);
        rt.shutdown();
    }

    #[test]
    fn single_connection_is_serial() {
        let rt = TaskRuntime::builder().workers(2).build();
        let server = quick_server(10);
        let report = fetch_all(&rt, &server, 1);
        assert_eq!(report.connections, 1);
        assert_eq!(server.requests_served(), 10);
        rt.shutdown();
    }

    #[test]
    fn zero_connections_clamped() {
        let rt = TaskRuntime::builder().workers(1).build();
        let server = quick_server(4);
        let report = fetch_all(&rt, &server, 0);
        assert_eq!(report.connections, 1);
        rt.shutdown();
    }

    #[test]
    fn prediction_has_interior_optimum() {
        // The analytic curve must fall from k=1, reach a minimum at a
        // moderate k, and rise again past the server's limit — the
        // paper project's research answer.
        let server = quick_server(100);
        let ks = [1usize, 2, 4, 8, 16, 24, 48, 96];
        let curve: Vec<f64> = ks
            .iter()
            .map(|&k| predict_fetch_sim_ms(&server, k))
            .collect();
        let best = curve
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(curve[0] > curve[best] * 2.0, "k=1 must be much slower");
        assert!(best > 0 && best < ks.len() - 1, "optimum must be interior");
        assert!(
            curve[ks.len() - 1] > curve[best],
            "over-subscription must hurt"
        );
    }

    #[test]
    fn measured_sweep_tracks_model_shape() {
        let rt = TaskRuntime::builder().workers(8).build();
        let server = quick_server(60);
        let points = sweep_connections(&rt, &server, &[1, 8]);
        assert_eq!(points.len(), 2);
        // Wall time with 8 connections must beat 1 connection by a
        // clear margin (sleeps overlap even on one CPU).
        assert!(
            points[1].wall_ms < points[0].wall_ms * 0.6,
            "k=8 {} ms vs k=1 {} ms",
            points[1].wall_ms,
            points[0].wall_ms
        );
        rt.shutdown();
    }
}
