//! The deterministic simulated web server.
//!
//! Each page has a fixed round-trip latency and size drawn from a
//! seeded PRNG. A request costs
//!
//! ```text
//! rtt + size / (bandwidth / active_connections) [+ queue penalty]
//! ```
//!
//! where `active_connections` is sampled when the transfer starts —
//! a simple fluid model of a shared access link. Requests beyond
//! `max_concurrent` pay an additional queueing penalty per excess
//! connection. All durations are in *simulated milliseconds*,
//! executed as real sleeps scaled by `time_scale`.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use faultsim::{Fault, FaultInjector};
use parc_trace::{FaultTag, MarkKind, TraceHandle};
use parc_util::rng::{SplitMix64, Xoshiro256};

/// Static properties of one simulated page.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageMeta {
    /// Round-trip latency in simulated ms.
    pub rtt_ms: f64,
    /// Page size in kilobytes.
    pub size_kb: f64,
}

/// Server model parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of distinct pages served.
    pub pages: usize,
    /// Latency range (simulated ms).
    pub rtt_range: (f64, f64),
    /// Page-size range (KB).
    pub size_range: (f64, f64),
    /// Shared downstream bandwidth in KB per simulated ms.
    pub bandwidth_kb_per_ms: f64,
    /// Connections beyond this pay a queue penalty.
    pub max_concurrent: usize,
    /// Queue penalty per excess connection (simulated ms).
    pub queue_penalty_ms: f64,
    /// Real-time seconds per simulated millisecond (e.g. `1e-5` =
    /// 10 µs of wall time per simulated ms).
    pub time_scale: f64,
    /// Seed for page properties.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            pages: 200,
            rtt_range: (20.0, 120.0),
            size_range: (10.0, 200.0),
            bandwidth_kb_per_ms: 50.0,
            max_concurrent: 24,
            queue_penalty_ms: 15.0,
            time_scale: 2e-5,
            seed: 0x7EB,
        }
    }
}

/// Machine-readable reason a request was shed instead of served —
/// carried by [`RequestError::Shed`] so balancers and reports can
/// distinguish *why* load was dropped (and, under backpressure,
/// which stage of the pipeline pushed back).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShedReason {
    /// An admission gate refused the request before routing (global
    /// in-flight or per-tick cap reached).
    Admission,
    /// The predicted cost exceeded the active deadline budget, so
    /// serving the request would only have added load.
    Deadline,
    /// Every candidate replica's circuit breaker was open.
    Breaker,
    /// Every candidate replica's bounded queue was full — the
    /// end-to-end backpressure signal.
    QueueFull,
}

impl ShedReason {
    /// Stable label for reports and benchmark JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::Admission => "admission",
            ShedReason::Deadline => "deadline",
            ShedReason::Breaker => "breaker",
            ShedReason::QueueFull => "queue_full",
        }
    }

    /// All reasons, in canonical (enum) order — for report tables.
    #[must_use]
    pub fn all() -> [ShedReason; 4] {
        [
            ShedReason::Admission,
            ShedReason::Deadline,
            ShedReason::Breaker,
            ShedReason::QueueFull,
        ]
    }
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a [`SimServer::try_request`] attempt failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// A retryable connection-level failure (reset, 5xx, ...).
    Transient {
        /// The page requested.
        page: usize,
        /// The 1-based attempt that failed.
        attempt: u32,
    },
    /// The transfer exceeded its time budget and was abandoned.
    TimedOut {
        /// The page requested.
        page: usize,
        /// The 1-based attempt that failed.
        attempt: u32,
    },
    /// The request was shed by admission control before reaching the
    /// server: its predicted cost exceeded the deadline budget, so
    /// serving it would only have added load. Produced by
    /// [`crate::resilient`], never by [`SimServer::try_request`].
    Shed {
        /// The page requested.
        page: usize,
        /// The 1-based attempt that was shed.
        attempt: u32,
        /// Which stage of the pipeline dropped the request.
        reason: ShedReason,
    },
}

impl RequestError {
    /// The page the failed attempt was for.
    #[must_use]
    pub fn page(&self) -> usize {
        match self {
            RequestError::Transient { page, .. }
            | RequestError::TimedOut { page, .. }
            | RequestError::Shed { page, .. } => *page,
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Transient { page, attempt } => {
                write!(f, "transient error fetching page {page} (attempt {attempt})")
            }
            RequestError::TimedOut { page, attempt } => {
                write!(f, "timeout fetching page {page} (attempt {attempt})")
            }
            RequestError::Shed { page, attempt, reason } => {
                write!(
                    f,
                    "request for page {page} shed by admission control ({reason}, attempt {attempt})"
                )
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// The simulated server. Thread-safe; any number of client threads
/// may call [`SimServer::request`] concurrently.
///
/// A server built with [`SimServer::with_faults`] consults its
/// [`FaultInjector`] on every [`SimServer::try_request`]: since each
/// decision is a pure function of `(plan seed, page, attempt)`, the
/// set of injected failures is identical across reruns no matter how
/// client threads interleave. The legacy [`SimServer::request`] path
/// never fails and ignores the injector.
pub struct SimServer {
    config: ServerConfig,
    pages: Vec<PageMeta>,
    injector: Option<FaultInjector>,
    pub(crate) trace: TraceHandle,
    pub(crate) pid: u32,
    active: AtomicUsize,
    requests_served: AtomicU64,
    faults_injected: AtomicU64,
    /// Total simulated milliseconds charged across all requests.
    sim_ms_total: AtomicU64,
}

impl SimServer {
    /// Build a server; page properties are deterministic per seed.
    #[must_use]
    pub fn new(config: ServerConfig) -> Self {
        Self::build(config, None)
    }

    /// Build a server whose [`SimServer::try_request`] fails according
    /// to `injector`'s plan.
    #[must_use]
    pub fn with_faults(config: ServerConfig, injector: FaultInjector) -> Self {
        Self::build(config, Some(injector))
    }

    fn build(config: ServerConfig, injector: Option<FaultInjector>) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(config.seed);
        let pages = (0..config.pages)
            .map(|_| PageMeta {
                rtt_ms: rng.gen_range_f64(config.rtt_range.0..config.rtt_range.1),
                size_kb: rng.gen_range_f64(config.size_range.0..config.size_range.1),
            })
            .collect();
        Self {
            config,
            pages,
            injector,
            trace: TraceHandle::default(),
            pid: 0,
            active: AtomicUsize::new(0),
            requests_served: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            sim_ms_total: AtomicU64::new(0),
        }
    }

    /// Record this server's activity (injected faults, and the fetch
    /// attempts/crawls made by [`crate::fetcher`]) through `trace` on a
    /// track named `"websim"`.
    #[must_use]
    pub fn with_trace(mut self, trace: &TraceHandle) -> Self {
        self.pid = trace.register_track("websim");
        self.trace = trace.clone();
        self
    }

    /// Number of pages served.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Metadata of page `id`.
    #[must_use]
    pub fn page(&self, id: usize) -> PageMeta {
        self.pages[id]
    }

    /// The simulated duration a request for `page` costs at a given
    /// concurrency level (the analytic model, used by tests and by
    /// [`crate::fetcher::predict_sweep`]).
    #[must_use]
    pub fn model_duration_ms(&self, page: usize, active: usize) -> f64 {
        let meta = self.pages[page];
        let active = active.max(1);
        let share = self.config.bandwidth_kb_per_ms / active as f64;
        let mut ms = meta.rtt_ms + meta.size_kb / share;
        if active > self.config.max_concurrent {
            ms += (active - self.config.max_concurrent) as f64 * self.config.queue_penalty_ms;
        }
        ms
    }

    /// Perform the request: blocks (sleeps) for the simulated
    /// duration and returns the page's size in KB. A small seeded
    /// jitter (±5 %) keeps runs realistic yet deterministic per
    /// (page, request-count) pair. Never fails — fault injection
    /// applies only to [`SimServer::try_request`].
    pub fn request(&self, page: usize) -> f64 {
        self.perform(page, 0.0)
    }

    /// Perform one attempt at fetching `page`, subject to the server's
    /// fault plan. `attempt` is 1-based and is part of the fault
    /// decision, so a page can fail its first attempts and then
    /// recover. Failed attempts still cost simulated time: a transient
    /// error burns the round trip, a timeout burns the whole transfer
    /// budget before giving up.
    ///
    /// # Panics
    /// If the fault plan schedules [`Fault::Panic`] for this attempt —
    /// that is the injector doing its job (exercising callers'
    /// panic-safety), not a bug.
    pub fn try_request(&self, page: usize, attempt: u32) -> Result<f64, RequestError> {
        let fault = self
            .injector
            .as_ref()
            .map_or(Fault::None, |inj| inj.decide(page as u64, attempt));
        if fault != Fault::None {
            self.faults_injected.fetch_add(1, Ordering::Relaxed);
            if let Some(tag) = fault_tag(fault) {
                self.trace.mark(
                    self.pid,
                    MarkKind::FaultInjected { key: page as u64, attempt, fault: tag },
                );
            }
        }
        match fault {
            Fault::None => Ok(self.perform(page, 0.0)),
            Fault::LatencySpike { extra_ms } => Ok(self.perform(page, extra_ms)),
            Fault::TransientError => {
                // Connection died early: pay the round trip only.
                self.charge_and_sleep(self.pages[page].rtt_ms);
                self.requests_served.fetch_add(1, Ordering::Relaxed);
                Err(RequestError::Transient { page, attempt })
            }
            Fault::Timeout => {
                // Client waited the full transfer before giving up.
                let active = self.active.load(Ordering::SeqCst).max(1);
                self.charge_and_sleep(self.model_duration_ms(page, active));
                self.requests_served.fetch_add(1, Ordering::Relaxed);
                Err(RequestError::TimedOut { page, attempt })
            }
            Fault::Panic => {
                panic!(
                    "{} fetching page {page} (attempt {attempt})",
                    faultsim::INJECTED_PANIC_PREFIX
                )
            }
        }
    }

    fn perform(&self, page: usize, extra_ms: f64) -> f64 {
        let active = self.active.fetch_add(1, Ordering::SeqCst) + 1;
        let serial = self.requests_served.fetch_add(1, Ordering::Relaxed);
        let base_ms = self.model_duration_ms(page, active);
        let jitter = {
            let h = SplitMix64::mix((page as u64) << 32 | (serial & 0xFFFF));
            0.95 + 0.10 * (h as f64 / u64::MAX as f64)
        };
        let ms = base_ms * jitter + extra_ms;
        self.sim_ms_total.fetch_add(ms as u64, Ordering::Relaxed);
        std::thread::sleep(Duration::from_secs_f64(
            ms * self.config.time_scale,
        ));
        self.active.fetch_sub(1, Ordering::SeqCst);
        self.pages[page].size_kb
    }

    /// Account `ms` of simulated time and sleep it at the configured
    /// scale (used by failure paths that hold no connection slot).
    fn charge_and_sleep(&self, ms: f64) {
        self.sim_ms_total.fetch_add(ms as u64, Ordering::Relaxed);
        std::thread::sleep(Duration::from_secs_f64(ms * self.config.time_scale));
    }

    /// Requests served so far (successful and failed attempts alike).
    #[must_use]
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Faults injected so far (any non-`None` decision).
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::Relaxed)
    }

    /// The fault injector, if this server was built with one.
    #[must_use]
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Total simulated milliseconds charged so far.
    #[must_use]
    pub fn sim_ms_total(&self) -> u64 {
        self.sim_ms_total.load(Ordering::Relaxed)
    }

    /// Current concurrent request count.
    #[must_use]
    pub fn active_now(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }
}

/// The trace tag for an injected fault (`None` carries no tag).
fn fault_tag(fault: Fault) -> Option<FaultTag> {
    match fault {
        Fault::None => None,
        Fault::TransientError => Some(FaultTag::Transient),
        Fault::Timeout => Some(FaultTag::Timeout),
        Fault::Panic => Some(FaultTag::Panic),
        Fault::LatencySpike { .. } => Some(FaultTag::LatencySpike),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> ServerConfig {
        ServerConfig {
            pages: 20,
            time_scale: 1e-6,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn pages_deterministic_per_seed() {
        let a = SimServer::new(fast_config());
        let b = SimServer::new(fast_config());
        for i in 0..a.page_count() {
            assert_eq!(a.page(i), b.page(i));
        }
    }

    #[test]
    fn page_properties_within_ranges() {
        let server = SimServer::new(fast_config());
        let cfg = server.config();
        for i in 0..server.page_count() {
            let p = server.page(i);
            assert!(p.rtt_ms >= cfg.rtt_range.0 && p.rtt_ms < cfg.rtt_range.1);
            assert!(p.size_kb >= cfg.size_range.0 && p.size_kb < cfg.size_range.1);
        }
    }

    #[test]
    fn model_duration_grows_with_concurrency() {
        let server = SimServer::new(fast_config());
        let d1 = server.model_duration_ms(0, 1);
        let d8 = server.model_duration_ms(0, 8);
        let d100 = server.model_duration_ms(0, 100);
        assert!(d8 > d1, "shared bandwidth must slow transfers");
        assert!(d100 > d8 + 50.0, "queue penalty must kick in past the cap");
    }

    #[test]
    fn request_returns_size_and_counts() {
        let server = SimServer::new(fast_config());
        let size = server.request(3);
        assert_eq!(size, server.page(3).size_kb);
        assert_eq!(server.requests_served(), 1);
        assert!(server.sim_ms_total() > 0);
        assert_eq!(server.active_now(), 0);
    }

    #[test]
    fn try_request_without_injector_never_fails() {
        let server = SimServer::new(fast_config());
        for page in 0..5 {
            for attempt in 1..4 {
                assert!(server.try_request(page, attempt).is_ok());
            }
        }
        assert_eq!(server.faults_injected(), 0);
    }

    #[test]
    fn fail_n_then_recover_is_visible_to_clients() {
        use faultsim::{FaultInjector, FaultPlan};
        let server = SimServer::with_faults(
            fast_config(),
            FaultInjector::new(FaultPlan::reliable(5).fail_key_n_times(2, 2)),
        );
        assert_eq!(
            server.try_request(2, 1),
            Err(RequestError::Transient { page: 2, attempt: 1 })
        );
        assert_eq!(
            server.try_request(2, 2),
            Err(RequestError::Transient { page: 2, attempt: 2 })
        );
        assert!(server.try_request(2, 3).is_ok());
        assert!(server.try_request(3, 1).is_ok());
        assert_eq!(server.faults_injected(), 2);
    }

    #[test]
    fn injected_failures_are_deterministic_across_servers() {
        use faultsim::{FaultInjector, FaultPlan};
        let plan = FaultPlan::reliable(77).with_error_rate(0.3).with_timeout_rate(0.1);
        let a = SimServer::with_faults(fast_config(), FaultInjector::new(plan.clone()));
        let b = SimServer::with_faults(fast_config(), FaultInjector::new(plan));
        for page in 0..a.page_count() {
            for attempt in 1..3 {
                assert_eq!(
                    a.try_request(page, attempt).is_ok(),
                    b.try_request(page, attempt).is_ok(),
                    "page {page} attempt {attempt} diverged"
                );
            }
        }
        assert_eq!(a.faults_injected(), b.faults_injected());
    }

    #[test]
    fn injected_faults_emit_trace_marks() {
        use faultsim::{FaultInjector, FaultPlan};
        let col = parc_trace::Collector::new();
        let server = SimServer::with_faults(
            fast_config(),
            FaultInjector::new(FaultPlan::reliable(5).fail_key_n_times(2, 2)),
        )
        .with_trace(&col.handle());
        assert!(server.try_request(2, 1).is_err());
        assert!(server.try_request(2, 2).is_err());
        assert!(server.try_request(2, 3).is_ok());
        let trace = col.snapshot();
        assert_eq!(trace.counts_by_name()["fault.injected"], 2);
        assert_eq!(server.faults_injected(), 2);
    }

    #[test]
    fn shed_reason_is_machine_readable_and_pinned() {
        // The reason taxonomy is part of the report/JSON contract:
        // names and order are pinned here so downstream consumers
        // (balancer accounting, BENCH_load.json) can rely on them.
        assert_eq!(
            ShedReason::all().map(ShedReason::name),
            ["admission", "deadline", "breaker", "queue_full"]
        );
        for (a, b) in ShedReason::all().iter().zip(ShedReason::all().iter().skip(1)) {
            assert!(a < b, "canonical order must match enum order");
        }
        let err = RequestError::Shed { page: 3, attempt: 1, reason: ShedReason::QueueFull };
        assert_eq!(err.page(), 3);
        match err {
            RequestError::Shed { reason, .. } => assert_eq!(reason, ShedReason::QueueFull),
            other => panic!("wrong variant: {other:?}"),
        }
        let text = err.to_string();
        assert!(text.contains("queue_full"), "display must carry the reason: {text}");
        assert!(text.contains("shed"), "display must still read as a shed: {text}");
    }

    #[test]
    fn concurrent_requests_tracked() {
        let server = std::sync::Arc::new(SimServer::new(ServerConfig {
            pages: 4,
            time_scale: 2e-4, // long enough to overlap
            ..ServerConfig::default()
        }));
        let mut joins = Vec::new();
        for i in 0..4 {
            let s = std::sync::Arc::clone(&server);
            joins.push(std::thread::spawn(move || s.request(i)));
        }
        for j in joins {
            let _ = j.join().unwrap();
        }
        assert_eq!(server.requests_served(), 4);
        assert_eq!(server.active_now(), 0);
    }
}
