//! The deterministic simulated web server.
//!
//! Each page has a fixed round-trip latency and size drawn from a
//! seeded PRNG. A request costs
//!
//! ```text
//! rtt + size / (bandwidth / active_connections) [+ queue penalty]
//! ```
//!
//! where `active_connections` is sampled when the transfer starts —
//! a simple fluid model of a shared access link. Requests beyond
//! `max_concurrent` pay an additional queueing penalty per excess
//! connection. All durations are in *simulated milliseconds*,
//! executed as real sleeps scaled by `time_scale`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use parc_util::rng::{SplitMix64, Xoshiro256};

/// Static properties of one simulated page.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageMeta {
    /// Round-trip latency in simulated ms.
    pub rtt_ms: f64,
    /// Page size in kilobytes.
    pub size_kb: f64,
}

/// Server model parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of distinct pages served.
    pub pages: usize,
    /// Latency range (simulated ms).
    pub rtt_range: (f64, f64),
    /// Page-size range (KB).
    pub size_range: (f64, f64),
    /// Shared downstream bandwidth in KB per simulated ms.
    pub bandwidth_kb_per_ms: f64,
    /// Connections beyond this pay a queue penalty.
    pub max_concurrent: usize,
    /// Queue penalty per excess connection (simulated ms).
    pub queue_penalty_ms: f64,
    /// Real-time seconds per simulated millisecond (e.g. `1e-5` =
    /// 10 µs of wall time per simulated ms).
    pub time_scale: f64,
    /// Seed for page properties.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            pages: 200,
            rtt_range: (20.0, 120.0),
            size_range: (10.0, 200.0),
            bandwidth_kb_per_ms: 50.0,
            max_concurrent: 24,
            queue_penalty_ms: 15.0,
            time_scale: 2e-5,
            seed: 0x7EB,
        }
    }
}

/// The simulated server. Thread-safe; any number of client threads
/// may call [`SimServer::request`] concurrently.
pub struct SimServer {
    config: ServerConfig,
    pages: Vec<PageMeta>,
    active: AtomicUsize,
    requests_served: AtomicU64,
    /// Total simulated milliseconds charged across all requests.
    sim_ms_total: AtomicU64,
}

impl SimServer {
    /// Build a server; page properties are deterministic per seed.
    #[must_use]
    pub fn new(config: ServerConfig) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(config.seed);
        let pages = (0..config.pages)
            .map(|_| PageMeta {
                rtt_ms: rng.gen_range_f64(config.rtt_range.0..config.rtt_range.1),
                size_kb: rng.gen_range_f64(config.size_range.0..config.size_range.1),
            })
            .collect();
        Self {
            config,
            pages,
            active: AtomicUsize::new(0),
            requests_served: AtomicU64::new(0),
            sim_ms_total: AtomicU64::new(0),
        }
    }

    /// Number of pages served.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Metadata of page `id`.
    #[must_use]
    pub fn page(&self, id: usize) -> PageMeta {
        self.pages[id]
    }

    /// The simulated duration a request for `page` costs at a given
    /// concurrency level (the analytic model, used by tests and by
    /// [`crate::fetcher::predict_sweep`]).
    #[must_use]
    pub fn model_duration_ms(&self, page: usize, active: usize) -> f64 {
        let meta = self.pages[page];
        let active = active.max(1);
        let share = self.config.bandwidth_kb_per_ms / active as f64;
        let mut ms = meta.rtt_ms + meta.size_kb / share;
        if active > self.config.max_concurrent {
            ms += (active - self.config.max_concurrent) as f64 * self.config.queue_penalty_ms;
        }
        ms
    }

    /// Perform the request: blocks (sleeps) for the simulated
    /// duration and returns the page's size in KB. A small seeded
    /// jitter (±5 %) keeps runs realistic yet deterministic per
    /// (page, request-count) pair.
    pub fn request(&self, page: usize) -> f64 {
        let active = self.active.fetch_add(1, Ordering::SeqCst) + 1;
        let serial = self.requests_served.fetch_add(1, Ordering::Relaxed);
        let base_ms = self.model_duration_ms(page, active);
        let jitter = {
            let h = SplitMix64::mix((page as u64) << 32 | (serial & 0xFFFF));
            0.95 + 0.10 * (h as f64 / u64::MAX as f64)
        };
        let ms = base_ms * jitter;
        self.sim_ms_total.fetch_add(ms as u64, Ordering::Relaxed);
        std::thread::sleep(Duration::from_secs_f64(
            ms * self.config.time_scale,
        ));
        self.active.fetch_sub(1, Ordering::SeqCst);
        self.pages[page].size_kb
    }

    /// Requests served so far.
    #[must_use]
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Total simulated milliseconds charged so far.
    #[must_use]
    pub fn sim_ms_total(&self) -> u64 {
        self.sim_ms_total.load(Ordering::Relaxed)
    }

    /// Current concurrent request count.
    #[must_use]
    pub fn active_now(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> ServerConfig {
        ServerConfig {
            pages: 20,
            time_scale: 1e-6,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn pages_deterministic_per_seed() {
        let a = SimServer::new(fast_config());
        let b = SimServer::new(fast_config());
        for i in 0..a.page_count() {
            assert_eq!(a.page(i), b.page(i));
        }
    }

    #[test]
    fn page_properties_within_ranges() {
        let server = SimServer::new(fast_config());
        let cfg = server.config();
        for i in 0..server.page_count() {
            let p = server.page(i);
            assert!(p.rtt_ms >= cfg.rtt_range.0 && p.rtt_ms < cfg.rtt_range.1);
            assert!(p.size_kb >= cfg.size_range.0 && p.size_kb < cfg.size_range.1);
        }
    }

    #[test]
    fn model_duration_grows_with_concurrency() {
        let server = SimServer::new(fast_config());
        let d1 = server.model_duration_ms(0, 1);
        let d8 = server.model_duration_ms(0, 8);
        let d100 = server.model_duration_ms(0, 100);
        assert!(d8 > d1, "shared bandwidth must slow transfers");
        assert!(d100 > d8 + 50.0, "queue penalty must kick in past the cap");
    }

    #[test]
    fn request_returns_size_and_counts() {
        let server = SimServer::new(fast_config());
        let size = server.request(3);
        assert_eq!(size, server.page(3).size_kb);
        assert_eq!(server.requests_served(), 1);
        assert!(server.sim_ms_total() > 0);
        assert_eq!(server.active_now(), 0);
    }

    #[test]
    fn concurrent_requests_tracked() {
        let server = std::sync::Arc::new(SimServer::new(ServerConfig {
            pages: 4,
            time_scale: 2e-4, // long enough to overlap
            ..ServerConfig::default()
        }));
        let mut joins = Vec::new();
        for i in 0..4 {
            let s = std::sync::Arc::clone(&server);
            joins.push(std::thread::spawn(move || s.request(i)));
        }
        for j in joins {
            let _ = j.join().unwrap();
        }
        assert_eq!(server.requests_served(), 4);
        assert_eq!(server.active_now(), 0);
    }
}
