//! # websim — simulated web access for the concurrent-connections study
//!
//! SoftEng 751 **project 10**: "due to the latency of network
//! connections, it is sometimes meaningful to open several connections
//! at the same time … however, the question arises how many
//! connections should be opened at the same time. Students implemented
//! a simple program that needs to access a large number of web-pages
//! and used Parallel Task to download these pages as quickly as
//! possible."
//!
//! Substitution (see DESIGN.md): no network exists in this container,
//! so [`server::SimServer`] models one deterministically — per-page
//! round-trip latency plus a transfer time that *degrades as client
//! concurrency grows* (shared bandwidth), which is exactly the
//! trade-off that creates an optimal connection count:
//!
//! * few connections → latency dominates, link idle;
//! * many connections → bandwidth shared thin, diminishing returns —
//!   and past the server's connection limit, queueing.
//!
//! [`fetcher`] downloads a page set with a configurable connection
//! pool built on partask multi-tasks and reports wall time, and
//! [`fetcher::sweep_connections`] regenerates the optimum curve of
//! experiment E10. The time scale is microseconds-per-simulated-
//! millisecond so the sweep runs quickly; shapes are scale-invariant.
//!
//! [`resilient`] adds the graceful-degradation layer for fault-storm
//! soaks: admission control, deadline-aware load shedding, per-
//! connection circuit breakers, and stale-cache serving with
//! quantified coverage/staleness.
//!
//! [`cluster`] scales the story from one server to a sharded tier:
//! a consistent-hash load balancer over N replicas with R-way
//! replication, health-check ejection, hedged requests, bounded
//! per-replica queues propagating [`server::ShedReason`] backpressure
//! to the client, and supervised replica kill/restart that loses zero
//! acknowledged pages.

pub mod cluster;
pub mod fetcher;
pub mod resilient;
pub mod server;

pub use cluster::{Cluster, ClusterConfig, ClusterReport, HashRing, OutageScript};
pub use fetcher::{
    fetch_all, predict_fetch_sim_ms, sweep_connections, try_fetch_all, FetchOutcome, FetchReport,
    PageOutcome, SweepPoint,
};
pub use resilient::{ResilientConfig, ResilientCrawler, ResilientPage, ResilientReport};
pub use server::{PageMeta, RequestError, ServerConfig, ShedReason, SimServer};
