//! Arrival processes and page popularity: *when* requests arrive and
//! *what* they ask for, both as pure functions of a seed.

use parc_util::rng::Xoshiro256;

/// The shape of offered load over a run, expressed as an expected
/// request count per tick. Actual per-tick counts are Poisson samples
/// around the expectation, so traffic is bursty at every scale.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Stationary open-loop traffic: `rate` expected requests/tick.
    PoissonSteady {
        /// Expected requests per tick.
        rate: f64,
    },
    /// A day/night sine wave: `base + amplitude·sin(2πt/period)`,
    /// clamped at zero — the diurnal load curve every cluster sizes
    /// itself against.
    Diurnal {
        /// Mean requests per tick.
        base: f64,
        /// Peak-to-mean swing.
        amplitude: f64,
        /// Ticks per full day cycle.
        period_ticks: usize,
    },
    /// Steady `base` traffic until `at_tick`, then an instantaneous
    /// surge to `peak` decaying exponentially over `decay_ticks` —
    /// the flash crowd a replica kill loves to coincide with.
    FlashCrowd {
        /// Pre-surge requests per tick.
        base: f64,
        /// Surge peak requests per tick.
        peak: f64,
        /// Tick the crowd lands.
        at_tick: usize,
        /// e-folding time of the decay, in ticks.
        decay_ticks: usize,
    },
}

impl ArrivalProcess {
    /// Stable name for tables and JSON keys.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::PoissonSteady { .. } => "poisson_steady",
            Self::Diurnal { .. } => "diurnal",
            Self::FlashCrowd { .. } => "flash_crowd",
        }
    }

    /// Expected arrivals at `tick` (the Poisson mean for that tick).
    #[must_use]
    pub fn expected(&self, tick: usize) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        match *self {
            Self::PoissonSteady { rate } => rate.max(0.0),
            Self::Diurnal { base, amplitude, period_ticks } => {
                let period = period_ticks.max(1) as f64;
                let angle = std::f64::consts::TAU * tick as f64 / period;
                (base + amplitude * angle.sin()).max(0.0)
            }
            Self::FlashCrowd { base, peak, at_tick, decay_ticks } => {
                if tick < at_tick {
                    base.max(0.0)
                } else {
                    let dt = (tick - at_tick) as f64;
                    let tau = decay_ticks.max(1) as f64;
                    (base + (peak - base) * (-dt / tau).exp()).max(0.0)
                }
            }
        }
    }

    /// Sample the actual arrival count at `tick` from the seeded RNG:
    /// Poisson via Knuth's product method for small means, the
    /// normal approximation above 30 (both deterministic).
    #[must_use]
    pub fn sample(&self, tick: usize, rng: &mut Xoshiro256) -> usize {
        poisson(self.expected(tick), rng)
    }

    /// The canonical trio the E-LOAD experiment sweeps: steady
    /// Poisson, a diurnal wave, and a flash crowd landing mid-run,
    /// all scaled around `rate` requests/tick over `ticks`.
    #[must_use]
    pub fn all(rate: f64, ticks: usize) -> Vec<Self> {
        vec![
            Self::PoissonSteady { rate },
            Self::Diurnal { base: rate, amplitude: rate * 0.6, period_ticks: ticks.max(2) / 2 },
            Self::FlashCrowd {
                base: rate * 0.7,
                peak: rate * 2.5,
                at_tick: ticks / 3,
                decay_ticks: ticks.max(6) / 6,
            },
        ]
    }
}

/// A deterministic Poisson sample with mean `mean`.
fn poisson(mean: f64, rng: &mut Xoshiro256) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        // Knuth: count multiplications until the product drops
        // below e^-mean.
        let limit = (-mean).exp();
        let mut product = rng.next_f64().max(f64::MIN_POSITIVE);
        let mut count = 0usize;
        while product > limit {
            product *= rng.next_f64().max(f64::MIN_POSITIVE);
            count += 1;
        }
        count
    } else {
        // Normal approximation N(mean, mean), clamped at zero.
        let sample = mean + mean.sqrt() * rng.next_normal();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let n = sample.round().max(0.0) as usize;
        n
    }
}

/// Seeded Zipf-like page popularity: page *ranks* follow a power law
/// with exponent `s`, and a seeded permutation assigns ranks to page
/// ids so the hot set lands on different ring positions per seed.
#[derive(Clone, Debug)]
pub struct Popularity {
    /// `cdf[i]` = cumulative probability of ranks `0..=i`.
    cdf: Vec<f64>,
    /// `rank_to_page[rank]` = page id holding that rank.
    rank_to_page: Vec<usize>,
}

impl Popularity {
    /// A uniform distribution over `pages` (every page equally hot).
    #[must_use]
    pub fn uniform(pages: usize) -> Self {
        Self::zipf(0, pages, 0.0)
    }

    /// A Zipf distribution with exponent `s` over `pages`, ranks
    /// shuffled by `seed`. `s = 0` degenerates to uniform; `s ≈ 1`
    /// is classic web traffic.
    ///
    /// # Panics
    /// If `pages` is zero.
    #[must_use]
    pub fn zipf(seed: u64, pages: usize, s: f64) -> Self {
        assert!(pages > 0, "popularity needs at least one page");
        let mut weights = Vec::with_capacity(pages);
        for rank in 0..pages {
            #[allow(clippy::cast_precision_loss)]
            let w = 1.0 / ((rank + 1) as f64).powf(s);
            weights.push(w);
        }
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(pages);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        *cdf.last_mut().expect("pages > 0") = 1.0;
        let mut rank_to_page: Vec<usize> = (0..pages).collect();
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x21BF);
        rng.shuffle(&mut rank_to_page);
        Self { cdf, rank_to_page }
    }

    /// Number of pages in the distribution.
    #[must_use]
    pub fn pages(&self) -> usize {
        self.rank_to_page.len()
    }

    /// Draw one page id.
    #[must_use]
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        let u = rng.next_f64();
        let rank = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        self.rank_to_page[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_load_matches_shapes() {
        let steady = ArrivalProcess::PoissonSteady { rate: 20.0 };
        assert!((steady.expected(0) - 20.0).abs() < 1e-12);
        assert!((steady.expected(99) - 20.0).abs() < 1e-12);

        let wave = ArrivalProcess::Diurnal { base: 20.0, amplitude: 10.0, period_ticks: 40 };
        assert!(wave.expected(10) > wave.expected(0), "quarter-cycle is the crest");
        assert!(wave.expected(30) < wave.expected(0), "three-quarter is the trough");
        assert!(wave.expected(30) >= 0.0);

        let crowd =
            ArrivalProcess::FlashCrowd { base: 10.0, peak: 50.0, at_tick: 5, decay_ticks: 4 };
        assert!((crowd.expected(4) - 10.0).abs() < 1e-12, "pre-surge is base");
        assert!((crowd.expected(5) - 50.0).abs() < 1e-12, "surge hits peak instantly");
        assert!(crowd.expected(9) < crowd.expected(5), "and decays");
        assert!(crowd.expected(100) > 10.0 - 1e-9, "never below base");
    }

    #[test]
    fn poisson_sampling_is_seeded_and_roughly_unbiased() {
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        let p = ArrivalProcess::PoissonSteady { rate: 12.0 };
        let xs: Vec<usize> = (0..200).map(|t| p.sample(t, &mut a)).collect();
        let ys: Vec<usize> = (0..200).map(|t| p.sample(t, &mut b)).collect();
        assert_eq!(xs, ys, "same seed, same arrivals");
        #[allow(clippy::cast_precision_loss)]
        let mean = xs.iter().sum::<usize>() as f64 / xs.len() as f64;
        assert!((mean - 12.0).abs() < 2.0, "sample mean {mean} far from 12");
        // Large-mean path (normal approximation) also deterministic.
        let big = ArrivalProcess::PoissonSteady { rate: 200.0 };
        let mut c = Xoshiro256::seed_from_u64(9);
        let mut d = Xoshiro256::seed_from_u64(9);
        assert_eq!(big.sample(0, &mut c), big.sample(0, &mut d));
    }

    #[test]
    fn zipf_concentrates_and_uniform_does_not() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let zipf = Popularity::zipf(11, 100, 1.1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = sorted[..10].iter().sum();
        assert!(top10 > 10_000, "zipf(1.1): top 10 pages should draw >50%, got {top10}");

        let uniform = Popularity::uniform(100);
        let mut ucounts = vec![0usize; 100];
        for _ in 0..20_000 {
            ucounts[uniform.sample(&mut rng)] += 1;
        }
        let mut usorted = ucounts.clone();
        usorted.sort_unstable_by(|a, b| b.cmp(a));
        let utop10: usize = usorted[..10].iter().sum();
        assert!(utop10 < 5_000, "uniform: top 10 pages should draw ~10%, got {utop10}");
    }

    #[test]
    fn popularity_permutation_depends_on_seed() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let a = Popularity::zipf(1, 50, 1.0);
        let b = Popularity::zipf(2, 50, 1.0);
        let draw = |p: &Popularity, rng: &mut Xoshiro256| -> Vec<usize> {
            (0..64).map(|_| p.sample(rng)).collect()
        };
        let xs = draw(&a, &mut rng);
        let mut rng2 = Xoshiro256::seed_from_u64(1);
        let ys = draw(&b, &mut rng2);
        assert_ne!(xs, ys, "different popularity seeds must permute ranks differently");
    }
}
