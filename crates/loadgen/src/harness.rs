//! One measured load cell: an arrival process × a fault storm ×
//! a cluster configuration, reduced to the numbers the E-LOAD
//! experiment tabulates.

use faultsim::FaultStorm;
use partask::TaskRuntime;
use websim::cluster::{Cluster, ClusterConfig, ClusterReport, OutageScript};

use crate::arrival::ArrivalProcess;
use crate::traffic::{TrafficConfig, TrafficTrace};

/// Configuration of one load cell.
#[derive(Clone, Debug)]
pub struct LoadCellConfig {
    /// Traffic generation knobs (ticks, pages, popularity, seed).
    pub traffic: TrafficConfig,
    /// The tier under test.
    pub cluster: ClusterConfig,
    /// Optional scripted mid-storm replica kill/restart.
    pub outage: Option<OutageScript>,
}

impl Default for LoadCellConfig {
    fn default() -> Self {
        let cluster = ClusterConfig::default();
        Self {
            traffic: TrafficConfig { pages: cluster.server.pages, ..TrafficConfig::default() },
            cluster,
            outage: None,
        }
    }
}

/// The measured outcome of one load cell, ready for tables and JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadCell {
    /// Arrival-process name (table row key).
    pub process: &'static str,
    /// Storm shape name (table column key).
    pub storm: &'static str,
    /// Offered load in requests per simulated second.
    pub offered_rps: f64,
    /// Goodput in acknowledged requests per simulated second.
    pub acked_rps: f64,
    /// Median acknowledged latency (modelled ms).
    pub p50_ms: f64,
    /// 99th percentile acknowledged latency (modelled ms).
    pub p99_ms: f64,
    /// 99.9th percentile acknowledged latency (modelled ms).
    pub p999_ms: f64,
    /// The full conservation-checked cluster report.
    pub report: ClusterReport,
}

impl LoadCell {
    /// Whether the cell's tail stayed inside `budget_ms` at p99.
    #[must_use]
    pub fn within_p99_budget(&self, budget_ms: f64) -> bool {
        self.p99_ms <= budget_ms
    }
}

/// Generate the trace for `process`, drive `cluster_cfg` through
/// `storm` (with the optional outage), and fold the report into a
/// [`LoadCell`]. Deterministic end to end: the cell is a pure
/// function of the seeds in `cfg` and the storm.
#[must_use]
pub fn run_load_cell(
    rt: &TaskRuntime,
    process: &ArrivalProcess,
    storm: &FaultStorm,
    cfg: &LoadCellConfig,
) -> LoadCell {
    assert_eq!(
        cfg.traffic.pages, cfg.cluster.server.pages,
        "traffic catalogue must match the cluster's page count"
    );
    let trace = TrafficTrace::generate(process, &cfg.traffic);
    let mut cluster = Cluster::new(cfg.cluster.clone());
    let report = cluster.run_storm(rt, &trace.ticks, storm, cfg.outage);
    LoadCell {
        process: process.name(),
        storm: storm.name,
        offered_rps: report.offered_rps(),
        acked_rps: report.acked_rps(),
        p50_ms: report.latency.p50(),
        p99_ms: report.latency.p99(),
        p999_ms: report.latency.p999(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websim::server::ServerConfig;

    fn quick_cell_cfg(seed: u64) -> LoadCellConfig {
        let cluster = ClusterConfig {
            server: ServerConfig { pages: 60, time_scale: 1e-7, ..ServerConfig::default() },
            seed,
            ..ClusterConfig::default()
        };
        LoadCellConfig {
            traffic: TrafficConfig { seed, ticks: 18, pages: 60, zipf_s: 0.9 },
            cluster,
            outage: None,
        }
    }

    #[test]
    fn load_cell_is_deterministic_and_conserved() {
        let storm = FaultStorm::burst(0x10AD);
        let process = ArrivalProcess::PoissonSteady { rate: 14.0 };
        let rt = TaskRuntime::builder().workers(4).build();
        let a = run_load_cell(&rt, &process, &storm, &quick_cell_cfg(0xE));
        let b = run_load_cell(&rt, &process, &storm, &quick_cell_cfg(0xE));
        rt.shutdown();
        assert_eq!(a, b, "same seeds must reproduce the whole cell");
        assert_eq!(a.report.violations(), Vec::<String>::new());
        assert!(a.offered_rps > 0.0);
        assert!(a.acked_rps > 0.0);
        assert!(a.p99_ms >= a.p50_ms);
    }

    #[test]
    fn all_three_processes_drive_the_tier() {
        let storm = FaultStorm::brownout(0xD1A);
        let rt = TaskRuntime::builder().workers(4).build();
        for process in ArrivalProcess::all(12.0, 18) {
            let cell = run_load_cell(&rt, &process, &storm, &quick_cell_cfg(0x5EED));
            assert_eq!(cell.report.violations(), Vec::<String>::new(), "{}", cell.process);
            assert!(cell.report.issued > 0, "{} generated no traffic", cell.process);
        }
        rt.shutdown();
    }
}
