//! Materialised traffic: a whole run's arrivals decided up front
//! (open loop), or generated tick-by-tick by a finite user population
//! reacting to answers (closed loop).

use parc_util::rng::{SplitMix64, Xoshiro256};

use crate::arrival::{ArrivalProcess, Popularity};

/// Knobs of an open-loop traffic trace.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// Seed for both the arrival sampler and the popularity draw.
    pub seed: u64,
    /// Number of ticks to generate.
    pub ticks: usize,
    /// Pages in the catalogue (must match the cluster's server).
    pub pages: usize,
    /// Zipf exponent for page popularity (0 = uniform).
    pub zipf_s: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self { seed: 0x074A_FF1C, ticks: 48, pages: 200, zipf_s: 0.9 }
    }
}

/// An open-loop run: the page requested by every arrival of every
/// tick, fixed before the cluster sees any of it. Open-loop traffic
/// does not slow down when the tier degrades — which is exactly why
/// it needs shedding.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficTrace {
    /// `ticks[t]` = pages requested at tick `t`, in arrival order.
    pub ticks: Vec<Vec<usize>>,
}

impl TrafficTrace {
    /// Generate the trace for `process` under `cfg`. Same
    /// `(process, cfg)` → identical trace, always.
    #[must_use]
    pub fn generate(process: &ArrivalProcess, cfg: &TrafficConfig) -> Self {
        let mut arrivals =
            Xoshiro256::seed_from_u64(SplitMix64::mix(cfg.seed ^ 0xA44));
        let mut pages = Xoshiro256::seed_from_u64(SplitMix64::mix(cfg.seed ^ 0xBEE));
        let pop = Popularity::zipf(cfg.seed, cfg.pages, cfg.zipf_s);
        let ticks = (0..cfg.ticks)
            .map(|t| {
                let n = process.sample(t, &mut arrivals);
                (0..n).map(|_| pop.sample(&mut pages)).collect()
            })
            .collect();
        Self { ticks }
    }

    /// Total requests across all ticks.
    #[must_use]
    pub fn total_requests(&self) -> usize {
        self.ticks.iter().map(Vec::len).sum()
    }

    /// The largest single-tick burst.
    #[must_use]
    pub fn peak_tick(&self) -> usize {
        self.ticks.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Knobs of a closed-loop population.
#[derive(Clone, Debug)]
pub struct ClosedLoopConfig {
    /// Seed for think times and page choices.
    pub seed: u64,
    /// Concurrent users in the population.
    pub users: usize,
    /// Pages in the catalogue.
    pub pages: usize,
    /// Zipf exponent for page popularity.
    pub zipf_s: f64,
    /// Mean think time between an answer and the next request, in
    /// ticks (exponential).
    pub think_ticks: f64,
    /// Simulated ms per tick (converts answer latency to ticks).
    pub tick_ms: f64,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        Self { seed: 0xC105ED, users: 64, pages: 200, zipf_s: 0.9, think_ticks: 2.0, tick_ms: 100.0 }
    }
}

/// A closed-loop user population: each user issues one request, waits
/// for its (modelled) answer plus a think time, then issues the next.
/// Slow answers *reduce* offered load — the stabilising feedback that
/// open-loop traffic lacks, and the regime where backpressure shows
/// up as a smaller next tick rather than a deeper queue.
#[derive(Clone, Debug)]
pub struct ClosedLoop {
    cfg: ClosedLoopConfig,
    pop: Popularity,
    rng: Xoshiro256,
    /// Tick at which each user becomes ready to issue again.
    ready_at: Vec<f64>,
    issued_total: u64,
}

impl ClosedLoop {
    /// Build a population, all users ready at tick 0.
    #[must_use]
    pub fn new(cfg: ClosedLoopConfig) -> Self {
        let pop = Popularity::zipf(cfg.seed, cfg.pages, cfg.zipf_s);
        let rng = Xoshiro256::seed_from_u64(SplitMix64::mix(cfg.seed ^ 0x0_5E5));
        let ready_at = vec![0.0; cfg.users];
        Self { cfg, pop, rng, ready_at, issued_total: 0 }
    }

    /// Requests issued across all ticks so far.
    #[must_use]
    pub fn issued_total(&self) -> u64 {
        self.issued_total
    }

    /// The pages requested at `tick` — every user whose ready time
    /// has come issues exactly one request, in user order.
    #[must_use]
    pub fn arrivals(&mut self, tick: usize) -> Vec<usize> {
        #[allow(clippy::cast_precision_loss)]
        let now = tick as f64;
        let mut pages = Vec::new();
        for user in 0..self.cfg.users {
            if self.ready_at[user] <= now {
                pages.push(self.pop.sample(&mut self.rng));
                // Busy until the answer lands; `complete` refines it.
                self.ready_at[user] = f64::INFINITY;
                self.issued_total += 1;
            }
        }
        pages
    }

    /// Report the tick's outcomes back to the population, in the same
    /// order `arrivals` returned pages: `latency_ms[i] = Some(l)` if
    /// request `i` was answered in `l` simulated ms, `None` if it was
    /// shed or failed (the user backs off one think time and retries).
    pub fn complete(&mut self, tick: usize, latency_ms: &[Option<f64>]) {
        #[allow(clippy::cast_precision_loss)]
        let now = tick as f64;
        let mut idx = 0usize;
        for user in 0..self.cfg.users {
            if self.ready_at[user].is_infinite() {
                let think = self.rng.next_exp(1.0 / self.cfg.think_ticks.max(1e-9));
                let wait = match latency_ms.get(idx).copied().flatten() {
                    Some(l) => l / self.cfg.tick_ms.max(1e-9),
                    None => 0.0,
                };
                self.ready_at[user] = now + 1.0 + wait + think;
                idx += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_reproducible_and_seed_sensitive() {
        let cfg = TrafficConfig { seed: 0xAB, ticks: 24, pages: 80, zipf_s: 0.9 };
        let p = ArrivalProcess::PoissonSteady { rate: 15.0 };
        let a = TrafficTrace::generate(&p, &cfg);
        let b = TrafficTrace::generate(&p, &cfg);
        assert_eq!(a, b, "same seed, same trace");
        let other = TrafficTrace::generate(&p, &TrafficConfig { seed: 0xAC, ..cfg });
        assert_ne!(a, other, "different seed, different trace");
        assert!(a.total_requests() > 200, "15/tick × 24 ticks should top 200");
    }

    #[test]
    fn flash_crowd_trace_has_its_spike() {
        let cfg = TrafficConfig { seed: 0xF1A5, ticks: 30, pages: 80, zipf_s: 0.0 };
        let p = ArrivalProcess::FlashCrowd { base: 5.0, peak: 60.0, at_tick: 10, decay_ticks: 5 };
        let trace = TrafficTrace::generate(&p, &cfg);
        let pre: usize = trace.ticks[..10].iter().map(Vec::len).sum();
        let surge: usize = trace.ticks[10..15].iter().map(Vec::len).sum();
        #[allow(clippy::cast_precision_loss)]
        let (pre_rate, surge_rate) = (pre as f64 / 10.0, surge as f64 / 5.0);
        assert!(
            surge_rate > pre_rate * 3.0,
            "surge rate {surge_rate} should dwarf pre-rate {pre_rate}"
        );
        assert!(trace.peak_tick() >= 30, "peak tick should reflect the crowd");
    }

    #[test]
    fn closed_loop_slows_down_when_answers_slow_down() {
        let cfg = ClosedLoopConfig {
            seed: 0xD00D,
            users: 40,
            pages: 50,
            zipf_s: 0.5,
            think_ticks: 1.0,
            tick_ms: 100.0,
        };
        // Fast tier: answers in 20ms. Slow tier: answers in 900ms.
        let run = |answer_ms: f64| -> u64 {
            let mut pop = ClosedLoop::new(cfg.clone());
            for tick in 0..40 {
                let pages = pop.arrivals(tick);
                let outcomes: Vec<Option<f64>> = pages.iter().map(|_| Some(answer_ms)).collect();
                pop.complete(tick, &outcomes);
            }
            pop.issued_total()
        };
        let fast = run(20.0);
        let slow = run(900.0);
        assert!(
            slow < fast * 3 / 4,
            "closed loop must self-throttle: slow {slow} !< 3/4 of fast {fast}"
        );
    }

    #[test]
    fn closed_loop_is_deterministic() {
        let cfg = ClosedLoopConfig::default();
        let run = || -> Vec<Vec<usize>> {
            let mut pop = ClosedLoop::new(cfg.clone());
            (0..20)
                .map(|t| {
                    let pages = pop.arrivals(t);
                    let outcomes: Vec<Option<f64>> =
                        pages.iter().map(|&p| if p % 7 == 0 { None } else { Some(120.0) }).collect();
                    pop.complete(t, &outcomes);
                    pages
                })
                .collect()
        };
        assert_eq!(run(), run());
    }
}
