//! # parc-loadgen — seeded traffic for the sharded web tier
//!
//! The course's web-access project asks "how many connections should a
//! client open?"; the production question one level up is "how much
//! traffic can the *tier* absorb before its tail latency blows the
//! budget?". Answering that needs a load generator whose traffic is as
//! reproducible as the tier it drives — otherwise a regression in the
//! balancer is indistinguishable from a lucky arrival sequence.
//!
//! Everything here is seeded and deterministic:
//!
//! * [`arrival`] — arrival processes ([`ArrivalProcess::PoissonSteady`]
//!   open-loop Poisson traffic, [`ArrivalProcess::Diurnal`] day/night
//!   waves, [`ArrivalProcess::FlashCrowd`] a step surge with
//!   exponential decay) sampled tick by tick with a seeded RNG, plus a
//!   Zipf page-popularity model so hot pages concentrate on their
//!   owner replicas the way real traffic does.
//! * [`traffic`] — materialises a whole run up front as a
//!   [`traffic::TrafficTrace`] (one `Vec<page>` per tick), and a
//!   [`traffic::ClosedLoop`] variant where a finite user population
//!   waits for answers before re-issuing — the regime where
//!   backpressure visibly flattens offered load.
//! * [`harness`] — [`harness::run_load_cell`] glues a trace, a
//!   [`faultsim::FaultStorm`] and a [`websim::cluster::Cluster`] into
//!   one measured cell: sustained requests/s, goodput, and latency
//!   quantiles from the conservation-checked
//!   [`websim::cluster::ClusterReport`].
//!
//! Same seeds → bit-identical traces → bit-identical reports, across
//! reruns and worker-pool sizes. The E-LOAD experiment
//! (`examples/load_storm.rs`) and CI's `load` job gate on exactly
//! that.

pub mod arrival;
pub mod harness;
pub mod traffic;

pub use arrival::{ArrivalProcess, Popularity};
pub use harness::{run_load_cell, LoadCell, LoadCellConfig};
pub use traffic::{ClosedLoop, ClosedLoopConfig, TrafficConfig, TrafficTrace};
