//! Descriptive statistics used by every experiment harness.
//!
//! [`Summary`] computes batch statistics (mean, standard deviation,
//! percentiles) from a sample vector; [`Welford`] accumulates mean and
//! variance online without storing samples; [`Histogram`] renders a
//! fixed-bucket distribution as text for the experiment reports.

/// Batch summary statistics over a set of `f64` samples.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    stddev: f64,
}

impl Summary {
    /// Build a summary from samples. Panics if `samples` is empty or
    /// contains NaN.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "summary of an empty sample set");
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "samples must not contain NaN"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Self {
            sorted,
            mean,
            stddev: var.sqrt(),
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples (never: construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.stddev
    }

    /// Smallest sample.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    #[must_use]
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Linear-interpolated percentile, `p` in `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (self.sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median (50th percentile).
    #[must_use]
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Render as `mean ± stddev [min..max]` with the given unit.
    #[must_use]
    pub fn render(&self, unit: &str) -> String {
        format!(
            "{:.3} ± {:.3} {unit} [min {:.3}, p50 {:.3}, p95 {:.3}, max {:.3}]",
            self.mean,
            self.stddev,
            self.min(),
            self.median(),
            self.percentile(95.0),
            self.max()
        )
    }
}

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable; suitable for accumulating millions of samples
/// without storing them.
#[derive(Clone, Debug, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// New, empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction of
    /// partial statistics, Chan et al.).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 if fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+inf if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Fixed-width-bucket histogram with text rendering.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Histogram over `[lo, hi)` with `buckets` equal-width buckets.
    #[must_use]
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(buckets > 0, "need at least one bucket");
        Self {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total recorded observations, including out-of-range ones.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Count in bucket `i`.
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Observations below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Render an ASCII bar chart, `width` characters for the largest
    /// bucket.
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let bucket_width = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut out = String::new();
        for (i, &count) in self.buckets.iter().enumerate() {
            let lo = self.lo + bucket_width * i as f64;
            let bar_len = (count as usize * width) / max as usize;
            out.push_str(&format!(
                "{:>10.3}..{:<10.3} | {:<width$} {}\n",
                lo,
                lo + bucket_width,
                "#".repeat(bar_len),
                count,
                width = width
            ));
        }
        if self.underflow > 0 {
            out.push_str(&format!("  underflow: {}\n", self.underflow));
        }
        if self.overflow > 0 {
            out.push_str(&format!("  overflow: {}\n", self.overflow));
        }
        out
    }
}

/// Geometric mean of strictly positive values — the conventional way
/// to aggregate speedups across heterogeneous workloads.
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    assert!(values.iter().all(|&v| v > 0.0), "values must be positive");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.median() - 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.stddev() - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_percentile_interpolates() {
        let s = Summary::from_samples(&[0.0, 10.0]);
        assert!((s.percentile(25.0) - 2.5).abs() < 1e-12);
        assert!((s.percentile(0.0) - 0.0).abs() < 1e-12);
        assert!((s.percentile(100.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_samples(&[42.0]);
        assert_eq!(s.percentile(0.0), 42.0);
        assert_eq!(s.percentile(99.0), 42.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn summary_empty_panics() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn summary_nan_panics() {
        let _ = Summary::from_samples(&[1.0, f64::NAN]);
    }

    #[test]
    fn summary_unsorted_input() {
        let s = Summary::from_samples(&[5.0, 1.0, 3.0]);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.median(), 3.0);
    }

    #[test]
    fn welford_matches_batch() {
        let samples: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let batch = Summary::from_samples(&samples);
        let mut w = Welford::new();
        for &s in &samples {
            w.push(s);
        }
        assert!((w.mean() - batch.mean()).abs() < 1e-9);
        assert!((w.stddev() - batch.stddev()).abs() < 1e-9);
        assert_eq!(w.min(), batch.min());
        assert_eq!(w.max(), batch.max());
        assert_eq!(w.count(), 100);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let samples: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut whole = Welford::new();
        for &s in &samples {
            whole.push(s);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &s in &samples[..400] {
            left.push(s);
        }
        for &s in &samples[400..] {
            right.push(s);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.clone();
        a.merge(&Welford::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_defaults() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0); // underflow
        h.record(0.0); // bucket 0
        h.record(9.999); // bucket 9
        h.record(10.0); // overflow
        h.record(5.0); // bucket 5
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(9), 1);
        assert_eq!(h.bucket(5), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_render_contains_counts() {
        let mut h = Histogram::new(0.0, 4.0, 2);
        h.record(1.0);
        h.record(1.5);
        h.record(3.0);
        let text = h.render(20);
        assert!(text.contains('#'));
        assert!(text.contains('2'));
    }

    #[test]
    fn geometric_mean_of_speedups() {
        let g = geometric_mean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }
}
