//! # parc-util
//!
//! Shared foundation for the SoftEng 751 reproduction: deterministic
//! pseudo-random number generation, descriptive statistics, timing
//! helpers and plain-text report rendering.
//!
//! Every experiment in the workspace is seeded, so any result in
//! `EXPERIMENTS.md` can be regenerated bit-for-bit. The PRNGs here
//! (SplitMix64 and Xoshiro256++) are implemented from scratch so the
//! workspace does not depend on an external crate's evolving API for
//! its own determinism guarantees.
//!
//! ```
//! use parc_util::rng::Xoshiro256;
//! let mut rng = Xoshiro256::seed_from_u64(42);
//! let x = rng.gen_range_usize(0..10);
//! assert!(x < 10);
//! ```

pub mod rng;
pub mod stats;
pub mod table;
pub mod timer;

pub use rng::{SplitMix64, Xoshiro256};
pub use stats::{Histogram, Summary, Welford};
pub use table::Table;
pub use timer::{measure, measure_n, Stopwatch};
