//! Deterministic pseudo-random number generators.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny, fast generator mainly used to seed other
//!   generators and to hash seeds into independent streams.
//! * [`Xoshiro256`] — xoshiro256++, the workhorse generator used by all
//!   workload generators in the workspace. It has a 256-bit state,
//!   passes the usual statistical test batteries and supports
//!   `jump()` for cheap independent parallel streams.
//!
//! Both are implemented from the public-domain reference algorithms by
//! Blackman & Vigna.

use std::ops::Range;

/// SplitMix64: a 64-bit generator with a single 64-bit word of state.
///
/// Primarily used to expand a `u64` seed into the larger state of
/// [`Xoshiro256`], and as a cheap per-item hash for deterministic
/// workload generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Any seed (including 0) is fine.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Stateless mix of a single value — handy for deterministic
    /// per-index randomness without carrying a generator around.
    #[inline]
    #[must_use]
    pub fn mix(value: u64) -> u64 {
        SplitMix64::new(value).next_u64()
    }
}

/// xoshiro256++ 1.0 — general-purpose 64-bit generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed the 256-bit state by running SplitMix64 over `seed`,
    /// per the reference implementation's recommendation.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper bits of the 64-bit output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn gen_range_f64(&mut self, range: Range<f64>) -> f64 {
        range.start + self.next_f64() * (range.end - range.start)
    }

    /// Uniform `u64` in `[0, bound)` using Lemire's unbiased method
    /// with rejection.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Fast path for powers of two.
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = u128::from(r) * u128::from(bound);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform `usize` in `range`.
    pub fn gen_range_usize(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.next_below((range.end - range.start) as u64) as usize
    }

    /// Uniform `u64` in `range`.
    pub fn gen_range_u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.next_below(range.end - range.start)
    }

    /// Uniform `i64` in `range`.
    pub fn gen_range_i64(&mut self, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(self.next_below(span) as i64)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal deviate via the Box–Muller transform.
    pub fn next_normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Exponential deviate with the given rate parameter `lambda`.
    pub fn next_exp(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "rate must be positive");
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        -u.ln() / lambda
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Choose a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot choose from an empty slice");
        &slice[self.gen_range_usize(0..slice.len())]
    }

    /// Sample an index from a discrete distribution given non-negative
    /// weights (at least one must be positive).
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            debug_assert!(w >= 0.0, "negative weight");
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// The xoshiro256++ jump function: advances the stream by 2^128
    /// steps, yielding a generator statistically independent from the
    /// original. Used to derive per-worker streams.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }

    /// Derive the `n`-th independent stream from this generator
    /// without disturbing it.
    #[must_use]
    pub fn stream(&self, n: usize) -> Self {
        let mut copy = self.clone();
        for _ in 0..=n {
            copy.jump();
        }
        copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain C
        // implementation.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(first, sm2.next_u64());
        assert_eq!(second, sm2.next_u64());
    }

    #[test]
    fn splitmix_known_value_seed_zero() {
        // From the reference implementation: first output for seed 0.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn xoshiro_determinism() {
        let mut a = Xoshiro256::seed_from_u64(99);
        let mut b = Xoshiro256::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_different_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3, "streams should be effectively disjoint");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_below_power_of_two() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(rng.next_below(16) < 16);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn gen_range_usize_endpoints() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..2000 {
            let v = rng.gen_range_usize(5..8);
            assert!((5..8).contains(&v));
            hit_lo |= v == 5;
            hit_hi |= v == 7;
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn gen_range_i64_negative_span() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range_i64(-10..-3);
            assert!((-10..-3).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256::seed_from_u64(17);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Xoshiro256::seed_from_u64(23);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.next_exp(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} should be ~1/lambda");
    }

    #[test]
    fn bool_probability() {
        let mut rng = Xoshiro256::seed_from_u64(29);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01);
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut rng = Xoshiro256::seed_from_u64(31);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.choose_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight bucket must never be chosen");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio} should be ~3");
    }

    #[test]
    fn jump_produces_disjoint_streams() {
        let base = Xoshiro256::seed_from_u64(42);
        let mut s0 = base.stream(0);
        let mut s1 = base.stream(1);
        let collisions = (0..1000).filter(|_| s0.next_u64() == s1.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn stream_does_not_mutate_parent() {
        let base = Xoshiro256::seed_from_u64(42);
        let snapshot = base.clone();
        let _ = base.stream(3);
        assert_eq!(base, snapshot);
    }
}
