//! Timing helpers for experiment harnesses.
//!
//! Criterion drives the statistically rigorous benchmarks; these
//! helpers exist for the lighter-weight in-example measurements and
//! for experiments that need the raw per-iteration samples (e.g. to
//! feed a [`crate::stats::Histogram`]).

use std::time::{Duration, Instant};

use crate::stats::Summary;

/// A resettable stopwatch.
#[derive(Clone, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start a new stopwatch.
    #[must_use]
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start (or last reset).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in milliseconds as `f64`.
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Restart the stopwatch, returning the time that had elapsed.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let elapsed = now - self.start;
        self.start = now;
        elapsed
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Time one invocation of `f`, returning its result and the duration.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.elapsed())
}

/// Run `f` `n` times (after `warmup` unmeasured runs) and summarise
/// the per-iteration wall time in milliseconds.
pub fn measure_n<T>(n: usize, warmup: usize, mut f: impl FnMut() -> T) -> Summary {
    assert!(n > 0, "need at least one measured iteration");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let sw = Stopwatch::start();
        std::hint::black_box(f());
        samples.push(sw.elapsed_ms());
    }
    Summary::from_samples(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn lap_resets() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = sw.lap();
        assert!(first >= Duration::from_millis(1));
        // After a lap, elapsed starts near zero again.
        assert!(sw.elapsed() < first + Duration::from_millis(50));
    }

    #[test]
    fn measure_returns_value_and_positive_time() {
        let (value, dur) = measure(|| (0..1000u64).sum::<u64>());
        assert_eq!(value, 499_500);
        assert!(dur >= Duration::ZERO);
    }

    #[test]
    fn measure_n_produces_summary() {
        let summary = measure_n(5, 1, || std::hint::black_box((0..100u64).product::<u64>()));
        assert_eq!(summary.len(), 5);
        assert!(summary.min() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn measure_n_rejects_zero() {
        let _ = measure_n(0, 0, || ());
    }
}
