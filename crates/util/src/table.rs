//! Plain-text table rendering for experiment reports.
//!
//! Every example binary and the EXPERIMENTS.md regeneration path print
//! their results through [`Table`], so that "the same rows the paper
//! reports" come out in a uniform, diffable format.

use std::fmt::Write as _;

/// A simple left/right-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Panics if the width does not match the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row from displayable values.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let rendered: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&rendered)
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table. The first column is left-aligned, remaining
    /// columns right-aligned (the usual layout for label + metrics).
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<width$}", cell, width = widths[0]);
                } else {
                    let _ = write!(out, "  {:>width$}", cell, width = widths[i]);
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// Format a duration in a human-friendly adaptive unit.
#[must_use]
pub fn fmt_duration(d: std::time::Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Format a ratio as `N.NNx` (speedup/slowdown notation).
#[must_use]
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_renders_header_and_rows() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["beta".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("name"));
        assert!(s.contains("alpha"));
        assert!(s.contains("22"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn table_alignment_pads_columns() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["x".into(), "12345".into()]);
        let s = t.render();
        // Right-aligned second column: header "b" padded to width 5.
        assert!(s.lines().next().unwrap().ends_with("    b"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_wrong_width() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn row_display_converts() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row_display(&[1.5, 2.25]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("2.25"));
    }

    #[test]
    fn fmt_duration_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_millis(2500)), "2.50 s");
        assert!(fmt_duration(Duration::from_micros(2)).contains("µs"));
    }

    #[test]
    fn fmt_ratio_format() {
        assert_eq!(fmt_ratio(2.0), "2.00x");
        assert_eq!(fmt_ratio(0.5), "0.50x");
    }
}
