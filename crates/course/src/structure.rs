//! The course structure (Figure 2): 6 teaching weeks, a 2-week study
//! break, 6 more teaching weeks, with each week's use.

use std::fmt;

/// How a course week is used (Figure 2's second column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WeekRole {
    /// Instructor-led teaching (IT).
    InstructorTaught,
    /// Assessment (A) — a test.
    Assessment,
    /// "Free" project work (P).
    ProjectWork,
    /// Student-led teaching (ST) — group seminars.
    StudentTaught,
    /// Mid-semester study break.
    StudyBreak,
}

impl WeekRole {
    /// Figure 2's single-letter code.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            WeekRole::InstructorTaught => "IT",
            WeekRole::Assessment => "A",
            WeekRole::ProjectWork => "P",
            WeekRole::StudentTaught => "ST",
            WeekRole::StudyBreak => "--",
        }
    }
}

impl fmt::Display for WeekRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One calendar week of the course. A week can serve several uses
/// (e.g. week 6: test *and* project-topic discussion).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Week {
    /// Calendar position (1-based, breaks included).
    pub number: usize,
    /// Uses of the week.
    pub roles: Vec<WeekRole>,
    /// What happens.
    pub summary: &'static str,
}

/// The SoftEng 751 plan per Section III-A: essentials of
/// shared-memory parallel programming in weeks 1–5; week 6 test +
/// topic discussion; study break; weeks 7–10 group seminars
/// (examinable) alongside project work; week 11 Test 2; final weeks
/// dedicated to implementation and report, both due in the last week.
#[must_use]
pub fn course_plan() -> Vec<Week> {
    let mut weeks = Vec::new();
    for n in 1..=5 {
        weeks.push(Week {
            number: n,
            roles: vec![WeekRole::InstructorTaught],
            summary: "core shared-memory parallel programming concepts",
        });
    }
    weeks.push(Week {
        number: 6,
        roles: vec![WeekRole::Assessment, WeekRole::InstructorTaught],
        summary: "Test 1 (25%) on weeks 1-5; project topics discussed",
    });
    for n in 7..=8 {
        weeks.push(Week {
            number: n,
            roles: vec![WeekRole::StudyBreak],
            summary: "mid-semester study break",
        });
    }
    for n in 9..=12 {
        weeks.push(Week {
            number: n,
            roles: vec![WeekRole::StudentTaught, WeekRole::ProjectWork],
            summary: "group seminars (2 x 20min+5 per slot, examinable) + project work",
        });
    }
    weeks.push(Week {
        number: 13,
        roles: vec![WeekRole::Assessment, WeekRole::ProjectWork],
        summary: "Test 2 (10%) on seminar content; project work",
    });
    weeks.push(Week {
        number: 14,
        roles: vec![WeekRole::ProjectWork],
        summary: "implementation (25%) and report (20%) due",
    });
    weeks
}

/// Render Figure 2 as an ASCII table.
#[must_use]
pub fn render_figure2() -> String {
    let mut t = parc_util::Table::new(
        "SoftEng 751 course structure (Figure 2)",
        &["week", "use", "summary"],
    );
    for w in course_plan() {
        let roles: Vec<&str> = w.roles.iter().map(|r| r.code()).collect();
        t.row(&[w.number.to_string(), roles.join("+"), w.summary.to_string()]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_has_twelve_teaching_weeks_and_break() {
        let plan = course_plan();
        let teaching = plan
            .iter()
            .filter(|w| !w.roles.contains(&WeekRole::StudyBreak))
            .count();
        let breaks = plan
            .iter()
            .filter(|w| w.roles.contains(&WeekRole::StudyBreak))
            .count();
        assert_eq!(teaching, 12, "semester = 6 + 6 teaching weeks");
        assert_eq!(breaks, 2, "2-week study break");
    }

    #[test]
    fn first_five_weeks_are_instructor_taught() {
        let plan = course_plan();
        for w in &plan[0..5] {
            assert_eq!(w.roles, vec![WeekRole::InstructorTaught]);
        }
    }

    #[test]
    fn tests_fall_in_weeks_6_and_post_seminars() {
        let plan = course_plan();
        let assessments: Vec<usize> = plan
            .iter()
            .filter(|w| w.roles.contains(&WeekRole::Assessment))
            .map(|w| w.number)
            .collect();
        assert_eq!(assessments.len(), 2);
        assert_eq!(assessments[0], 6, "Test 1 concludes the lecture block");
        // Test 2 follows the four seminar weeks.
        let last_seminar = plan
            .iter()
            .filter(|w| w.roles.contains(&WeekRole::StudentTaught))
            .map(|w| w.number)
            .max()
            .unwrap();
        assert_eq!(assessments[1], last_seminar + 1);
    }

    #[test]
    fn seminar_weeks_are_four() {
        let n = course_plan()
            .iter()
            .filter(|w| w.roles.contains(&WeekRole::StudentTaught))
            .count();
        assert_eq!(n, 4, "seminars run weeks 7-10 of teaching");
    }

    #[test]
    fn week_numbers_consecutive() {
        let plan = course_plan();
        for (i, w) in plan.iter().enumerate() {
            assert_eq!(w.number, i + 1);
        }
    }

    #[test]
    fn figure2_renders() {
        let fig = render_figure2();
        assert!(fig.contains("Test 1"));
        assert!(fig.contains("ST+P"));
        assert!(fig.contains("IT"));
    }

    #[test]
    fn codes_roundtrip() {
        assert_eq!(WeekRole::InstructorTaught.to_string(), "IT");
        assert_eq!(WeekRole::StudentTaught.code(), "ST");
        assert_eq!(WeekRole::Assessment.code(), "A");
        assert_eq!(WeekRole::ProjectWork.code(), "P");
    }
}
