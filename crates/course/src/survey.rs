//! Likert-scale course evaluation (Section V-A).
//!
//! The paper reports: 95 % of students agreed or strongly agreed that
//! "the objectives of the lectures were clearly explained" and "the
//! lecturer stimulated my engagement in the learning process"; 92 %
//! that "the class discussions were effective in helping me learn".
//! This module provides the aggregation machinery and a synthetic
//! cohort calibrated to those marginals (the raw responses are not
//! public), regenerating the E-SURVEY table.

use parc_util::rng::Xoshiro256;

/// A five-point Likert response.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Likert {
    /// Strongly disagree.
    StronglyDisagree,
    /// Disagree.
    Disagree,
    /// Neutral.
    Neutral,
    /// Agree.
    Agree,
    /// Strongly agree.
    StronglyAgree,
}

impl Likert {
    /// All levels, worst to best.
    #[must_use]
    pub fn all() -> [Likert; 5] {
        [
            Likert::StronglyDisagree,
            Likert::Disagree,
            Likert::Neutral,
            Likert::Agree,
            Likert::StronglyAgree,
        ]
    }

    /// Does this count as agreement (agree or strongly agree)?
    #[must_use]
    pub fn agrees(self) -> bool {
        matches!(self, Likert::Agree | Likert::StronglyAgree)
    }

    /// Numeric score 1–5 for mean calculations.
    #[must_use]
    pub fn score(self) -> u8 {
        match self {
            Likert::StronglyDisagree => 1,
            Likert::Disagree => 2,
            Likert::Neutral => 3,
            Likert::Agree => 4,
            Likert::StronglyAgree => 5,
        }
    }
}

/// A survey question with its collected responses.
#[derive(Clone, Debug)]
pub struct SurveyQuestion {
    /// The question text.
    pub text: String,
    /// Responses.
    pub responses: Vec<Likert>,
}

impl SurveyQuestion {
    /// New question with responses.
    #[must_use]
    pub fn new(text: &str, responses: Vec<Likert>) -> Self {
        Self {
            text: text.to_string(),
            responses,
        }
    }

    /// Percentage of respondents who agree or strongly agree —
    /// the statistic the paper reports.
    #[must_use]
    pub fn agreement_pct(&self) -> f64 {
        if self.responses.is_empty() {
            return 0.0;
        }
        let agree = self.responses.iter().filter(|r| r.agrees()).count();
        100.0 * agree as f64 / self.responses.len() as f64
    }

    /// Mean numeric score (1–5).
    #[must_use]
    pub fn mean_score(&self) -> f64 {
        if self.responses.is_empty() {
            return 0.0;
        }
        self.responses.iter().map(|r| f64::from(r.score())).sum::<f64>()
            / self.responses.len() as f64
    }

    /// Response histogram in [`Likert::all`] order.
    #[must_use]
    pub fn distribution(&self) -> [usize; 5] {
        let mut counts = [0usize; 5];
        for r in &self.responses {
            counts[(r.score() - 1) as usize] += 1;
        }
        counts
    }
}

/// Build a synthetic cohort of `n` responses whose agreement rate is
/// as close to `target_pct` as an `n`-person cohort allows: the agree
/// block splits between Agree/StronglyAgree, the rest between
/// Neutral/Disagree, deterministically per seed.
#[must_use]
pub fn synthesize_responses(n: usize, target_pct: f64, seed: u64) -> Vec<Likert> {
    assert!((0.0..=100.0).contains(&target_pct));
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let agree_count = ((target_pct / 100.0) * n as f64).round() as usize;
    let mut responses = Vec::with_capacity(n);
    for _ in 0..agree_count {
        responses.push(if rng.gen_bool(0.5) {
            Likert::StronglyAgree
        } else {
            Likert::Agree
        });
    }
    for _ in agree_count..n {
        responses.push(if rng.gen_bool(0.6) {
            Likert::Neutral
        } else {
            Likert::Disagree
        });
    }
    rng.shuffle(&mut responses);
    responses
}

/// The paper's three reported questions, with synthetic cohorts (the
/// class had "almost 60 students"; we use 60) calibrated to the
/// published agreement rates.
#[must_use]
pub fn softeng751_survey(seed: u64) -> Vec<SurveyQuestion> {
    vec![
        SurveyQuestion::new(
            "The objectives of the lectures were clearly explained",
            synthesize_responses(60, 95.0, seed),
        ),
        SurveyQuestion::new(
            "The lecturer stimulated my engagement in the learning process",
            synthesize_responses(60, 95.0, seed.wrapping_add(1)),
        ),
        SurveyQuestion::new(
            "The class discussions were effective in helping me learn",
            synthesize_responses(60, 92.0, seed.wrapping_add(2)),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_and_score_semantics() {
        assert!(Likert::Agree.agrees());
        assert!(Likert::StronglyAgree.agrees());
        assert!(!Likert::Neutral.agrees());
        assert!(!Likert::Disagree.agrees());
        let scores: Vec<u8> = Likert::all().iter().map(|l| l.score()).collect();
        assert_eq!(scores, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn agreement_pct_computation() {
        let q = SurveyQuestion::new(
            "q",
            vec![
                Likert::StronglyAgree,
                Likert::Agree,
                Likert::Neutral,
                Likert::Disagree,
            ],
        );
        assert!((q.agreement_pct() - 50.0).abs() < 1e-12);
        assert!((q.mean_score() - 3.5).abs() < 1e-12);
        assert_eq!(q.distribution(), [0, 1, 1, 1, 1]);
    }

    #[test]
    fn empty_survey_is_zero() {
        let q = SurveyQuestion::new("q", vec![]);
        assert_eq!(q.agreement_pct(), 0.0);
        assert_eq!(q.mean_score(), 0.0);
    }

    #[test]
    fn synthetic_cohort_hits_target_within_rounding() {
        for (n, target) in [(60, 95.0), (60, 92.0), (40, 75.0), (100, 50.0)] {
            let responses = synthesize_responses(n, target, 9);
            let q = SurveyQuestion::new("q", responses);
            let granularity = 100.0 / n as f64;
            assert!(
                (q.agreement_pct() - target).abs() <= granularity / 2.0 + 1e-9,
                "n={n} target={target} got={}",
                q.agreement_pct()
            );
        }
    }

    #[test]
    fn paper_marginals_reproduced() {
        let survey = softeng751_survey(0x2013);
        assert_eq!(survey.len(), 3);
        // 60 students: 95% -> 57 agree, 92% -> 55.2 -> 55 agree.
        assert!((survey[0].agreement_pct() - 95.0).abs() < 1.0);
        assert!((survey[1].agreement_pct() - 95.0).abs() < 1.0);
        assert!((survey[2].agreement_pct() - 92.0).abs() < 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = synthesize_responses(60, 95.0, 4);
        let b = synthesize_responses(60, 95.0, 4);
        assert_eq!(a, b);
    }
}
