//! The research–teaching nexus (Figure 1, after Healey 2005).
//!
//! Two axes: whether the emphasis is on research *content* or research
//! *processes/problems*, and whether students are *audience* or
//! *participants*. The four quadrants and the paper's classification
//! of each course activity reproduce Figure 1's content.

use std::fmt;

/// The four quadrants of Healey's nexus.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NexusQuadrant {
    /// Research-led: curriculum structured around research content;
    /// students as audience.
    ResearchLed,
    /// Research-oriented: emphasis on research processes; students as
    /// audience.
    ResearchOriented,
    /// Research-tutored: students write and discuss papers/essays;
    /// students as participants, content emphasis.
    ResearchTutored,
    /// Research-based: inquiry-based learning; students as
    /// participants, process emphasis.
    ResearchBased,
}

impl NexusQuadrant {
    /// Are students active participants (vs audience)?
    #[must_use]
    pub fn students_participate(self) -> bool {
        matches!(self, NexusQuadrant::ResearchTutored | NexusQuadrant::ResearchBased)
    }

    /// Is the emphasis on research content (vs processes/problems)?
    #[must_use]
    pub fn content_emphasis(self) -> bool {
        matches!(self, NexusQuadrant::ResearchLed | NexusQuadrant::ResearchTutored)
    }

    /// All quadrants.
    #[must_use]
    pub fn all() -> [NexusQuadrant; 4] {
        [
            NexusQuadrant::ResearchLed,
            NexusQuadrant::ResearchOriented,
            NexusQuadrant::ResearchTutored,
            NexusQuadrant::ResearchBased,
        ]
    }
}

impl fmt::Display for NexusQuadrant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NexusQuadrant::ResearchLed => "research-led",
            NexusQuadrant::ResearchOriented => "research-oriented",
            NexusQuadrant::ResearchTutored => "research-tutored",
            NexusQuadrant::ResearchBased => "research-based",
        };
        f.write_str(s)
    }
}

/// A course activity and its place in the nexus.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Activity {
    /// Activity name.
    pub name: &'static str,
    /// Its quadrant.
    pub quadrant: NexusQuadrant,
    /// Paper section describing it.
    pub section: &'static str,
}

/// The paper's classification of SoftEng 751's activities
/// (Section III-E): lectures infuse the lab's research (research-led),
/// the group project is inquiry-based (research-based), seminars and
/// the report are discussion-driven (research-tutored). The paper
/// explicitly *omits* research-oriented teaching and argues why.
#[must_use]
pub fn softeng751_activities() -> Vec<Activity> {
    vec![
        Activity {
            name: "core-concept lectures with PARC research examples",
            quadrant: NexusQuadrant::ResearchLed,
            section: "III-A/III-E",
        },
        Activity {
            name: "in-class programming exercises",
            quadrant: NexusQuadrant::ResearchLed,
            section: "III-E",
        },
        Activity {
            name: "group research project on PARC nuggets",
            quadrant: NexusQuadrant::ResearchBased,
            section: "III-E/IV",
        },
        Activity {
            name: "group seminars and class discussions",
            quadrant: NexusQuadrant::ResearchTutored,
            section: "III-C/III-E",
        },
        Activity {
            name: "project report",
            quadrant: NexusQuadrant::ResearchTutored,
            section: "III-C",
        },
    ]
}

/// Render Figure 1 as ASCII: the 2×2 grid with the activity counts of
/// [`softeng751_activities`] placed into their quadrants.
#[must_use]
pub fn render_figure1() -> String {
    let acts = softeng751_activities();
    let count = |q: NexusQuadrant| acts.iter().filter(|a| a.quadrant == q).count();
    let mut out = String::new();
    out.push_str("                 STUDENTS AS PARTICIPANTS\n");
    out.push_str("                          |\n");
    out.push_str(&format!(
        "   research-tutored [{}]   |   research-based [{}]\n",
        count(NexusQuadrant::ResearchTutored),
        count(NexusQuadrant::ResearchBased)
    ));
    out.push_str("EMPHASIS ON      ---------+---------      EMPHASIS ON\n");
    out.push_str("RESEARCH CONTENT          |        RESEARCH PROCESSES\n");
    out.push_str(&format!(
        "   research-led [{}]       |   research-oriented [{}]\n",
        count(NexusQuadrant::ResearchLed),
        count(NexusQuadrant::ResearchOriented)
    ));
    out.push_str("                          |\n");
    out.push_str("                 STUDENTS AS AUDIENCE\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrant_axis_properties() {
        assert!(!NexusQuadrant::ResearchLed.students_participate());
        assert!(NexusQuadrant::ResearchLed.content_emphasis());
        assert!(NexusQuadrant::ResearchBased.students_participate());
        assert!(!NexusQuadrant::ResearchBased.content_emphasis());
        assert!(NexusQuadrant::ResearchTutored.students_participate());
        assert!(NexusQuadrant::ResearchTutored.content_emphasis());
        assert!(!NexusQuadrant::ResearchOriented.students_participate());
        assert!(!NexusQuadrant::ResearchOriented.content_emphasis());
    }

    #[test]
    fn four_distinct_quadrants() {
        let all = NexusQuadrant::all();
        let labels: std::collections::HashSet<String> =
            all.iter().map(ToString::to_string).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn paper_omits_research_oriented() {
        // Section III-E: "the one thing really missing in SoftEng 751
        // is some explicit emphasis on the research methodology".
        let acts = softeng751_activities();
        assert!(acts
            .iter()
            .all(|a| a.quadrant != NexusQuadrant::ResearchOriented));
        // But all three other quadrants are covered ("research-infused").
        for q in [
            NexusQuadrant::ResearchLed,
            NexusQuadrant::ResearchTutored,
            NexusQuadrant::ResearchBased,
        ] {
            assert!(acts.iter().any(|a| a.quadrant == q), "{q} missing");
        }
    }

    #[test]
    fn figure1_renders_counts() {
        let fig = render_figure1();
        assert!(fig.contains("research-led [2]"));
        assert!(fig.contains("research-based [1]"));
        assert!(fig.contains("research-tutored [2]"));
        assert!(fig.contains("research-oriented [0]"));
    }
}
