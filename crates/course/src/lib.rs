//! # course — the SoftEng 751 course model
//!
//! The paper's own artifacts — not the student projects but the course
//! machinery Sections II–V describe — modelled executably:
//!
//! * [`nexus`] — the research–teaching nexus (**Figure 1**): the
//!   2×2 of content-emphasis × student-participation, and the
//!   classification of every SoftEng 751 activity into it;
//! * [`structure`] — the 12-teaching-week course plan (**Figure 2**)
//!   with instructor-taught / assessment / project / student-taught
//!   week roles;
//! * [`assessment`] — the §III-C grade scheme (Test 1 25 %, seminar
//!   20 %, Test 2 10 %, implementation 25 %, report 20 %), a grade
//!   ledger, and the [`assessment::auto_mark`] hook that folds
//!   `parc-analyze` static diagnostics into the implementation rubric;
//! * [`allocation`] — the §III-D first-in-first-served doodle-poll
//!   topic allocation (60 students, groups of 3, 10 topics × 2
//!   groups), simulated over arrival orders;
//! * [`survey`] — the §V-A Likert evaluation aggregation, including a
//!   synthetic cohort calibrated to the reported 95 % / 92 %
//!   agreement rates;
//! * [`repo`] — the version-control contribution assessment of
//!   §III-C/IV-A: commit logs, contribution shares, peer-evaluation
//!   aggregation and the equal-or-adjusted marking decision;
//! * [`pipeline`] — the fault-tolerant parallel auto-marking pipeline:
//!   exactly-once marking of cohort-scale submission streams under
//!   seeded fault storms, with supervised marker workers, a
//!   claim/complete checkpoint ledger, explicit quantified
//!   degradation, and reports whose fingerprints are bit-identical
//!   across reruns and worker-pool sizes.

pub mod allocation;
pub mod assessment;
pub mod nexus;
pub mod pipeline;
pub mod repo;
pub mod structure;
pub mod survey;

pub use allocation::{run_poll, AllocationConfig, AllocationOutcome};
pub use assessment::{
    auto_mark, score_analysis, AssessmentScheme, AutoMarkOutcome, AutoMarkRubric, GradeLedger,
    MarkScore,
};
pub use pipeline::{run_cell, CellReport, PipelineConfig};
pub use nexus::{Activity, NexusQuadrant};
pub use repo::{decide_marks, Commit, CommitLog, MarkDecision, PeerEvaluation};
pub use structure::{course_plan, WeekRole};
pub use survey::{Likert, SurveyQuestion};
