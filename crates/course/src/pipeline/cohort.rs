//! Cohort-scale submission generation and the marking stages.
//!
//! Submissions are real directive programs from
//! `parc_analyze::genprog` — seeded per `(cell, tick)`, so a cohort
//! of millions is reproducible bit-for-bit without ever being held in
//! memory at once. Each submission is attributed to a synthetic
//! student, sharded by a seeded hash, and marked by the three-stage
//! pipeline: static lint ([`parc_analyze::analyze`]), an optional
//! explorer spot-check on a sampled subset, and rubric scoring
//! ([`crate::assessment::score_analysis`]).

use parc_analyze::diag::Code;
use parc_analyze::genprog::{self, DEADLOCK_CLASS, RACE_CLASS};
use parc_explore::Config;
use parc_util::rng::SplitMix64;

use crate::assessment::{score_analysis, AutoMarkRubric, MarkScore};

/// One queued submission, as carried by a shard queue.
#[derive(Clone, Debug)]
pub struct Submission {
    /// Ledger id (dense, admission-ordered).
    pub id: u64,
    /// The synthetic student who submitted it.
    pub student: u32,
    /// Generator family (`"race/plain"` etc.), for the report.
    pub family: &'static str,
    /// The program text.
    pub source: String,
}

/// Generate the submissions arriving on one tick of one cell:
/// `count` seeded programs, each attributed to a student. Pure in
/// `(seed, tick, count)`, so reruns and different worker pools see
/// the identical cohort.
#[must_use]
pub fn generate_tick(seed: u64, tick: u32, count: usize, students: u32) -> Vec<Submission> {
    let tick_seed = SplitMix64::mix(seed ^ (u64::from(tick) << 20).wrapping_add(0x51D));
    genprog::generate(tick_seed, count)
        .into_iter()
        .map(|p| Submission {
            id: 0, // assigned at admission
            student: (SplitMix64::mix(tick_seed ^ (p.index as u64).rotate_left(13)) % u64::from(students.max(1)))
                as u32,
            family: p.family,
            source: p.source,
        })
        .collect()
}

/// The seeded shard hash: which of `shards` queues submission `id`
/// lands in.
#[must_use]
pub fn shard_for(shard_seed: u64, id: u64, shards: u16) -> u16 {
    (SplitMix64::mix(shard_seed ^ id.rotate_left(29)) % u64::from(shards.max(1))) as u16
}

/// Is submission `id` sampled for the expensive explorer spot-check?
/// One in `spot_every` submissions, chosen by seeded hash so the
/// sample is stable across reruns, pool sizes, and re-claims.
#[must_use]
pub fn spot_eligible(spot_seed: u64, id: u64, spot_every: u64) -> bool {
    spot_every != 0 && SplitMix64::mix(spot_seed ^ id.rotate_left(47)).is_multiple_of(spot_every)
}

/// What the explorer spot-check concluded about one submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpotVerdict {
    /// Every dynamic finding was covered by a static claim.
    Agree,
    /// The explorer witnessed a race or deadlock the static analysis
    /// never claimed — a soundness bug, reported loudly.
    MissedFinding,
}

/// The full marking result for one submission, computed inside the
/// `spawn_batch` fan-out. Pure: no shared state, deterministic for a
/// given source.
#[derive(Clone, Copy, Debug)]
pub struct MarkResult {
    /// The rubric score.
    pub score: MarkScore,
    /// Model-milliseconds of marking service time (lint + scoring,
    /// plus the spot-check premium when one ran).
    pub service_ms: f64,
    /// The spot-check verdict, when one ran.
    pub spot: Option<SpotVerdict>,
}

/// Mark one submission end to end: lint, optional spot-check, score.
#[must_use]
pub fn mark_submission(source: &str, rubric: &AutoMarkRubric, run_spot: bool) -> MarkResult {
    let analysis = parc_analyze::analyze(source);
    let score = score_analysis(&analysis, rubric);
    // Model service time: a lint+score costs ~2 model-ms; an explorer
    // spot-check is the expensive stage at ~40 model-ms. These are
    // model constants (deterministic), not wall-clock measurements.
    let mut service_ms = 2.0;
    let mut spot = None;
    if run_spot {
        service_ms += 40.0;
        spot = Some(match &analysis.program {
            Some(program) => {
                let report =
                    parc_analyze::bridge::explore_program(program, Config::fuzz("spot-check"));
                let dynamic_race = !report.races.is_empty();
                let dynamic_deadlock = report.deadlocks > 0;
                let claims = |class: &[Code]| {
                    analysis.diagnostics.iter().any(|d| class.contains(&d.code))
                };
                if (dynamic_race && !claims(&RACE_CLASS))
                    || (dynamic_deadlock && !claims(&DEADLOCK_CLASS))
                {
                    SpotVerdict::MissedFinding
                } else {
                    SpotVerdict::Agree
                }
            }
            // An unparseable submission has nothing to explore; the
            // parse diagnostics themselves are the static claim.
            None => SpotVerdict::Agree,
        });
    }
    MarkResult { score, service_ms, spot }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible_and_attributed() {
        let a = generate_tick(0xC0DE, 7, 50, 4000);
        let b = generate_tick(0xC0DE, 7, 50, 4000);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.student, y.student);
            assert_eq!(x.family, y.family);
            assert!(x.student < 4000);
        }
        // Different ticks draw different programs.
        let c = generate_tick(0xC0DE, 8, 50, 4000);
        assert!(a.iter().zip(&c).any(|(x, y)| x.source != y.source));
    }

    #[test]
    fn sharding_is_stable_and_in_range() {
        for id in 0..1000 {
            let s = shard_for(42, id, 8);
            assert!(s < 8);
            assert_eq!(s, shard_for(42, id, 8));
        }
        // The hash actually spreads: all 8 shards hit within 1k ids.
        let hit: std::collections::BTreeSet<u16> =
            (0..1000).map(|id| shard_for(42, id, 8)).collect();
        assert_eq!(hit.len(), 8);
    }

    #[test]
    fn spot_sampling_is_sparse_and_stable() {
        let hits: Vec<u64> = (0..10_000).filter(|&id| spot_eligible(7, id, 512)).collect();
        assert!(!hits.is_empty() && hits.len() < 100, "{} hits", hits.len());
        for &id in &hits {
            assert!(spot_eligible(7, id, 512), "stable across calls");
        }
        assert!(!spot_eligible(7, hits[0], 0), "spot_every=0 disables sampling");
    }

    #[test]
    fn marking_a_generated_program_spot_checks_cleanly() {
        // A couple of generated programs through the full stage stack:
        // the PR 9 engine promises no missed dynamic findings.
        let rubric = AutoMarkRubric::default();
        for sub in generate_tick(0xFEED, 0, 4, 100) {
            let result = mark_submission(&sub.source, &rubric, true);
            assert_eq!(result.spot, Some(SpotVerdict::Agree), "family {}", sub.family);
            assert!(result.score.mark >= 0.0 && result.score.mark <= 100.0);
            assert!(result.service_ms > 40.0, "spot premium applied");
        }
        let cheap = mark_submission("x = 1;\n", &rubric, false);
        assert!(cheap.spot.is_none());
        assert!(cheap.service_ms < 40.0);
    }
}
